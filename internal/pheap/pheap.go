// Package pheap implements the pHeap priority queue of Bhagwan & Lin,
// "Fast and scalable priority queue architecture for high-speed network
// switches" (INFOCOM 2000) — one of the two heap-variant baselines of
// Table 1 in the BMW-Tree paper.
//
// pHeap is a binary tree satisfying the heap property whose insert
// steers new elements towards the leftmost sub-tree with free capacity:
// each node records how many free slots remain below-left and
// below-right, inserts go left whenever the left sub-tree has room, and
// the displaced (larger) value follows the same rule. This makes insert
// pipelineable, but — as the BMW-Tree paper observes — it is NOT
// balanced: a drained-and-refilled queue concentrates elements in the
// left spine, so the left sub-tree can be much deeper than the right
// one for the same occupancy. The paper's Table 1 scores it
// pipeline-friendly but neither balanced nor autonomous (a node must
// look up its left child's capacity before steering).
//
// Each tree position holds one element (unlike the M-element BMW
// nodes). A tree of depth D holds 2^D - 1 elements.
package pheap

import (
	"fmt"

	"repro/internal/core"
)

type entry struct {
	val  uint64
	meta uint64
	used bool
	free int // free slots in the sub-tree rooted here (incl. this slot)
}

// Heap is a pHeap with fixed depth.
type Heap struct {
	depth int
	tree  []entry // 1-based complete binary tree
	size  int
}

// New creates a pHeap of the given depth (levels); capacity is
// 2^depth - 1.
func New(depth int) *Heap {
	if depth < 1 || depth > 30 {
		panic(fmt.Sprintf("pheap: invalid depth %d", depth))
	}
	cap := (1 << depth) - 1
	h := &Heap{depth: depth, tree: make([]entry, cap+1)}
	for i := 1; i <= cap; i++ {
		h.tree[i].free = h.subtreeCap(i)
	}
	return h
}

// subtreeCap returns the capacity of the sub-tree rooted at 1-based
// index i.
func (h *Heap) subtreeCap(i int) int {
	// Depth of node i is floor(log2(i)) + 1.
	d := 0
	for v := i; v > 0; v >>= 1 {
		d++
	}
	return (1 << (h.depth - d + 1)) - 1
}

// Len returns the stored element count; Cap the capacity; Depth the
// number of levels.
func (h *Heap) Len() int   { return h.size }
func (h *Heap) Cap() int   { return len(h.tree) - 1 }
func (h *Heap) Depth() int { return h.depth }

// Push inserts an element, steering left-first by free capacity.
func (h *Heap) Push(e core.Element) error {
	if h.size >= h.Cap() {
		return core.ErrFull
	}
	val, meta := e.Value, e.Meta
	i := 1
	for {
		n := &h.tree[i]
		n.free--
		if !n.used {
			n.val, n.meta, n.used = val, meta, true
			break
		}
		if val < n.val {
			val, n.val = n.val, val
			meta, n.meta = n.meta, meta
		}
		// Left-first steering: pHeap checks the left child's capacity and
		// goes left whenever it has room.
		l, r := 2*i, 2*i+1
		if l > h.Cap() {
			panic("pheap: insert descended past the last level")
		}
		if h.tree[l].free > 0 {
			i = l
		} else if r <= h.Cap() && h.tree[r].free > 0 {
			i = r
		} else {
			panic("pheap: no free sub-tree despite free counter")
		}
	}
	h.size++
	return nil
}

// Pop removes and returns the minimum (the root), refilling the vacancy
// by lifting the smaller child recursively (top-down, pipelineable).
func (h *Heap) Pop() (core.Element, error) {
	if h.size == 0 {
		return core.Element{}, core.ErrEmpty
	}
	out := core.Element{Value: h.tree[1].val, Meta: h.tree[1].meta}
	i := 1
	for {
		n := &h.tree[i]
		n.free++
		l, r := 2*i, 2*i+1
		// pHeap's pop compares a node's two children to pick the lift.
		best := 0
		if l <= h.Cap() && h.tree[l].used {
			best = l
		}
		if r <= h.Cap() && h.tree[r].used && (best == 0 || h.tree[r].val < h.tree[best].val) {
			best = r
		}
		if best == 0 {
			n.used = false
			break
		}
		n.val, n.meta = h.tree[best].val, h.tree[best].meta
		i = best
	}
	h.size--
	return out, nil
}

// Peek returns the minimum without removing it.
func (h *Heap) Peek() (core.Element, error) {
	if h.size == 0 {
		return core.Element{}, core.ErrEmpty
	}
	return core.Element{Value: h.tree[1].val, Meta: h.tree[1].meta}, nil
}

// MaxDepthUsed returns the deepest level holding an element (1-based),
// the imbalance metric compared against BMW-Tree in the Table 1
// experiment: for identical occupancy pHeap's left-first steering grows
// deeper than an insertion-balanced structure.
func (h *Heap) MaxDepthUsed() int {
	deepest := 0
	for i := 1; i <= h.Cap(); i++ {
		if h.tree[i].used {
			d := 0
			for v := i; v > 0; v >>= 1 {
				d++
			}
			if d > deepest {
				deepest = d
			}
		}
	}
	return deepest
}

// SideCounts returns the number of elements stored in the root's left
// and right sub-trees — the imbalance witness of Table 1.
func (h *Heap) SideCounts() (left, right int) {
	if h.Cap() < 3 {
		if h.tree[1].used {
			return 0, 0
		}
		return 0, 0
	}
	left = h.subtreeCap(2) - h.tree[2].free
	right = h.subtreeCap(3) - h.tree[3].free
	return left, right
}

// CheckInvariants verifies the heap property and free counters.
func (h *Heap) CheckInvariants() error {
	total, err := h.check(1)
	if err != nil {
		return err
	}
	if total != h.size {
		return fmt.Errorf("pheap: tree holds %d elements, size is %d", total, h.size)
	}
	return nil
}

func (h *Heap) check(i int) (int, error) {
	if i > h.Cap() {
		return 0, nil
	}
	n := h.tree[i]
	count := 0
	if n.used {
		count = 1
		for _, c := range []int{2 * i, 2*i + 1} {
			if c <= h.Cap() && h.tree[c].used && h.tree[c].val < n.val {
				return 0, fmt.Errorf("pheap: heap violation at %d vs child %d", i, c)
			}
		}
	} else {
		for _, c := range []int{2 * i, 2*i + 1} {
			if c <= h.Cap() && h.tree[c].used {
				return 0, fmt.Errorf("pheap: orphan below empty node %d", i)
			}
		}
	}
	lc, err := h.check(2 * i)
	if err != nil {
		return 0, err
	}
	rc, err := h.check(2*i + 1)
	if err != nil {
		return 0, err
	}
	count += lc + rc
	if got := h.subtreeCap(i) - n.free; got != count {
		return 0, fmt.Errorf("pheap: free counter at %d implies %d elements, found %d", i, got, count)
	}
	return count, nil
}
