package sched

import (
	"testing"
	"testing/quick"
)

func TestFCFS(t *testing.T) {
	var r FCFS
	if r.Rank(Packet{Arrival: 100}) != 100 {
		t.Error("FCFS rank != arrival")
	}
	r.OnDequeue(Packet{}, 0)
}

func TestSRPT(t *testing.T) {
	var r SRPT
	if r.Rank(Packet{Remaining: 5000}) != 5000 {
		t.Error("SRPT rank != remaining")
	}
}

func TestStrictPriority(t *testing.T) {
	var r StrictPriority
	if r.Rank(Packet{Class: 3}) != 3 {
		t.Error("priority rank != class")
	}
}

// TestSTFQFairShare verifies the fairness property: two backlogged
// flows with equal weights interleave their virtual start tags, so
// dequeue-by-rank alternates between them byte-proportionally.
func TestSTFQFairShare(t *testing.T) {
	s := NewSTFQ(1)
	// Flow 1 sends 1000-byte packets, flow 2 sends 500-byte packets.
	var r1, r2 []uint64
	for i := 0; i < 4; i++ {
		r1 = append(r1, s.Rank(Packet{Flow: 1, Bytes: 1000}))
	}
	for i := 0; i < 8; i++ {
		r2 = append(r2, s.Rank(Packet{Flow: 2, Bytes: 500}))
	}
	// Start tags advance by bytes/weight per flow: flow 1 at 0, 1000,
	// 2000, 3000; flow 2 at 0, 500, ..., 3500.
	for i, want := range []uint64{0, 1000, 2000, 3000} {
		if r1[i] != want {
			t.Errorf("flow1 rank[%d] = %d, want %d", i, r1[i], want)
		}
	}
	for i, want := range []uint64{0, 500, 1000, 1500, 2000, 2500, 3000, 3500} {
		if r2[i] != want {
			t.Errorf("flow2 rank[%d] = %d, want %d", i, r2[i], want)
		}
	}
	// Equal bytes get equal virtual spans: 4*1000 == 8*500.
}

// TestSTFQWeights verifies weighted shares: a weight-2 flow's start
// tags advance half as fast per byte.
func TestSTFQWeights(t *testing.T) {
	s := NewSTFQ(1)
	s.SetWeight(7, 2)
	var last uint64
	for i := 0; i < 4; i++ {
		last = s.Rank(Packet{Flow: 7, Bytes: 1000})
	}
	if last != 1500 { // 0, 500, 1000, 1500
		t.Errorf("weighted flow last start tag = %d, want 1500", last)
	}
}

// TestSTFQVirtualTime verifies the key STFQ mechanism: a newly active
// flow's first packet gets the virtual time of the packet in service,
// not zero — so a new flow cannot starve or be starved.
func TestSTFQVirtualTime(t *testing.T) {
	s := NewSTFQ(1)
	var rank uint64
	for i := 0; i < 10; i++ {
		rank = s.Rank(Packet{Flow: 1, Bytes: 1000})
	}
	// Flow 1's packets have start tags 0..9000. Serve through tag 5000.
	s.OnDequeue(Packet{Flow: 1, Bytes: 1000}, 5000)
	if s.VirtualTime() != 5000 {
		t.Fatalf("virtual time = %d", s.VirtualTime())
	}
	newRank := s.Rank(Packet{Flow: 2, Bytes: 1000})
	if newRank != 5000 {
		t.Errorf("new flow start tag = %d, want virtual time 5000", newRank)
	}
	// Virtual time never regresses.
	s.OnDequeue(Packet{}, 3000)
	if s.VirtualTime() != 5000 {
		t.Error("virtual time regressed")
	}
	_ = rank
}

func TestSTFQForget(t *testing.T) {
	s := NewSTFQ(1)
	s.Rank(Packet{Flow: 3, Bytes: 100})
	s.Forget(3)
	if len(s.finish) != 0 {
		t.Error("Forget did not clear flow state")
	}
}

func TestSTFQZeroWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero weight did not panic")
		}
	}()
	NewSTFQ(0)
}

// TestWFQFinishTags verifies WFQ ranks are virtual departure times:
// first packet of a flow gets V + len/w.
func TestWFQFinishTags(t *testing.T) {
	s := NewWFQ(1)
	if r := s.Rank(Packet{Flow: 1, Bytes: 1000}); r != 1000 {
		t.Errorf("first finish tag = %d, want 1000", r)
	}
	if r := s.Rank(Packet{Flow: 1, Bytes: 1000}); r != 2000 {
		t.Errorf("second finish tag = %d, want 2000", r)
	}
	s.SetWeight(2, 4)
	if r := s.Rank(Packet{Flow: 2, Bytes: 1000}); r != 250 {
		t.Errorf("weighted finish tag = %d, want 250", r)
	}
}

// TestQuickSTFQMonotonePerFlow: property — a flow's STFQ ranks never
// decrease, regardless of interleaving.
func TestQuickSTFQMonotonePerFlow(t *testing.T) {
	prop := func(sizes []uint16, flowsRaw []uint8) bool {
		s := NewSTFQ(1)
		last := map[uint32]uint64{}
		for i, sz := range sizes {
			f := uint32(1)
			if i < len(flowsRaw) {
				f = uint32(flowsRaw[i]%4) + 1
			}
			r := s.Rank(Packet{Flow: f, Bytes: uint32(sz) + 1})
			if prev, ok := last[f]; ok && r < prev {
				return false
			}
			last[f] = r
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTokenBucketShaping verifies the shaper's eligible times: a flow
// sending faster than its rate accumulates delay; an idle flow regains
// at most one burst of credit.
func TestTokenBucketShaping(t *testing.T) {
	// 1000 bytes/s, burst 1000 bytes => burst window 1e9 ns.
	tb := NewTokenBucket(1000, 1000)
	// Back-to-back 1000-byte packets at t=0: the first departs at 0,
	// subsequent ones at 1s spacing.
	for i, want := range []uint64{0, 1e9, 2e9, 3e9} {
		got := tb.Rank(Packet{Flow: 1, Bytes: 1000, Arrival: 0})
		if got != want {
			t.Errorf("packet %d eligible at %d, want %d", i, got, want)
		}
	}
	// After a long idle period the flow gets one burst of credit, no
	// more: two immediate departures... the first is immediate, the
	// second is rate-limited from arrival - burst.
	tb2 := NewTokenBucket(1000, 1000)
	tb2.Rank(Packet{Flow: 1, Bytes: 1000, Arrival: 0})
	g1 := tb2.Rank(Packet{Flow: 1, Bytes: 1000, Arrival: 100e9})
	if g1 != 100e9 {
		t.Errorf("post-idle packet eligible at %d, want immediate (100e9)", g1)
	}
	g2 := tb2.Rank(Packet{Flow: 1, Bytes: 1000, Arrival: 100e9})
	if g2 != 100e9 {
		t.Errorf("burst packet eligible at %d, want 100e9 (one burst of credit)", g2)
	}
	g3 := tb2.Rank(Packet{Flow: 1, Bytes: 1000, Arrival: 100e9})
	if g3 != 101e9 {
		t.Errorf("post-burst packet eligible at %d, want 101e9", g3)
	}
}

func TestTokenBucketPerFlow(t *testing.T) {
	tb := NewTokenBucket(1000, 0)
	a := tb.Rank(Packet{Flow: 1, Bytes: 1000, Arrival: 0})
	b := tb.Rank(Packet{Flow: 2, Bytes: 1000, Arrival: 0})
	if a != 0 || b != 0 {
		t.Error("independent flows should not share the bucket")
	}
}
