// Package sched implements the rank-computation side of the PIFO model
// (Section 2 of the paper): a scheduling algorithm is expressed as a
// function that assigns each packet a rank; the flow scheduler (any
// priority queue in this module) dequeues in rank order.
//
// Provided algorithms, mirroring the paper's Section 2.1/2.2 catalogue:
//
//   - FCFS: rank = arrival time.
//   - STFQ (Start-Time Fair Queueing, Goyal et al.): rank = the
//     packet's virtual start tag — used for the Figure 10 experiment.
//   - WFQ-style finish-tag fair queueing.
//   - SRPT: rank = remaining flow size.
//   - Strict priority: rank = class.
//   - Token bucket: a non-work-conserving shaper whose rank is the
//     packet's eligible departure time.
package sched

// Packet is the metadata a ranker sees at enqueue time.
type Packet struct {
	Flow    uint32
	Bytes   uint32
	Arrival uint64 // ns

	// Remaining is the flow's remaining size in bytes (SRPT).
	Remaining uint64
	// Class is the priority class (strict priority; 0 is highest).
	Class uint8
}

// Ranker computes a rank for each packet at enqueue and observes
// dequeues (some algorithms, like STFQ, advance virtual time from the
// packet entering service).
type Ranker interface {
	// Rank returns the packet's rank; smaller dequeues first.
	Rank(p Packet) uint64
	// OnDequeue informs the ranker that a packet with the given rank
	// has been dequeued for transmission.
	OnDequeue(p Packet, rank uint64)
}

// Observed decorates a Ranker with a dequeue callback so a host (e.g.
// the netsim bottleneck) can attach latency and scheduling-quality
// probes without the queue or ranker implementations knowing about
// them. Dequeued, when non-nil, runs after the delegate's OnDequeue
// with the same packet and rank.
type Observed struct {
	Ranker
	Dequeued func(p Packet, rank uint64)
}

// OnDequeue forwards to the delegate, then invokes the callback.
func (o Observed) OnDequeue(p Packet, rank uint64) {
	o.Ranker.OnDequeue(p, rank)
	if o.Dequeued != nil {
		o.Dequeued(p, rank)
	}
}

// FCFS ranks packets by arrival time (First Come First Serve).
type FCFS struct{}

// Rank returns the packet's arrival time.
func (FCFS) Rank(p Packet) uint64 { return p.Arrival }

// OnDequeue is a no-op for FCFS.
func (FCFS) OnDequeue(Packet, uint64) {}

// SRPT ranks packets by the remaining size of their flow (Shortest
// Remaining Processing Time), minimising mean flow completion time.
type SRPT struct{}

// Rank returns the flow's remaining bytes.
func (SRPT) Rank(p Packet) uint64 { return p.Remaining }

// OnDequeue is a no-op for SRPT.
func (SRPT) OnDequeue(Packet, uint64) {}

// StrictPriority ranks packets by their class; ties (same class) are
// broken by the flow scheduler's FIFO-or-arbitrary tie policy.
type StrictPriority struct{}

// Rank returns the packet's class.
func (StrictPriority) Rank(p Packet) uint64 { return uint64(p.Class) }

// OnDequeue is a no-op for strict priorities.
func (StrictPriority) OnDequeue(Packet, uint64) {}

// STFQ is Start-Time Fair Queueing: each packet's rank is its virtual
// start tag max(V, F_flow); the flow's virtual finish advances by
// length/weight; the system virtual time V is the start tag of the
// packet currently in service. This is the rank function the paper's
// packet-level evaluation (Section 6.4) installs on both RPU-BMW and
// PIFO.
type STFQ struct {
	// DefaultWeight applies to flows without an explicit weight. The
	// Figure 10 experiment gives all flows the same weight.
	DefaultWeight uint32

	weights map[uint32]uint32
	finish  map[uint32]uint64
	virtual uint64
}

// NewSTFQ creates an STFQ ranker with the given default weight
// (must be > 0).
func NewSTFQ(defaultWeight uint32) *STFQ {
	if defaultWeight == 0 {
		panic("sched: STFQ weight must be positive")
	}
	return &STFQ{
		DefaultWeight: defaultWeight,
		weights:       make(map[uint32]uint32),
		finish:        make(map[uint32]uint64),
	}
}

// SetWeight assigns a per-flow weight.
func (s *STFQ) SetWeight(flow uint32, w uint32) {
	if w == 0 {
		panic("sched: STFQ weight must be positive")
	}
	s.weights[flow] = w
}

// Rank returns the packet's virtual start tag and advances the flow's
// virtual finish tag.
func (s *STFQ) Rank(p Packet) uint64 {
	w := s.DefaultWeight
	if pw, ok := s.weights[p.Flow]; ok {
		w = pw
	}
	start := s.virtual
	if f := s.finish[p.Flow]; f > start {
		start = f
	}
	s.finish[p.Flow] = start + uint64(p.Bytes)/uint64(w)
	return start
}

// OnDequeue advances the system virtual time to the start tag of the
// packet entering service.
func (s *STFQ) OnDequeue(_ Packet, rank uint64) {
	if rank > s.virtual {
		s.virtual = rank
	}
}

// VirtualTime exposes the current system virtual time (tests).
func (s *STFQ) VirtualTime() uint64 { return s.virtual }

// Forget drops per-flow state for a finished flow, bounding memory over
// long simulations.
func (s *STFQ) Forget(flow uint32) {
	delete(s.weights, flow)
	delete(s.finish, flow)
}

// WFQ is finish-tag weighted fair queueing: rank = max(V, F_flow) +
// length/weight ("WFQ employs virtual departure time as rank",
// Section 2.2).
type WFQ struct {
	DefaultWeight uint32

	weights map[uint32]uint32
	finish  map[uint32]uint64
	virtual uint64
}

// NewWFQ creates a WFQ ranker with the given default weight.
func NewWFQ(defaultWeight uint32) *WFQ {
	if defaultWeight == 0 {
		panic("sched: WFQ weight must be positive")
	}
	return &WFQ{
		DefaultWeight: defaultWeight,
		weights:       make(map[uint32]uint32),
		finish:        make(map[uint32]uint64),
	}
}

// SetWeight assigns a per-flow weight.
func (s *WFQ) SetWeight(flow uint32, w uint32) {
	if w == 0 {
		panic("sched: WFQ weight must be positive")
	}
	s.weights[flow] = w
}

// Rank returns the packet's virtual finish tag.
func (s *WFQ) Rank(p Packet) uint64 {
	w := s.DefaultWeight
	if pw, ok := s.weights[p.Flow]; ok {
		w = pw
	}
	start := s.virtual
	if f := s.finish[p.Flow]; f > start {
		start = f
	}
	fin := start + uint64(p.Bytes)/uint64(w)
	s.finish[p.Flow] = fin
	return fin
}

// OnDequeue advances the virtual time to the dequeued finish tag.
func (s *WFQ) OnDequeue(_ Packet, rank uint64) {
	if rank > s.virtual {
		s.virtual = rank
	}
}

// TokenBucket is a non-work-conserving shaper: each flow drains at
// RateBytesPerSec with burst BurstBytes; a packet's rank is the
// earliest time (ns) it may depart. A shaped queue must hold packets
// until wall-clock time reaches the head's rank (Section 2.1, Token
// Bucket / traffic shaping).
type TokenBucket struct {
	RateBytesPerSec uint64
	BurstBytes      uint64

	release map[uint32]uint64 // earliest next departure per flow
}

// NewTokenBucket creates a shaper with the given per-flow rate and
// burst.
func NewTokenBucket(rateBytesPerSec, burstBytes uint64) *TokenBucket {
	if rateBytesPerSec == 0 {
		panic("sched: token bucket rate must be positive")
	}
	return &TokenBucket{
		RateBytesPerSec: rateBytesPerSec,
		BurstBytes:      burstBytes,
		release:         make(map[uint32]uint64),
	}
}

// Rank returns the packet's eligible departure time in nanoseconds,
// using the virtual-release-time (leaky bucket with burst) formulation:
// idle credit is capped at one burst, and a packet is eligible at
// max(arrival, release).
func (tb *TokenBucket) Rank(p Packet) uint64 {
	rel := tb.release[p.Flow]
	burstNs := tb.BurstBytes * 1e9 / tb.RateBytesPerSec
	if rel+burstNs < p.Arrival {
		rel = p.Arrival - burstNs
	}
	eligible := rel
	if p.Arrival > eligible {
		eligible = p.Arrival
	}
	tb.release[p.Flow] = rel + uint64(p.Bytes)*1e9/tb.RateBytesPerSec
	return eligible
}

// OnDequeue is a no-op: shaping state advances at enqueue.
func (tb *TokenBucket) OnDequeue(Packet, uint64) {}
