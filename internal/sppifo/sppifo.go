// Package sppifo implements SP-PIFO (Alcoz, Dietmüller, Vanbever —
// NSDI 2020), the strict-priority-queue approximation of a PIFO that
// the BMW-Tree paper discusses in Section 7.2. It serves as an
// *approximate* comparator for the accuracy experiment: unlike the
// BMW-Tree, SP-PIFO can dequeue packets out of rank order
// ("inversions"), which is precisely the weakness that motivates an
// accurate large-scale PIFO.
//
// SP-PIFO maps ranks onto N strict-priority FIFO queues with dynamic
// per-queue bounds, adapted on the fly:
//
//   - push (rank r): scan queues from the lowest priority to the
//     highest; enqueue into the first queue whose bound is <= r and
//     raise that bound to r ("push-up"). If even the highest-priority
//     queue's bound exceeds r, an unavoidable inversion risk was
//     detected: enqueue into the highest-priority queue and decrease
//     every bound by the violation amount ("push-down").
//   - pop: serve the highest-priority non-empty queue in FIFO order.
//
// An inversion is a dequeued packet whose rank is smaller than the
// maximum rank dequeued before it.
package sppifo

import (
	"repro/internal/core"
)

// Queue is an SP-PIFO scheduler with a fixed number of priority levels
// and a shared element capacity.
type Queue struct {
	queues [][]core.Element // queues[0] is the highest priority
	bounds []uint64
	size   int
	cap    int

	pushUps, pushDowns uint64
}

// New creates an SP-PIFO with n strict-priority queues and the given
// total element capacity.
func New(n, capacity int) *Queue {
	if n < 1 || capacity < 1 {
		panic("sppifo: need at least one queue and capacity")
	}
	return &Queue{
		queues: make([][]core.Element, n),
		bounds: make([]uint64, n),
		cap:    capacity,
	}
}

// Len returns the stored element count; Cap the capacity; NumQueues
// the number of strict-priority FIFOs.
func (q *Queue) Len() int       { return q.size }
func (q *Queue) Cap() int       { return q.cap }
func (q *Queue) NumQueues() int { return len(q.queues) }

// Stats returns the adaptation counters: push-up events (bound raised)
// and push-down events (bounds collectively lowered after a violation).
func (q *Queue) Stats() (pushUps, pushDowns uint64) { return q.pushUps, q.pushDowns }

// Push maps the element to a queue per the SP-PIFO adaptation rules.
func (q *Queue) Push(e core.Element) error {
	if q.size >= q.cap {
		return core.ErrFull
	}
	// Scan from the lowest priority (last queue) upwards.
	for i := len(q.queues) - 1; i >= 0; i-- {
		if e.Value >= q.bounds[i] {
			q.queues[i] = append(q.queues[i], e)
			q.bounds[i] = e.Value
			q.pushUps++
			q.size++
			return nil
		}
	}
	// Violation: even the highest-priority queue's bound exceeds the
	// rank. Enqueue there and push all bounds down by the excess.
	delta := q.bounds[0] - e.Value
	for i := range q.bounds {
		if q.bounds[i] >= delta {
			q.bounds[i] -= delta
		} else {
			q.bounds[i] = 0
		}
	}
	q.queues[0] = append(q.queues[0], e)
	q.pushDowns++
	q.size++
	return nil
}

// Pop dequeues from the highest-priority non-empty FIFO.
func (q *Queue) Pop() (core.Element, error) {
	for i := range q.queues {
		if len(q.queues[i]) > 0 {
			e := q.queues[i][0]
			q.queues[i] = q.queues[i][1:]
			if len(q.queues[i]) == 0 {
				q.queues[i] = nil // release drained backing array
			}
			q.size--
			return e, nil
		}
	}
	return core.Element{}, core.ErrEmpty
}

// Peek returns the head of the highest-priority non-empty FIFO. Note
// that unlike an accurate PIFO this is not necessarily the global
// minimum.
func (q *Queue) Peek() (core.Element, error) {
	for i := range q.queues {
		if len(q.queues[i]) > 0 {
			return q.queues[i][0], nil
		}
	}
	return core.Element{}, core.ErrEmpty
}
