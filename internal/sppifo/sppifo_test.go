package sppifo

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/refpq"
)

func TestFIFOWithinQueue(t *testing.T) {
	q := New(4, 64)
	// Identical ranks land in the same queue and keep FIFO order.
	for i := uint64(0); i < 5; i++ {
		if err := q.Push(core.Element{Value: 10, Meta: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 5; i++ {
		e, err := q.Pop()
		if err != nil || e.Meta != i {
			t.Fatalf("pop %d = %v, %v", i, e, err)
		}
	}
}

func TestCapacityAndEmpty(t *testing.T) {
	q := New(2, 3)
	for i := 0; i < 3; i++ {
		if err := q.Push(core.Element{Value: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Push(core.Element{Value: 9}); err != core.ErrFull {
		t.Fatalf("push full = %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := q.Pop(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := q.Pop(); err != core.ErrEmpty {
		t.Fatalf("pop empty = %v", err)
	}
	if _, err := q.Peek(); err != core.ErrEmpty {
		t.Fatalf("peek empty = %v", err)
	}
}

// TestBoundAdaptation exercises push-up and push-down: ascending ranks
// raise bounds; a sudden low rank triggers a push-down that lowers
// every bound.
func TestBoundAdaptation(t *testing.T) {
	q := New(3, 64)
	// Descending pushes fill the bounds bottom-up: 10 lands in the
	// lowest-priority queue, 5 and 3 climb into the higher ones.
	for _, r := range []uint64{10, 5, 3} {
		q.Push(core.Element{Value: r})
	}
	ups, downs := q.Stats()
	if ups != 3 || downs != 0 {
		t.Fatalf("after descending pushes: ups=%d downs=%d", ups, downs)
	}
	// Every bound now exceeds rank 1: push-down.
	q.Push(core.Element{Value: 1})
	_, downs = q.Stats()
	if downs != 1 {
		t.Fatalf("low rank did not trigger push-down: downs=%d", downs)
	}
}

// TestInaccuracyVersusAccuratePIFO is the accuracy experiment at unit
// scale. "Accurate" per the paper means every pop returns the current
// minimum rank in the queue; we count pops violating that against a
// reference multiset. The BMW-Tree scores zero by construction;
// SP-PIFO's FIFO queues cannot avoid violations on bursty rank
// patterns.
func TestInaccuracyVersusAccuratePIFO(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sp := New(8, 1<<12)
	tr := core.New(2, 12)
	ref := refpq.New()

	spBad, bmwBad, pops := 0, 0, 0
	inFlight := 0
	for step := 0; step < 20000; step++ {
		if inFlight < 512 && (inFlight == 0 || rng.Intn(2) == 0) {
			base := uint64(rng.Intn(4)) * 1000
			r := base + uint64(rng.Intn(100))
			if err := sp.Push(core.Element{Value: r}); err != nil {
				t.Fatal(err)
			}
			if err := tr.Push(core.Element{Value: r}); err != nil {
				t.Fatal(err)
			}
			ref.Push(refpq.Entry{Value: r})
			inFlight++
		} else {
			min := ref.MinValue()
			e1, err := sp.Pop()
			if err != nil {
				t.Fatal(err)
			}
			e2, err := tr.Pop()
			if err != nil {
				t.Fatal(err)
			}
			if e1.Value > min {
				spBad++
			}
			if e2.Value > min {
				bmwBad++
			}
			// Keep the reference multiset in sync with the accurate
			// scheduler's contents (both see the same pushes).
			if !ref.RemoveExact(refpq.Entry{Value: e2.Value}) {
				t.Fatal("reference desync")
			}
			pops++
			inFlight--
		}
	}
	if bmwBad != 0 {
		t.Fatalf("accurate PIFO popped a non-minimum %d times", bmwBad)
	}
	if spBad == 0 {
		t.Fatal("SP-PIFO produced no order violations on a bursty pattern")
	}
	t.Logf("non-minimal pops: SP-PIFO %d/%d (%.2f%%), BMW-Tree 0",
		spBad, pops, 100*float64(spBad)/float64(pops))
}

func TestInvalidParamsPanic(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 10) },
		func() { New(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid params did not panic")
				}
			}()
			fn()
		}()
	}
}
