package sppifo

import "repro/internal/obs"

// Instrument registers the queue's probes in reg under the given
// metric-name prefix. All instruments are snapshot-time callbacks
// reading queue state — snapshot only between operations. The push-up
// and push-down counters are SP-PIFO's own adaptation events (Alcoz et
// al.): each one marks a packet the bound adaptation had to misfile,
// the structural source of its rank inversions. A nil registry is a
// no-op.
func (q *Queue) Instrument(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.CounterFunc(prefix+"_push_ups_total", func() uint64 { return q.pushUps })
	reg.CounterFunc(prefix+"_push_downs_total", func() uint64 { return q.pushDowns })
	reg.GaugeFunc(prefix+"_occupancy", func() float64 { return float64(q.size) })
	reg.GaugeFunc(prefix+"_capacity", func() float64 { return float64(q.cap) })
	reg.GaugeFunc(prefix+"_queues", func() float64 { return float64(len(q.queues)) })
}
