// Package hw provides the clocked-hardware primitives shared by the
// cycle-accurate pipeline simulations: the Simple Dual-Port RAM model
// used by RPU-BMW (Section 5.2.3 of the paper) and the external
// operation/issue types common to all flow-scheduler implementations.
//
// The simulations in this module advance in discrete cycles. Within a
// cycle, combinational logic runs; at the cycle boundary (the "rising
// edge") registered state commits. A read issued to an SDPRAM during
// cycle c delivers its data during cycle c+1; a write issued during
// cycle c commits at the edge but is already visible to a read of the
// same address issued in the same cycle (write-first behaviour), which
// is the property Section 5.2.3 exploits for operation hiding.
package hw

import "fmt"

// OpKind identifies an external operation presented to a flow scheduler
// in one clock cycle.
type OpKind int

// The three possible per-cycle external signals.
const (
	Nop OpKind = iota
	Push
	Pop
)

// String returns the conventional name of the operation.
func (k OpKind) String() string {
	switch k {
	case Nop:
		return "nop"
	case Push:
		return "push"
	case Pop:
		return "pop"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one cycle's external signal: a push carrying an element, a pop,
// or a nop (null signal).
type Op struct {
	Kind  OpKind
	Value uint64
	Meta  uint64
}

// PushOp builds a push operation.
func PushOp(value, meta uint64) Op { return Op{Kind: Push, Value: value, Meta: meta} }

// PopOp builds a pop operation.
func PopOp() Op { return Op{Kind: Pop} }

// NopOp builds a null operation.
func NopOp() Op { return Op{} }

// SDPRAM models a Simple Dual-Port RAM with one read port and one write
// port on a single clock, parameterised by the word type T (one tree
// node per word in RPU-BMW). If a read and a write address the same word
// in the same cycle, the read returns the newly written data — the
// write-first property of Section 5.2.3.
//
// Protocol per cycle: call Read and/or Write at most once each, then
// Tick to advance the clock. Data for the read becomes available from
// Data after the Tick.
type SDPRAM[T any] struct {
	mem []T

	readPending  bool
	readAddr     int
	writePending bool
	writeAddr    int
	writeData    T

	dataValid bool
	data      T

	reads, writes, collisions uint64
}

// NewSDPRAM returns a RAM with the given number of words, all zeroed.
func NewSDPRAM[T any](words int) *SDPRAM[T] {
	return &SDPRAM[T]{mem: make([]T, words)}
}

// Words returns the RAM depth.
func (r *SDPRAM[T]) Words() int { return len(r.mem) }

// Read presents addr on the read port for the current cycle. Issuing two
// reads in one cycle is a simulation bug and panics (the hardware has a
// single read port).
func (r *SDPRAM[T]) Read(addr int) {
	if r.readPending {
		panic(fmt.Sprintf("hw: second read issued in one cycle (addr %d, pending %d)", addr, r.readAddr))
	}
	r.readPending = true
	r.readAddr = addr
	r.reads++
}

// Write presents addr/data on the write port for the current cycle.
// Issuing two writes in one cycle panics (single write port).
func (r *SDPRAM[T]) Write(addr int, data T) {
	if r.writePending {
		panic(fmt.Sprintf("hw: second write issued in one cycle (addr %d, pending %d)", addr, r.writeAddr))
	}
	r.writePending = true
	r.writeAddr = addr
	r.writeData = data
	r.writes++
}

// Tick advances one clock edge: the pending write commits and the
// pending read captures its data, with write-first resolution on an
// address collision.
func (r *SDPRAM[T]) Tick() {
	r.dataValid = false
	if r.readPending {
		if r.writePending && r.writeAddr == r.readAddr {
			r.data = r.writeData // read-during-write returns new data
			r.collisions++
		} else {
			r.data = r.mem[r.readAddr]
		}
		r.dataValid = true
	}
	if r.writePending {
		r.mem[r.writeAddr] = r.writeData
	}
	r.readPending = false
	r.writePending = false
}

// Data returns the word captured by the read issued in the previous
// cycle. ok is false if no read was issued.
func (r *SDPRAM[T]) Data() (data T, ok bool) {
	return r.data, r.dataValid
}

// Pending reports whether a read or write presented this cycle has not
// yet been committed by a Tick. Simulators include it in their
// quiescence checks: committed state (Peek) is only meaningful once no
// port request is outstanding.
func (r *SDPRAM[T]) Pending() bool { return r.readPending || r.writePending }

// Peek returns the committed contents of a word without using the read
// port. Test and checker helper; not part of the hardware interface.
func (r *SDPRAM[T]) Peek(addr int) T { return r.mem[addr] }

// Stats reports the port activity since construction: total reads,
// total writes, and read-during-write collisions (the operation-hiding
// events of Section 5.2.3).
func (r *SDPRAM[T]) Stats() (reads, writes, collisions uint64) {
	return r.reads, r.writes, r.collisions
}
