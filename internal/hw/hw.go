// Package hw provides the clocked-hardware primitives shared by the
// cycle-accurate pipeline simulations: the Simple Dual-Port RAM model
// used by RPU-BMW (Section 5.2.3 of the paper) and the external
// operation/issue types common to all flow-scheduler implementations.
//
// The simulations in this module advance in discrete cycles. Within a
// cycle, combinational logic runs; at the cycle boundary (the "rising
// edge") registered state commits. A read issued to an SDPRAM during
// cycle c delivers its data during cycle c+1; a write issued during
// cycle c commits at the edge but is already visible to a read of the
// same address issued in the same cycle (write-first behaviour), which
// is the property Section 5.2.3 exploits for operation hiding.
package hw

import (
	"errors"
	"fmt"
)

// ErrCorrupt is the sentinel for storage corruption detected by a
// protection mechanism (ECC, parity, or an online invariant checker).
// Concrete detections are reported as *CorruptionError values wrapping
// this sentinel, so callers can test with errors.Is(err, ErrCorrupt)
// and then inspect the detail.
var ErrCorrupt = errors.New("hw: storage corruption detected")

// CorruptionError describes one detected corruption event: where it was
// observed and, when known, which structure reported it. A simulator
// that returns a CorruptionError from Tick has latched a fault status
// and refuses further operations until recovered.
type CorruptionError struct {
	// Unit names the detecting structure ("sram3", "rbmw-regs", ...).
	Unit string
	// Word and Chunk locate the corrupt storage word (Chunk is the
	// ECC-protected sub-word, -1 when not applicable).
	Word, Chunk int
	// Cycle is the clock cycle of detection.
	Cycle uint64
	// Detail is the mechanism-specific description.
	Detail string
	// Cause optionally carries the underlying typed error (for
	// example a *treecheck.Violation from an online invariant check).
	Cause error
}

// Error formats the detection report.
func (e *CorruptionError) Error() string {
	if e.Chunk >= 0 {
		return fmt.Sprintf("hw: corruption detected in %s word %d chunk %d at cycle %d: %s",
			e.Unit, e.Word, e.Chunk, e.Cycle, e.Detail)
	}
	return fmt.Sprintf("hw: corruption detected in %s word %d at cycle %d: %s",
		e.Unit, e.Word, e.Cycle, e.Detail)
}

// Unwrap lets errors.Is(err, ErrCorrupt) match every detection and
// errors.As reach the underlying cause when one is recorded.
func (e *CorruptionError) Unwrap() []error {
	if e.Cause != nil {
		return []error{ErrCorrupt, e.Cause}
	}
	return []error{ErrCorrupt}
}

// FaultStepper is the per-cycle hook of a fault plan: a simulator with
// an attached stepper calls Step once at the end of every consumed
// clock cycle, so injected faults land between clock edges (the
// semantics of an upset striking an idle array). Implemented by
// faultinject.Plan.
type FaultStepper interface {
	Step(cycle uint64)
}

// FaultTarget is the injection interface of the fault subsystem: any
// bit-addressable storage structure (an SRAM's code words, a register
// file) exposes its bits so a fault plan can flip them or pin them
// (stuck-at). Implementations are expected to model the *storage* only;
// data already latched into port output registers is not disturbed,
// matching the physics of a single-event upset in an array.
type FaultTarget interface {
	// TargetName identifies the structure in fault plans and reports.
	TargetName() string
	// Words is the number of addressable storage words.
	Words() int
	// WordBits is the width of one word in bits, including any check
	// bits the protection scheme stores alongside the payload.
	WordBits() int
	// PeekBit reports the current value of a stored bit.
	PeekBit(word, bit int) bool
	// FlipBit inverts a stored bit in place.
	FlipBit(word, bit int)
}

// RAM is the port-level contract of the Simple Dual-Port RAM model:
// one read port, one write port, write-first collision semantics, and
// a one-cycle read latency. SDPRAM is the unprotected implementation;
// internal/faultinject provides an ECC-protected, fault-injectable one.
// Peek and Poke are maintenance paths (testbench/scrub/rebuild), not
// functional ports.
type RAM[T any] interface {
	Words() int
	Read(addr int)
	Write(addr int, data T)
	Tick()
	Data() (data T, ok bool)
	Pending() bool
	Peek(addr int) T
	Poke(addr int, data T)
	Stats() (reads, writes, collisions uint64)
}

// OpKind identifies an external operation presented to a flow scheduler
// in one clock cycle.
type OpKind int

// The three possible per-cycle external signals.
const (
	Nop OpKind = iota
	Push
	Pop
)

// String returns the conventional name of the operation.
func (k OpKind) String() string {
	switch k {
	case Nop:
		return "nop"
	case Push:
		return "push"
	case Pop:
		return "pop"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Valid reports whether k is one of the defined external signals.
// Decoders of persisted operation logs use it to reject kind bytes
// that no scheduler could have consumed.
func (k OpKind) Valid() bool { return k == Nop || k == Push || k == Pop }

// Op is one cycle's external signal: a push carrying an element, a pop,
// or a nop (null signal).
type Op struct {
	Kind  OpKind
	Value uint64
	Meta  uint64
}

// PushOp builds a push operation.
func PushOp(value, meta uint64) Op { return Op{Kind: Push, Value: value, Meta: meta} }

// PopOp builds a pop operation.
func PopOp() Op { return Op{Kind: Pop} }

// NopOp builds a null operation.
func NopOp() Op { return Op{} }

// SDPRAM models a Simple Dual-Port RAM with one read port and one write
// port on a single clock, parameterised by the word type T (one tree
// node per word in RPU-BMW). If a read and a write address the same word
// in the same cycle, the read returns the newly written data — the
// write-first property of Section 5.2.3.
//
// Protocol per cycle: call Read and/or Write at most once each, then
// Tick to advance the clock. Data for the read becomes available from
// Data after the Tick.
type SDPRAM[T any] struct {
	mem []T

	readPending  bool
	readAddr     int
	writePending bool
	writeAddr    int
	writeData    T

	dataValid bool
	data      T

	reads, writes, collisions uint64
}

// NewSDPRAM returns a RAM with the given number of words, all zeroed.
func NewSDPRAM[T any](words int) *SDPRAM[T] {
	return &SDPRAM[T]{mem: make([]T, words)}
}

// Words returns the RAM depth.
func (r *SDPRAM[T]) Words() int { return len(r.mem) }

// checkAddr validates a port address at issue time. Catching the
// violation here, rather than as a raw slice-index panic inside Tick,
// reports the offending port and address in the cycle that issued it.
func (r *SDPRAM[T]) checkAddr(port string, addr int) {
	if addr < 0 || addr >= len(r.mem) {
		panic(fmt.Sprintf("hw: %s address %d out of range [0,%d)", port, addr, len(r.mem)))
	}
}

// Read presents addr on the read port for the current cycle. Issuing two
// reads in one cycle is a simulation bug and panics (the hardware has a
// single read port), as is an address outside [0, Words()).
func (r *SDPRAM[T]) Read(addr int) {
	r.checkAddr("read", addr)
	if r.readPending {
		panic(fmt.Sprintf("hw: second read issued in one cycle (addr %d, pending %d)", addr, r.readAddr))
	}
	r.readPending = true
	r.readAddr = addr
	r.reads++
}

// Write presents addr/data on the write port for the current cycle.
// Issuing two writes in one cycle panics (single write port), as does
// an address outside [0, Words()).
func (r *SDPRAM[T]) Write(addr int, data T) {
	r.checkAddr("write", addr)
	if r.writePending {
		panic(fmt.Sprintf("hw: second write issued in one cycle (addr %d, pending %d)", addr, r.writeAddr))
	}
	r.writePending = true
	r.writeAddr = addr
	r.writeData = data
	r.writes++
}

// Tick advances one clock edge: the pending write commits and the
// pending read captures its data, with write-first resolution on an
// address collision.
func (r *SDPRAM[T]) Tick() {
	r.dataValid = false
	if r.readPending {
		if r.writePending && r.writeAddr == r.readAddr {
			r.data = r.writeData // read-during-write returns new data
			r.collisions++
		} else {
			r.data = r.mem[r.readAddr]
		}
		r.dataValid = true
	}
	if r.writePending {
		r.mem[r.writeAddr] = r.writeData
	}
	r.readPending = false
	r.writePending = false
}

// Data returns the word captured by the read issued in the previous
// cycle. ok is false if no read was issued.
func (r *SDPRAM[T]) Data() (data T, ok bool) {
	return r.data, r.dataValid
}

// Pending reports whether a read or write presented this cycle has not
// yet been committed by a Tick. Simulators include it in their
// quiescence checks: committed state (Peek) is only meaningful once no
// port request is outstanding.
func (r *SDPRAM[T]) Pending() bool { return r.readPending || r.writePending }

// Peek returns the committed contents of a word without using the read
// port. Test and checker helper; not part of the hardware interface.
func (r *SDPRAM[T]) Peek(addr int) T { return r.mem[addr] }

// Poke overwrites the committed contents of a word without using the
// write port. Maintenance path used by testbenches and by recovery
// rebuilds; not part of the hardware interface.
func (r *SDPRAM[T]) Poke(addr int, data T) { r.mem[addr] = data }

// Stats reports the port activity since construction: total reads,
// total writes, and read-during-write collisions (the operation-hiding
// events of Section 5.2.3).
func (r *SDPRAM[T]) Stats() (reads, writes, collisions uint64) {
	return r.reads, r.writes, r.collisions
}
