package hw

import "testing"

func TestOpKindString(t *testing.T) {
	if Nop.String() != "nop" || Push.String() != "push" || Pop.String() != "pop" {
		t.Error("OpKind names wrong")
	}
	if OpKind(9).String() != "OpKind(9)" {
		t.Error("unknown OpKind name wrong")
	}
}

func TestOpBuilders(t *testing.T) {
	p := PushOp(5, 7)
	if p.Kind != Push || p.Value != 5 || p.Meta != 7 {
		t.Errorf("PushOp = %+v", p)
	}
	if PopOp().Kind != Pop {
		t.Error("PopOp kind wrong")
	}
	if NopOp().Kind != Nop {
		t.Error("NopOp kind wrong")
	}
}

func TestSDPRAMBasicReadWrite(t *testing.T) {
	r := NewSDPRAM[int](8)
	if r.Words() != 8 {
		t.Fatalf("Words = %d", r.Words())
	}
	// Cycle 0: write 42 to addr 3.
	r.Write(3, 42)
	r.Tick()
	if _, ok := r.Data(); ok {
		t.Fatal("data valid without a read")
	}
	// Cycle 1: read addr 3.
	r.Read(3)
	r.Tick()
	d, ok := r.Data()
	if !ok || d != 42 {
		t.Fatalf("read = %d,%v want 42", d, ok)
	}
	// Data is one-shot per read.
	r.Tick()
	if _, ok := r.Data(); ok {
		t.Fatal("stale data still valid")
	}
}

// TestSDPRAMWriteFirst verifies the property of Section 5.2.3: a read and
// a write to the same address in the same cycle return the newly written
// data (the paper's example: old value 32, new value 28, the read gets 28).
func TestSDPRAMWriteFirst(t *testing.T) {
	r := NewSDPRAM[int](4)
	r.Write(1, 32)
	r.Tick()

	r.Write(1, 28)
	r.Read(1)
	r.Tick()
	d, ok := r.Data()
	if !ok || d != 28 {
		t.Fatalf("read-during-write = %d,%v want 28", d, ok)
	}
	if r.Peek(1) != 28 {
		t.Fatalf("committed value = %d want 28", r.Peek(1))
	}
	_, _, coll := r.Stats()
	if coll != 1 {
		t.Fatalf("collisions = %d want 1", coll)
	}
}

// TestSDPRAMDistinctAddresses verifies that a same-cycle read of a
// different address returns the old committed data, not the in-flight
// write.
func TestSDPRAMDistinctAddresses(t *testing.T) {
	r := NewSDPRAM[int](4)
	r.Write(0, 10)
	r.Tick()
	r.Write(1, 20)
	r.Read(0)
	r.Tick()
	if d, _ := r.Data(); d != 10 {
		t.Fatalf("read = %d want 10", d)
	}
}

func TestSDPRAMReadBeforeAnyWriteIsZero(t *testing.T) {
	r := NewSDPRAM[int](2)
	r.Read(1)
	r.Tick()
	if d, ok := r.Data(); !ok || d != 0 {
		t.Fatalf("read of untouched word = %d,%v want 0,true", d, ok)
	}
}

func TestSDPRAMDoublePortUsePanics(t *testing.T) {
	r := NewSDPRAM[int](2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double read did not panic")
			}
		}()
		r.Read(0)
		r.Read(1)
	}()
	r.Tick()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double write did not panic")
			}
		}()
		r.Write(0, 1)
		r.Write(1, 2)
	}()
}

func TestSDPRAMStats(t *testing.T) {
	r := NewSDPRAM[int](4)
	for i := 0; i < 5; i++ {
		r.Write(i%4, i)
		r.Tick()
	}
	for i := 0; i < 3; i++ {
		r.Read(i)
		r.Tick()
	}
	reads, writes, _ := r.Stats()
	if reads != 3 || writes != 5 {
		t.Fatalf("stats = %d reads %d writes, want 3, 5", reads, writes)
	}
}
