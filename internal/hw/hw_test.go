package hw

import (
	"errors"
	"strings"
	"testing"
)

func TestOpKindString(t *testing.T) {
	if Nop.String() != "nop" || Push.String() != "push" || Pop.String() != "pop" {
		t.Error("OpKind names wrong")
	}
	if OpKind(9).String() != "OpKind(9)" {
		t.Error("unknown OpKind name wrong")
	}
}

func TestOpBuilders(t *testing.T) {
	p := PushOp(5, 7)
	if p.Kind != Push || p.Value != 5 || p.Meta != 7 {
		t.Errorf("PushOp = %+v", p)
	}
	if PopOp().Kind != Pop {
		t.Error("PopOp kind wrong")
	}
	if NopOp().Kind != Nop {
		t.Error("NopOp kind wrong")
	}
}

func TestSDPRAMBasicReadWrite(t *testing.T) {
	r := NewSDPRAM[int](8)
	if r.Words() != 8 {
		t.Fatalf("Words = %d", r.Words())
	}
	// Cycle 0: write 42 to addr 3.
	r.Write(3, 42)
	r.Tick()
	if _, ok := r.Data(); ok {
		t.Fatal("data valid without a read")
	}
	// Cycle 1: read addr 3.
	r.Read(3)
	r.Tick()
	d, ok := r.Data()
	if !ok || d != 42 {
		t.Fatalf("read = %d,%v want 42", d, ok)
	}
	// Data is one-shot per read.
	r.Tick()
	if _, ok := r.Data(); ok {
		t.Fatal("stale data still valid")
	}
}

// TestSDPRAMWriteFirst verifies the property of Section 5.2.3: a read and
// a write to the same address in the same cycle return the newly written
// data (the paper's example: old value 32, new value 28, the read gets 28).
func TestSDPRAMWriteFirst(t *testing.T) {
	r := NewSDPRAM[int](4)
	r.Write(1, 32)
	r.Tick()

	r.Write(1, 28)
	r.Read(1)
	r.Tick()
	d, ok := r.Data()
	if !ok || d != 28 {
		t.Fatalf("read-during-write = %d,%v want 28", d, ok)
	}
	if r.Peek(1) != 28 {
		t.Fatalf("committed value = %d want 28", r.Peek(1))
	}
	_, _, coll := r.Stats()
	if coll != 1 {
		t.Fatalf("collisions = %d want 1", coll)
	}
}

// TestSDPRAMDistinctAddresses verifies that a same-cycle read of a
// different address returns the old committed data, not the in-flight
// write.
func TestSDPRAMDistinctAddresses(t *testing.T) {
	r := NewSDPRAM[int](4)
	r.Write(0, 10)
	r.Tick()
	r.Write(1, 20)
	r.Read(0)
	r.Tick()
	if d, _ := r.Data(); d != 10 {
		t.Fatalf("read = %d want 10", d)
	}
}

func TestSDPRAMReadBeforeAnyWriteIsZero(t *testing.T) {
	r := NewSDPRAM[int](2)
	r.Read(1)
	r.Tick()
	if d, ok := r.Data(); !ok || d != 0 {
		t.Fatalf("read of untouched word = %d,%v want 0,true", d, ok)
	}
}

func TestSDPRAMDoublePortUsePanics(t *testing.T) {
	r := NewSDPRAM[int](2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double read did not panic")
			}
		}()
		r.Read(0)
		r.Read(1)
	}()
	r.Tick()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double write did not panic")
			}
		}()
		r.Write(0, 1)
		r.Write(1, 2)
	}()
}

func TestSDPRAMStats(t *testing.T) {
	r := NewSDPRAM[int](4)
	for i := 0; i < 5; i++ {
		r.Write(i%4, i)
		r.Tick()
	}
	for i := 0; i < 3; i++ {
		r.Read(i)
		r.Tick()
	}
	reads, writes, _ := r.Stats()
	if reads != 3 || writes != 5 {
		t.Fatalf("stats = %d reads %d writes, want 3, 5", reads, writes)
	}
}

// TestSDPRAMAddressBounds proves out-of-range addresses fail at issue
// time, on both ports, with a message naming the port and the range —
// not later inside Tick as a raw slice-index panic.
func TestSDPRAMAddressBounds(t *testing.T) {
	cases := []struct {
		name string
		use  func(r *SDPRAM[int])
		want string
	}{
		{"read-negative", func(r *SDPRAM[int]) { r.Read(-1) }, "read address -1 out of range [0,4)"},
		{"read-high", func(r *SDPRAM[int]) { r.Read(4) }, "read address 4 out of range [0,4)"},
		{"write-negative", func(r *SDPRAM[int]) { r.Write(-3, 0) }, "write address -3 out of range [0,4)"},
		{"write-high", func(r *SDPRAM[int]) { r.Write(7, 0) }, "write address 7 out of range [0,4)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewSDPRAM[int](4)
			defer func() {
				msg, ok := recover().(string)
				if !ok {
					t.Fatalf("no panic for %s", tc.name)
				}
				if !strings.Contains(msg, tc.want) {
					t.Fatalf("panic %q does not contain %q", msg, tc.want)
				}
				// The port must not be left half-issued: legal traffic
				// still works afterwards.
				r.Write(0, 42)
				r.Read(0)
				r.Tick()
				if d, ok := r.Data(); !ok || d != 42 {
					t.Fatalf("RAM unusable after rejected address: %d, %v", d, ok)
				}
			}()
			tc.use(r)
		})
	}
}

// TestSDPRAMInBoundsEdgeAddresses exercises the accepted boundary
// addresses 0 and Words()-1 end to end.
func TestSDPRAMInBoundsEdgeAddresses(t *testing.T) {
	r := NewSDPRAM[int](4)
	r.Write(0, 10)
	r.Tick()
	r.Write(3, 13)
	r.Tick()
	r.Read(0)
	r.Tick()
	if d, _ := r.Data(); d != 10 {
		t.Fatalf("word 0 = %d", d)
	}
	r.Read(3)
	r.Tick()
	if d, _ := r.Data(); d != 13 {
		t.Fatalf("word 3 = %d", d)
	}
}

// TestSDPRAMPoke checks the maintenance write path commits immediately
// and is observable by both Peek and the functional read port.
func TestSDPRAMPoke(t *testing.T) {
	r := NewSDPRAM[int](2)
	r.Poke(1, 99)
	if r.Peek(1) != 99 {
		t.Fatalf("Peek after Poke = %d", r.Peek(1))
	}
	r.Read(1)
	r.Tick()
	if d, _ := r.Data(); d != 99 {
		t.Fatalf("port read after Poke = %d", d)
	}
}

// TestCorruptionError checks the typed fault status wraps ErrCorrupt
// and formats its location.
func TestCorruptionError(t *testing.T) {
	withChunk := &CorruptionError{Unit: "sram3", Word: 7, Chunk: 2, Cycle: 41, Detail: "double-bit error"}
	if !errors.Is(withChunk, ErrCorrupt) {
		t.Fatal("CorruptionError does not match ErrCorrupt")
	}
	for _, want := range []string{"sram3", "word 7", "chunk 2", "cycle 41", "double-bit error"} {
		if !strings.Contains(withChunk.Error(), want) {
			t.Fatalf("error %q missing %q", withChunk.Error(), want)
		}
	}
	noChunk := &CorruptionError{Unit: "rbmw-regs", Word: 3, Chunk: -1, Cycle: 9, Detail: "parity mismatch"}
	if strings.Contains(noChunk.Error(), "chunk") {
		t.Fatalf("chunk-less error mentions chunk: %q", noChunk.Error())
	}
	if !errors.Is(noChunk, ErrCorrupt) {
		t.Fatal("chunk-less CorruptionError does not match ErrCorrupt")
	}
}
