package hw

// CycleKind classifies what a pipeline did with one consumed clock
// cycle, from the issue interface's point of view. The observability
// probes count cycles by kind so an experiment can decompose a run
// into useful work versus the handshake's mandatory gaps versus true
// idleness — the decomposition behind the paper's sustained-rate
// claims (1 push/cycle for R-BMW, the idle-after-pop of RPU-BMW).
type CycleKind int

const (
	// CycleIssuePush: a push was accepted at the root this cycle.
	CycleIssuePush CycleKind = iota
	// CycleIssuePop: a pop was accepted and its result emitted.
	CycleIssuePop
	// CycleStall: no operation could be issued because the handshake
	// (pop_available / push_available, Plain-mode cooldowns, the
	// RPU-BMW mandatory idle-after-pop) forbade it.
	CycleStall
	// CycleDrain: nothing was issued, but waves or RPU operations were
	// still in flight below the root.
	CycleDrain
	// CycleIdle: nothing issued and the pipeline quiescent.
	CycleIdle

	numCycleKinds
)

// NumCycleKinds is the number of classifications, for sizing tables.
const NumCycleKinds = int(numCycleKinds)

// String returns the snake_case name used in metric names and traces.
func (k CycleKind) String() string {
	switch k {
	case CycleIssuePush:
		return "issue_push"
	case CycleIssuePop:
		return "issue_pop"
	case CycleStall:
		return "stall"
	case CycleDrain:
		return "drain"
	case CycleIdle:
		return "idle"
	default:
		return "unknown"
	}
}
