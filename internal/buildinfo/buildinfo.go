// Package buildinfo centralises the build-identity plumbing the
// report writers and incident bundles stamp their output with: the
// VCS revision from the binary's embedded build info (with a git
// fallback for `go run` builds, whose stamping is disabled), the
// toolchain version, and a one-line human form for -version flags.
package buildinfo

import (
	"fmt"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
)

// Commit returns the VCS revision the binary was built from: the
// vcs.revision build setting when present (suffixed "-dirty" when the
// tree was modified), otherwise `git rev-parse HEAD`, otherwise
// "unknown".
func Commit() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		rev, dirty := "", false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			if dirty {
				rev += "-dirty"
			}
			return rev
		}
	}
	// `go run` and `go test` binaries carry no VCS stamp; ask git.
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err == nil {
		if rev := strings.TrimSpace(string(out)); rev != "" {
			return rev
		}
	}
	return "unknown"
}

// GoVersion returns the toolchain that built the binary.
func GoVersion() string { return runtime.Version() }

// Version renders the one-line form the binaries print for -version:
//
//	<name> <commit> <go version> <GOOS>/<GOARCH>
func Version(name string) string {
	return fmt.Sprintf("%s %.12s %s %s/%s",
		name, Commit(), GoVersion(), runtime.GOOS, runtime.GOARCH)
}
