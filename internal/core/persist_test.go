package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/hw"
	"repro/internal/persist"
)

func drive(t *testing.T, tr *Tree, seed int64, ops int) []persist.Op {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var log []persist.Op
	for i := 0; i < ops; i++ {
		if tr.Len() > 0 && (rng.Intn(3) == 0 || tr.AlmostFull()) {
			e, err := tr.Pop()
			if err != nil {
				t.Fatal(err)
			}
			p, q := tr.OpStats()
			log = append(log, persist.Op{Kind: hw.Pop, Cycle: p + q, Value: e.Value, Meta: e.Meta})
			continue
		}
		e := Element{Value: uint64(rng.Intn(1000)), Meta: uint64(i)}
		if err := tr.Push(e); err != nil {
			t.Fatal(err)
		}
		p, q := tr.OpStats()
		log = append(log, persist.Op{Kind: hw.Push, Cycle: p + q, Value: e.Value, Meta: e.Meta})
	}
	return log
}

func drain(t *testing.T, tr *Tree) []Element {
	t.Helper()
	out := make([]Element, 0, tr.Len())
	for tr.Len() > 0 {
		e, err := tr.Pop()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, e)
	}
	return out
}

func TestSnapshotRoundTrip(t *testing.T) {
	a := New(4, 3)
	drive(t, a, 1, 300)
	payload, err := a.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	b := New(4, 3)
	if err := b.RestoreSnapshot(a.SnapshotVersion(), payload); err != nil {
		t.Fatal(err)
	}
	if err := b.VerifyRecovered(); err != nil {
		t.Fatal(err)
	}
	ap, aq := a.OpStats()
	bp, bq := b.OpStats()
	if ap != bp || aq != bq || a.Len() != b.Len() || a.HighWatermark() != b.HighWatermark() {
		t.Fatalf("counters diverged: a=(%d,%d,%d,%d) b=(%d,%d,%d,%d)",
			ap, aq, a.Len(), a.HighWatermark(), bp, bq, b.Len(), b.HighWatermark())
	}
	da, db := drain(t, a), drain(t, b)
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("pop %d diverged: %+v vs %+v", i, da[i], db[i])
		}
	}
}

func TestRestoreRejectsShapeMismatch(t *testing.T) {
	a := New(4, 3)
	payload, err := a.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	b := New(2, 3)
	if err := b.RestoreSnapshot(1, payload); err == nil || !strings.Contains(err.Error(), "shape") {
		t.Fatalf("shape mismatch accepted: %v", err)
	}
	if err := New(4, 3).RestoreSnapshot(99, payload); err == nil {
		t.Fatal("unknown version accepted")
	}
}

func TestRestoreRejectsTruncatedPayload(t *testing.T) {
	a := New(2, 3)
	drive(t, a, 2, 50)
	payload, err := a.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, len(payload) / 2, len(payload) - 1} {
		b := New(2, 3)
		if err := b.RestoreSnapshot(1, payload[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
		// A failed restore must leave the receiver untouched and usable.
		if b.Len() != 0 {
			t.Fatalf("failed restore mutated the receiver (len %d)", b.Len())
		}
	}
}

func TestReplayReproducesState(t *testing.T) {
	a := New(3, 3)
	log := drive(t, a, 3, 200)

	b := New(3, 3)
	for i, op := range log {
		if err := b.Replay(op); err != nil {
			t.Fatalf("replay op %d: %v", i, err)
		}
	}
	if err := b.VerifyRecovered(); err != nil {
		t.Fatal(err)
	}
	da, db := drain(t, a), drain(t, b)
	if len(da) != len(db) {
		t.Fatalf("drain lengths %d vs %d", len(da), len(db))
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("pop %d diverged", i)
		}
	}
}

func TestReplayAuditsPopDivergence(t *testing.T) {
	b := New(2, 2)
	if err := b.Replay(persist.Op{Kind: hw.Push, Cycle: 1, Value: 10, Meta: 1}); err != nil {
		t.Fatal(err)
	}
	err := b.Replay(persist.Op{Kind: hw.Pop, Cycle: 2, Value: 999, Meta: 1})
	if err == nil || !strings.Contains(err.Error(), "divergence") {
		t.Fatalf("divergent pop not caught: %v", err)
	}
}
