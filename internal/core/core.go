// Package core implements the Balanced Multi-Way sorting tree (BMW-Tree)
// of Yao et al., "BMW Tree: Large-scale, High-throughput and Modular PIFO
// Implementation using Balanced Multi-Way Sorting Tree" (SIGCOMM 2023),
// Section 3.
//
// The tree is the golden software model for the cycle-accurate hardware
// simulations in internal/rbmw and internal/rpubmw: it defines the exact
// functional behaviour (which element each push displaces, which element
// each pop lifts) that the pipelined designs must reproduce.
//
// A BMW-Tree of order M with L levels stores up to M(M^L-1)/(M-1)
// elements. Each node holds up to M unsorted elements; the i-th element
// of a node roots the i-th sub-tree below the node. The heap property
// holds per element: an element's value is less than or equal to every
// value in the sub-tree it roots. Each element carries a counter equal to
// the number of elements in its sub-tree, itself included; a counter of
// zero marks an empty slot, exactly as the hardware encodes vacancy.
package core

import (
	"errors"
	"fmt"

	"repro/internal/obs"
)

// Element is one entry of the priority queue: a packet reference. Value
// is the rank (smaller pops first) and Meta is opaque packet metadata.
// The paper uses 16-bit ranks and 32-bit metadata; the software model is
// width-agnostic.
type Element struct {
	Value uint64
	Meta  uint64
}

// slot is one of the M element positions inside a node. count is the
// number of elements in the sub-tree rooted at this slot (including the
// slot itself); count == 0 means the slot is empty. born is the low 32
// bits of the logical clock (pushes+pops) at insertion, used by the
// sojourn probe; it rides in the padding after count, keeping the slot
// at 24 bytes.
type slot struct {
	val   uint64
	meta  uint64
	count uint32
	born  uint32
}

// Tree is an order-M, L-level BMW sorting tree.
//
// Nodes are stored in a flat array in breadth-first order: node 0 is the
// root and node n's k-th child (0-based) is node n*M+k+1, which mirrors
// the SRAM addressing rule of Section 5.1 of the paper.
//
// A Tree is intentionally confined to a single goroutine: as the golden
// model for single-issue-port hardware it carries no locks on its hot
// path. Concurrent callers go through internal/engine, which gives each
// tree an exclusively owning shard goroutine.
type Tree struct {
	m, l     int
	nodes    []slot // len = numNodes*m; node n occupies [n*m, n*m+m)
	numNodes int
	size     int
	capacity int

	pushes, pops uint64
	maxSize      int

	// sojourn, when instrumented, observes the enqueue-to-dequeue
	// latency of every popped element in logical clock ticks (one tick
	// per push or pop). Nil when uninstrumented; Observe is nil-safe.
	sojourn *obs.QuantileHistogram
}

// clock returns the logical clock: one tick per completed operation.
func (t *Tree) clock() uint32 { return uint32(t.pushes + t.pops) }

// Common errors returned by priority-queue implementations in this module.
var (
	ErrFull  = errors.New("bmw: priority queue is full")
	ErrEmpty = errors.New("bmw: priority queue is empty")
)

// MinOrder is the smallest supported tree order. An order-1 tree would
// degenerate into a linked list and is rejected.
const MinOrder = 2

// Capacity returns the number of elements supported by an order-m tree
// with l levels: m(m^l-1)/(m-1). It panics if the parameters are invalid
// or the capacity overflows int.
func Capacity(m, l int) int {
	if m < MinOrder || l < 1 {
		panic(fmt.Sprintf("core: invalid tree shape m=%d l=%d", m, l))
	}
	n := NumNodes(m, l)
	return n * m
}

// NumNodes returns the number of nodes of an order-m tree with l levels:
// (m^l-1)/(m-1).
func NumNodes(m, l int) int {
	if m < MinOrder || l < 1 {
		panic(fmt.Sprintf("core: invalid tree shape m=%d l=%d", m, l))
	}
	n := 0
	p := 1
	for i := 0; i < l; i++ {
		n += p
		const maxInt = int(^uint(0) >> 1)
		if p > maxInt/m {
			panic(fmt.Sprintf("core: tree shape m=%d l=%d overflows", m, l))
		}
		p *= m
	}
	return n
}

// New creates an empty order-m BMW-Tree with l levels. It panics if
// m < 2 or l < 1 (matching the constraints of the hardware designs,
// which require at least a root node and a branching factor of two).
func New(m, l int) *Tree {
	n := NumNodes(m, l)
	return &Tree{
		m:        m,
		l:        l,
		nodes:    make([]slot, n*m),
		numNodes: n,
		capacity: n * m,
	}
}

// Order returns M, the number of elements (and children) per node.
func (t *Tree) Order() int { return t.m }

// Levels returns L, the number of levels of the tree.
func (t *Tree) Levels() int { return t.l }

// Len returns the number of elements currently stored.
func (t *Tree) Len() int { return t.size }

// Cap returns the maximum number of elements the tree can hold.
func (t *Tree) Cap() int { return t.capacity }

// AlmostFull reports whether the tree cannot accept a new push. In the
// hardware this is the almost_full signal computed by the CALC module
// from the total element count, which is the sum of the root counters.
func (t *Tree) AlmostFull() bool { return t.size >= t.capacity }

// Clone returns an independent deep copy of the tree: same shape, same
// slots, same counters and high-water mark. The clone shares no storage
// with the original and is uninstrumented (attach a sojourn probe
// separately if needed). The persistence harnesses use it to fork a
// golden reference from a live queue before draining both.
func (t *Tree) Clone() *Tree {
	c := &Tree{
		m:        t.m,
		l:        t.l,
		nodes:    append([]slot(nil), t.nodes...),
		numNodes: t.numNodes,
		size:     t.size,
		capacity: t.capacity,
		pushes:   t.pushes,
		pops:     t.pops,
		maxSize:  t.maxSize,
	}
	return c
}

// Reset empties the tree in place.
func (t *Tree) Reset() {
	for i := range t.nodes {
		t.nodes[i] = slot{}
	}
	t.size = 0
}

// Push inserts an element, following the push algorithm of Section 3.2:
// if the current node has an empty slot, the value parks in the leftmost
// empty slot; otherwise the least-loaded sub-tree (leftmost on ties) is
// chosen, its counter is incremented, the incoming value is compared with
// the sub-tree's root element, and the larger of the two is pushed down
// recursively. Returns ErrFull when the tree is at capacity.
func (t *Tree) Push(e Element) error {
	if t.size >= t.capacity {
		return ErrFull
	}
	val, meta := e.Value, e.Meta
	born := t.clock()
	n := 0
	for {
		base := n * t.m
		// Leftmost empty slot, if any.
		placed := false
		for i := 0; i < t.m; i++ {
			if t.nodes[base+i].count == 0 {
				t.nodes[base+i] = slot{val: val, meta: meta, count: 1, born: born}
				placed = true
				break
			}
		}
		if placed {
			break
		}
		// Node full: pick the least-loaded sub-tree, leftmost on ties.
		min := 0
		for i := 1; i < t.m; i++ {
			if t.nodes[base+i].count < t.nodes[base+min].count {
				min = i
			}
		}
		s := &t.nodes[base+min]
		s.count++
		// The smaller of (incoming, sub-tree root) keeps the slot; the
		// larger continues down the chosen sub-tree. The born tag
		// travels with its element.
		if val < s.val {
			val, s.val = s.val, val
			meta, s.meta = s.meta, meta
			born, s.born = s.born, born
		}
		n = n*t.m + min + 1
	}
	t.size++
	t.pushes++
	if t.size > t.maxSize {
		t.maxSize = t.size
	}
	return nil
}

// Peek returns the smallest element without removing it. The minimum is
// always present in the root node because of the heap property.
func (t *Tree) Peek() (Element, error) {
	if t.size == 0 {
		return Element{}, ErrEmpty
	}
	i := t.minSlot(0)
	s := t.nodes[i]
	return Element{Value: s.val, Meta: s.meta}, nil
}

// Pop removes and returns the smallest element, following the pop
// algorithm of Section 3.2: the smallest root element leaves, and the
// vacancy is refilled by lifting the smallest element of the sub-tree
// below it, recursively, until an element with an empty sub-tree is
// reached. Returns ErrEmpty on an empty tree.
func (t *Tree) Pop() (Element, error) {
	if t.size == 0 {
		return Element{}, ErrEmpty
	}
	n := 0
	i := t.minSlot(0) - 0*t.m // absolute slot index within flat array
	out := Element{Value: t.nodes[i].val, Meta: t.nodes[i].meta}
	t.sojourn.Observe(uint64(t.clock() - t.nodes[i].born))
	// i is the absolute flat index; convert to per-node slot index below.
	si := i - n*t.m
	for {
		s := &t.nodes[n*t.m+si]
		s.count--
		if s.count == 0 {
			// Empty sub-tree below: the slot simply becomes vacant.
			*s = slot{}
			break
		}
		// Lift the smallest element of the si-th child node.
		child := n*t.m + si + 1
		ci := t.minSlot(child)
		cs := t.nodes[ci]
		s.val, s.meta = cs.val, cs.meta
		s.born = cs.born
		n = child
		si = ci - child*t.m
	}
	t.size--
	t.pops++
	return out, nil
}

// OpStats returns the number of successful pushes and pops since
// creation (Reset does not clear them).
func (t *Tree) OpStats() (pushes, pops uint64) { return t.pushes, t.pops }

// HighWatermark returns the largest occupancy reached since creation.
func (t *Tree) HighWatermark() int { return t.maxSize }

// LevelOccupancy counts the occupied slots at a 1-based level.
func (t *Tree) LevelOccupancy(lvl int) int {
	if lvl < 1 || lvl > t.l {
		return 0
	}
	start, count := 0, 1
	for i := 1; i < lvl; i++ {
		start += count
		count *= t.m
	}
	occ := 0
	for n := start; n < start+count; n++ {
		for i := 0; i < t.m; i++ {
			if t.nodes[n*t.m+i].count != 0 {
				occ++
			}
		}
	}
	return occ
}

// minSlot returns the absolute flat index of the smallest valid element
// in node n. It panics if the node is empty; callers guarantee occupancy
// via the counters, exactly as the autonomous hardware nodes do.
func (t *Tree) minSlot(n int) int {
	base := n * t.m
	min := -1
	for i := 0; i < t.m; i++ {
		if t.nodes[base+i].count == 0 {
			continue
		}
		if min < 0 || t.nodes[base+i].val < t.nodes[base+min].val {
			min = i
		}
	}
	if min < 0 {
		panic(fmt.Sprintf("core: minSlot on empty node %d", n))
	}
	return base + min
}

// Slot reports the element and counter at node n, position i. It is used
// by the hardware simulations and the invariant checker; ok is false for
// an empty slot.
func (t *Tree) Slot(n, i int) (e Element, count uint32, ok bool) {
	s := t.nodes[n*t.m+i]
	return Element{Value: s.val, Meta: s.meta}, s.count, s.count != 0
}

// SlotState reports the value and counter at node n, position i, in the
// form required by the shared invariant checker (internal/treecheck).
func (t *Tree) SlotState(n, i int) (value uint64, count uint32, ok bool) {
	s := t.nodes[n*t.m+i]
	return s.val, s.count, s.count != 0
}

// SubtreeCounts returns the counters of the M root elements; their sum is
// the stored element count (the tree meta-information of Section 3.1).
func (t *Tree) SubtreeCounts() []uint32 {
	out := make([]uint32, t.m)
	for i := 0; i < t.m; i++ {
		out[i] = t.nodes[i].count
	}
	return out
}

// CheckInvariants verifies the structural invariants of Section 3.1 and
// returns a descriptive error on the first violation:
//
//   - counter correctness: each slot's counter equals the number of
//     elements in the sub-tree rooted at that slot (itself included);
//   - heap property: each element's value is <= every value in its
//     sub-tree;
//   - size consistency: the root counters sum to Len().
func (t *Tree) CheckInvariants() error {
	total := 0
	for i := 0; i < t.m; i++ {
		c, err := t.checkSlot(0, i)
		if err != nil {
			return err
		}
		total += c
	}
	if total != t.size {
		return fmt.Errorf("core: root counters sum to %d, size is %d", total, t.size)
	}
	return nil
}

// checkSlot validates the sub-tree rooted at slot i of node n and returns
// its element count.
func (t *Tree) checkSlot(n, i int) (int, error) {
	s := t.nodes[n*t.m+i]
	if s.count == 0 {
		// Empty slot: its sub-tree must be empty too.
		if err := t.checkEmptyBelow(n, i); err != nil {
			return 0, err
		}
		return 0, nil
	}
	count := 1
	child := n*t.m + i + 1
	if child < t.numNodes {
		for j := 0; j < t.m; j++ {
			cs := t.nodes[child*t.m+j]
			if cs.count != 0 && cs.val < s.val {
				return 0, fmt.Errorf("core: heap violation: node %d slot %d value %d > child node %d slot %d value %d",
					n, i, s.val, child, j, cs.val)
			}
			c, err := t.checkSlot(child, j)
			if err != nil {
				return 0, err
			}
			count += c
		}
	}
	if uint32(count) != s.count {
		return 0, fmt.Errorf("core: counter violation: node %d slot %d counter %d, actual sub-tree size %d",
			n, i, s.count, count)
	}
	return count, nil
}

// checkEmptyBelow verifies that no element exists below an empty slot.
func (t *Tree) checkEmptyBelow(n, i int) error {
	child := n*t.m + i + 1
	if child >= t.numNodes {
		return nil
	}
	for j := 0; j < t.m; j++ {
		if t.nodes[child*t.m+j].count != 0 {
			return fmt.Errorf("core: orphan element below empty slot: node %d slot %d", child, j)
		}
		if err := t.checkEmptyBelow(child, j); err != nil {
			return err
		}
	}
	return nil
}

// MaxImbalance returns the largest difference between sibling sub-tree
// counters over all nodes that are full (all M slots occupied). It is the
// insertion-balance metric of Section 3.3: after a push-only workload it
// is at most 1; interleaved pops can locally unbalance the tree.
func (t *Tree) MaxImbalance() uint32 {
	var worst uint32
	for n := 0; n < t.numNodes; n++ {
		base := n * t.m
		lo, hi := t.nodes[base].count, t.nodes[base].count
		full := true
		for i := 0; i < t.m; i++ {
			c := t.nodes[base+i].count
			if c == 0 {
				full = false
				break
			}
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if full && hi-lo > worst {
			worst = hi - lo
		}
	}
	return worst
}

// Depth returns the deepest level (1-based) that holds at least one
// element, or 0 for an empty tree. Used by the balance comparisons with
// pHeap (Table 1): an unbalanced structure grows deeper for the same
// element count.
func (t *Tree) Depth() int {
	deepest := 0
	nodesAtLevel := 1
	n := 0
	for l := 1; l <= t.l; l++ {
		levelHas := false
		for k := 0; k < nodesAtLevel*t.m; k++ {
			if t.nodes[n*t.m+k].count != 0 {
				levelHas = true
				break
			}
		}
		if levelHas {
			deepest = l
		}
		n += nodesAtLevel
		nodesAtLevel *= t.m
	}
	return deepest
}
