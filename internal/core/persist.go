// Snapshot/replay codec: the golden model as a persist.Checkpointable.
//
// The payload is the complete functional state — shape, occupancy,
// operation counters (which define the logical clock and therefore the
// sojourn born-tags), the high-water mark, and every slot including its
// born tag — so a restored tree is behaviourally indistinguishable from
// the one that was snapshotted.

package core

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/persist"
)

// coreSnapVersion is the current snapshot codec version.
const coreSnapVersion = 1

var _ persist.Checkpointable = (*Tree)(nil)

// SnapshotKind identifies the golden model's snapshots.
func (t *Tree) SnapshotKind() string { return "core" }

// SnapshotVersion returns the codec version EncodeSnapshot writes.
func (t *Tree) SnapshotVersion() uint32 { return coreSnapVersion }

// EncodeSnapshot serialises the complete tree state.
func (t *Tree) EncodeSnapshot() ([]byte, error) {
	var e persist.Enc
	e.U32(uint32(t.m))
	e.U32(uint32(t.l))
	e.U64(uint64(t.size))
	e.U64(t.pushes)
	e.U64(t.pops)
	e.U64(uint64(t.maxSize))
	e.U32(uint32(len(t.nodes)))
	for i := range t.nodes {
		sl := &t.nodes[i]
		e.U64(sl.val)
		e.U64(sl.meta)
		e.U32(sl.count)
		e.U32(sl.born)
	}
	return e.B, nil
}

// RestoreSnapshot loads a payload into the receiver, which must have
// the same shape as the tree that wrote it. The payload is fully
// decoded and validated before any receiver state changes.
func (t *Tree) RestoreSnapshot(version uint32, payload []byte) error {
	if version != coreSnapVersion {
		return fmt.Errorf("core: unsupported snapshot version %d (have %d)", version, coreSnapVersion)
	}
	d := persist.NewDec(payload)
	m, l := int(d.U32()), int(d.U32())
	size := int(d.U64())
	pushes, pops := d.U64(), d.U64()
	maxSize := int(d.U64())
	n := d.Len(1 << 30)
	if err := d.Err(); err != nil {
		return err
	}
	if m != t.m || l != t.l || n != len(t.nodes) {
		return fmt.Errorf("core: snapshot shape m=%d l=%d slots=%d does not match tree m=%d l=%d slots=%d",
			m, l, n, t.m, t.l, len(t.nodes))
	}
	if size < 0 || size > t.capacity {
		return fmt.Errorf("core: snapshot size %d out of range [0,%d]", size, t.capacity)
	}
	nodes := make([]slot, n)
	for i := range nodes {
		nodes[i] = slot{val: d.U64(), meta: d.U64(), count: d.U32(), born: d.U32()}
	}
	if err := d.Done(); err != nil {
		return err
	}
	copy(t.nodes, nodes)
	t.size = size
	t.pushes, t.pops = pushes, pops
	t.maxSize = maxSize
	return nil
}

// Replay applies one logged operation. The golden model's clock is the
// operation count itself, so no cycle alignment is needed; a pop is
// audited against the element the log recorded.
func (t *Tree) Replay(op persist.Op) error {
	switch op.Kind {
	case hw.Push:
		return t.Push(Element{Value: op.Value, Meta: op.Meta})
	case hw.Pop:
		e, err := t.Pop()
		if err != nil {
			return err
		}
		if e.Value != op.Value || e.Meta != op.Meta {
			return fmt.Errorf("core: replay divergence: popped (%d,%d), log recorded (%d,%d)",
				e.Value, e.Meta, op.Value, op.Meta)
		}
		return nil
	default:
		return fmt.Errorf("core: replay of invalid op kind %v", op.Kind)
	}
}

// VerifyRecovered runs the structural invariant checker.
func (t *Tree) VerifyRecovered() error { return t.CheckInvariants() }
