package core

import (
	"testing"

	"repro/internal/refpq"
)

// FuzzTreeAgainstReference interprets fuzz bytes as an operation
// stream over a 3-order, 4-level tree and validates every pop against
// the reference queue plus the structural invariants. Run with
// `go test -fuzz=FuzzTreeAgainstReference ./internal/core` to explore;
// the seed corpus runs under plain `go test`.
func FuzzTreeAgainstReference(f *testing.F) {
	f.Add([]byte{0x01, 0x82, 0x43, 0xFF, 0x00, 0x7E})
	f.Add([]byte("push-pop-push-pop"))
	f.Add([]byte{0, 0, 0, 0, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := New(3, 4)
		ref := refpq.New()
		for i, b := range data {
			if b&0x80 != 0 && ref.Len() > 0 {
				e, err := tr.Pop()
				if err != nil {
					t.Fatalf("pop: %v", err)
				}
				if e.Value != ref.MinValue() {
					t.Fatalf("pop %d, reference min %d", e.Value, ref.MinValue())
				}
				if !ref.RemoveExact(refpq.Entry{Value: e.Value, Meta: e.Meta}) {
					t.Fatal("popped element not in reference")
				}
			} else if !tr.AlmostFull() {
				e := Element{Value: uint64(b & 0x7F), Meta: uint64(i)}
				if err := tr.Push(e); err != nil {
					t.Fatalf("push: %v", err)
				}
				ref.Push(refpq.Entry{Value: e.Value, Meta: e.Meta})
			}
			if i%13 == 0 {
				if err := tr.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if tr.Len() != ref.Len() {
			t.Fatalf("size mismatch %d vs %d", tr.Len(), ref.Len())
		}
	})
}
