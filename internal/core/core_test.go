package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/refpq"
)

func TestCapacityFormula(t *testing.T) {
	cases := []struct {
		m, l, want int
	}{
		{2, 1, 2},
		{2, 3, 14}, // 3-2 tree of Figure 2: 7 nodes, 14 elements
		{2, 11, 4094},
		{2, 15, 65534},
		{4, 6, 5460},
		{4, 8, 87380},
		{8, 4, 4680},
		{8, 5, 37448},
	}
	for _, c := range cases {
		if got := Capacity(c.m, c.l); got != c.want {
			t.Errorf("Capacity(%d,%d) = %d, want %d", c.m, c.l, got, c.want)
		}
		tr := New(c.m, c.l)
		if tr.Cap() != c.want {
			t.Errorf("New(%d,%d).Cap() = %d, want %d", c.m, c.l, tr.Cap(), c.want)
		}
	}
}

func TestNumNodes(t *testing.T) {
	if got := NumNodes(2, 3); got != 7 {
		t.Errorf("NumNodes(2,3) = %d, want 7", got)
	}
	if got := NumNodes(4, 8); got != 21845 {
		t.Errorf("NumNodes(4,8) = %d, want 21845", got)
	}
}

func TestInvalidShapePanics(t *testing.T) {
	for _, c := range []struct{ m, l int }{{1, 3}, {0, 1}, {2, 0}, {-2, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", c.m, c.l)
				}
			}()
			New(c.m, c.l)
		}()
	}
}

// TestPaperFigure2 replays the worked example of Figure 2: pushing
// 10, 17, 57, 21, 32, 43, 74, 33 into a 3-level 2-way tree, then push 28
// and pop. The paper's narration pins down the intermediate decisions:
// 28 enters the first sub-tree (root 10), displaces 32 at the second
// level, and 32 lands in the third level; the pop removes 10 and lifts 28
// then 32.
func TestPaperFigure2(t *testing.T) {
	tr := New(2, 3)
	for _, v := range []uint64{10, 17, 57, 21, 32, 43, 74, 33} {
		if err := tr.Push(Element{Value: v, Meta: v}); err != nil {
			t.Fatalf("push %d: %v", v, err)
		}
	}
	counts := tr.SubtreeCounts()
	if counts[0] != 4 || counts[1] != 4 {
		t.Fatalf("sub-tree counters after 8 pushes = %v, want [4 4]", counts)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	if err := tr.Push(Element{Value: 28, Meta: 28}); err != nil {
		t.Fatalf("push 28: %v", err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	counts = tr.SubtreeCounts()
	if counts[0] != 5 || counts[1] != 4 {
		t.Fatalf("sub-tree counters after push 28 = %v, want [5 4]", counts)
	}
	// 28 must now sit in the second level of the first sub-tree (node 1),
	// and 32 in the third level.
	found28 := false
	for i := 0; i < 2; i++ {
		if e, _, ok := tr.Slot(1, i); ok && e.Value == 28 {
			found28 = true
		}
	}
	if !found28 {
		t.Error("28 not found in node 1 (second level, first sub-tree)")
	}

	e, err := tr.Pop()
	if err != nil || e.Value != 10 {
		t.Fatalf("pop = %v, %v; want value 10", e, err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// After the pop, 28 is lifted into the root.
	found := false
	for i := 0; i < 2; i++ {
		if e, _, ok := tr.Slot(0, i); ok && e.Value == 28 {
			found = true
		}
	}
	if !found {
		t.Error("28 not lifted into root node after pop")
	}
	if e, _ := tr.Peek(); e.Value != 17 {
		t.Errorf("peek after pop = %d, want 17", e.Value)
	}
}

func TestPushPopSorted(t *testing.T) {
	tr := New(2, 4) // capacity 30
	vals := []uint64{9, 3, 7, 3, 1, 8, 2, 2, 6, 5, 4, 0}
	for _, v := range vals {
		if err := tr.Push(Element{Value: v}); err != nil {
			t.Fatal(err)
		}
	}
	var prev uint64
	for i := range vals {
		e, err := tr.Pop()
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && e.Value < prev {
			t.Fatalf("pop sequence not sorted: %d after %d", e.Value, prev)
		}
		prev = e.Value
	}
	if _, err := tr.Pop(); err != ErrEmpty {
		t.Errorf("pop on empty = %v, want ErrEmpty", err)
	}
}

func TestFullAndEmptyErrors(t *testing.T) {
	tr := New(2, 2) // capacity 6
	for i := 0; i < 6; i++ {
		if tr.AlmostFull() {
			t.Fatalf("AlmostFull before capacity at %d", i)
		}
		if err := tr.Push(Element{Value: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if !tr.AlmostFull() {
		t.Error("AlmostFull not raised at capacity")
	}
	if err := tr.Push(Element{Value: 99}); err != ErrFull {
		t.Errorf("push on full = %v, want ErrFull", err)
	}
	if tr.Len() != 6 {
		t.Errorf("Len = %d, want 6", tr.Len())
	}
	// Fill-to-capacity is achievable ("all elements of BMW-Tree can be
	// filled if we want", Section 3.3) — verified by the loop above.
	for i := 0; i < 6; i++ {
		if _, err := tr.Pop(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tr.Peek(); err != ErrEmpty {
		t.Errorf("peek on empty = %v, want ErrEmpty", err)
	}
}

func TestReset(t *testing.T) {
	tr := New(4, 3)
	for i := 0; i < 50; i++ {
		if err := tr.Push(Element{Value: uint64(i % 7)}); err != nil {
			t.Fatal(err)
		}
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatalf("Len after Reset = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Pop(); err != ErrEmpty {
		t.Fatalf("pop after Reset = %v, want ErrEmpty", err)
	}
	// The tree must be fully reusable.
	if err := tr.Push(Element{Value: 5}); err != nil {
		t.Fatal(err)
	}
	if e, _ := tr.Peek(); e.Value != 5 {
		t.Fatalf("peek after reuse = %d", e.Value)
	}
}

// TestInsertionBalance checks the insertion-balance property of Section
// 3.3: with a push-only workload, sibling sub-tree counters at any full
// node differ by at most 1.
func TestInsertionBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, shape := range []struct{ m, l int }{{2, 6}, {4, 4}, {8, 3}} {
		tr := New(shape.m, shape.l)
		for i := 0; i < tr.Cap(); i++ {
			if err := tr.Push(Element{Value: uint64(rng.Intn(1000))}); err != nil {
				t.Fatal(err)
			}
			if imb := tr.MaxImbalance(); imb > 1 {
				t.Fatalf("m=%d l=%d: imbalance %d after %d pushes", shape.m, shape.l, imb, i+1)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPopCanUnbalance documents the counterpart: successive pops on the
// same sub-tree can locally unbalance the tree (Section 3.3), and new
// pushes re-balance it.
func TestPopCanUnbalance(t *testing.T) {
	tr := New(2, 5) // capacity 62
	// Push ascending values so pops drain the sub-tree holding the small
	// values.
	for i := 0; i < 40; i++ {
		if err := tr.Push(Element{Value: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ {
		if _, err := tr.Pop(); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	counts := tr.SubtreeCounts()
	t.Logf("sub-tree counters after 40 pushes, 16 pops: %v", counts)
	// New pushes move towards balance: the least-loaded sub-tree is always
	// chosen, so the gap cannot grow.
	gap := func() int {
		c := tr.SubtreeCounts()
		d := int(c[0]) - int(c[1])
		if d < 0 {
			d = -d
		}
		return d
	}
	before := gap()
	for i := 0; i < before; i++ {
		if err := tr.Push(Element{Value: 1000 + uint64(i)}); err != nil {
			t.Fatal(err)
		}
		if g := gap(); g > before {
			t.Fatalf("push increased imbalance: %d > %d", g, before)
		}
	}
}

// TestRandomAgainstReference drives random interleaved push/pop workloads
// and validates every pop against the reference queue, checking the
// structural invariants along the way.
func TestRandomAgainstReference(t *testing.T) {
	shapes := []struct{ m, l int }{{2, 3}, {2, 7}, {3, 4}, {4, 4}, {8, 3}, {5, 2}}
	for _, shape := range shapes {
		rng := rand.New(rand.NewSource(int64(shape.m*100 + shape.l)))
		tr := New(shape.m, shape.l)
		ref := refpq.New()
		ops := 4000
		if tr.Cap() < 100 {
			ops = 1000
		}
		for op := 0; op < ops; op++ {
			doPush := rng.Intn(2) == 0
			if tr.Len() == 0 {
				doPush = true
			}
			if tr.AlmostFull() {
				doPush = false
			}
			if doPush {
				e := Element{Value: uint64(rng.Intn(512)), Meta: uint64(op)}
				if err := tr.Push(e); err != nil {
					t.Fatalf("m=%d l=%d push: %v", shape.m, shape.l, err)
				}
				ref.Push(refpq.Entry{Value: e.Value, Meta: e.Meta})
			} else {
				e, err := tr.Pop()
				if err != nil {
					t.Fatalf("m=%d l=%d pop: %v", shape.m, shape.l, err)
				}
				if e.Value != ref.MinValue() {
					t.Fatalf("m=%d l=%d pop value %d, reference min %d", shape.m, shape.l, e.Value, ref.MinValue())
				}
				if !ref.RemoveExact(refpq.Entry{Value: e.Value, Meta: e.Meta}) {
					t.Fatalf("m=%d l=%d popped element (%d,%d) not in reference", shape.m, shape.l, e.Value, e.Meta)
				}
			}
			if op%97 == 0 {
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("m=%d l=%d after op %d: %v", shape.m, shape.l, op, err)
				}
			}
		}
		if tr.Len() != ref.Len() {
			t.Fatalf("m=%d l=%d size mismatch: %d vs %d", shape.m, shape.l, tr.Len(), ref.Len())
		}
	}
}

// TestQuickSortedDrain is a property-based test: any multiset of values
// pushed into any (small) tree shape drains in non-decreasing order and
// preserves the multiset.
func TestQuickSortedDrain(t *testing.T) {
	prop := func(vals []uint16, mRaw, lRaw uint8) bool {
		m := 2 + int(mRaw)%7 // 2..8
		l := 1 + int(lRaw)%4 // 1..4
		tr := New(m, l)
		if len(vals) > tr.Cap() {
			vals = vals[:tr.Cap()]
		}
		counts := map[uint64]int{}
		for _, v := range vals {
			if err := tr.Push(Element{Value: uint64(v)}); err != nil {
				return false
			}
			counts[uint64(v)]++
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		var prev uint64
		for i := 0; i < len(vals); i++ {
			e, err := tr.Pop()
			if err != nil {
				return false
			}
			if i > 0 && e.Value < prev {
				return false
			}
			prev = e.Value
			counts[e.Value]--
			if counts[e.Value] < 0 {
				return false
			}
		}
		return tr.Len() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHeapInvariant is a property-based test over random interleaved
// workloads: the heap and counter invariants hold after every operation.
func TestQuickHeapInvariant(t *testing.T) {
	prop := func(ops []int16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New(2+rng.Intn(4), 2+rng.Intn(3))
		for _, o := range ops {
			if o >= 0 && !tr.AlmostFull() {
				if err := tr.Push(Element{Value: uint64(o)}); err != nil {
					return false
				}
			} else if tr.Len() > 0 {
				if _, err := tr.Pop(); err != nil {
					return false
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Log(err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateValues(t *testing.T) {
	tr := New(2, 4)
	for i := 0; i < 20; i++ {
		if err := tr.Push(Element{Value: 7, Meta: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[uint64]bool{}
	for i := 0; i < 20; i++ {
		e, err := tr.Pop()
		if err != nil {
			t.Fatal(err)
		}
		if e.Value != 7 {
			t.Fatalf("pop value %d, want 7", e.Value)
		}
		if seen[e.Meta] {
			t.Fatalf("meta %d popped twice", e.Meta)
		}
		seen[e.Meta] = true
	}
	if len(seen) != 20 {
		t.Fatalf("popped %d distinct metas, want 20", len(seen))
	}
}

func TestDepth(t *testing.T) {
	tr := New(2, 4)
	if tr.Depth() != 0 {
		t.Errorf("empty tree depth = %d", tr.Depth())
	}
	tr.Push(Element{Value: 1})
	tr.Push(Element{Value: 2})
	if tr.Depth() != 1 {
		t.Errorf("depth after 2 pushes = %d, want 1", tr.Depth())
	}
	tr.Push(Element{Value: 3})
	if tr.Depth() != 2 {
		t.Errorf("depth after 3 pushes = %d, want 2", tr.Depth())
	}
	// Balanced insertion keeps depth at the information-theoretic optimum:
	// after filling levels 1..k, depth is k.
	tr2 := New(2, 5)
	for i := 0; i < 6; i++ { // fills levels 1 and 2 (2 + 4 elements)
		tr2.Push(Element{Value: uint64(i)})
	}
	if tr2.Depth() != 2 {
		t.Errorf("depth after 6 balanced pushes = %d, want 2", tr2.Depth())
	}
	tr2.Push(Element{Value: 100})
	if tr2.Depth() != 3 {
		t.Errorf("depth after 7 balanced pushes = %d, want 3", tr2.Depth())
	}
}

func TestSingleLevelTree(t *testing.T) {
	tr := New(4, 1) // a single node of 4 elements
	for _, v := range []uint64{5, 1, 9, 3} {
		if err := tr.Push(Element{Value: v}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Push(Element{Value: 2}); err != ErrFull {
		t.Fatalf("push on full single node = %v, want ErrFull", err)
	}
	want := []uint64{1, 3, 5, 9}
	for _, w := range want {
		e, err := tr.Pop()
		if err != nil || e.Value != w {
			t.Fatalf("pop = %v,%v want %d", e, err, w)
		}
	}
}

func BenchmarkCorePush(b *testing.B) {
	for _, shape := range []struct{ m, l int }{{2, 11}, {4, 8}, {8, 5}} {
		b.Run(benchName(shape.m, shape.l), func(b *testing.B) {
			tr := New(shape.m, shape.l)
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if tr.AlmostFull() {
					b.StopTimer()
					tr.Reset()
					b.StartTimer()
				}
				tr.Push(Element{Value: rng.Uint64() % 65536})
			}
		})
	}
}

func BenchmarkCorePushPop(b *testing.B) {
	for _, shape := range []struct{ m, l int }{{2, 11}, {4, 8}, {8, 5}} {
		b.Run(benchName(shape.m, shape.l), func(b *testing.B) {
			tr := New(shape.m, shape.l)
			rng := rand.New(rand.NewSource(1))
			// Half-fill to steady state.
			for i := 0; i < tr.Cap()/2; i++ {
				tr.Push(Element{Value: rng.Uint64() % 65536})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Push(Element{Value: rng.Uint64() % 65536})
				tr.Pop()
			}
		})
	}
}

func benchName(m, l int) string {
	return "L" + itoa(l) + "-M" + itoa(m)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
