package core

import (
	"fmt"

	"repro/internal/obs"
)

// Instrument registers the golden model's probes in reg under the
// given metric-name prefix. All instruments are snapshot-time
// callbacks reading tree state — snapshot only between operations.
// A nil registry is a no-op.
func (t *Tree) Instrument(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.Help(prefix+"_sojourn_cycles",
		"enqueue-to-dequeue latency of popped elements in logical clock ticks (one tick per push or pop)")
	t.sojourn = reg.QuantileHistogram(prefix + "_sojourn_cycles")
	reg.CounterFunc(prefix+"_pushes_total", func() uint64 { return t.pushes })
	reg.CounterFunc(prefix+"_pops_total", func() uint64 { return t.pops })
	reg.GaugeFunc(prefix+"_occupancy", func() float64 { return float64(t.size) })
	reg.GaugeFunc(prefix+"_capacity", func() float64 { return float64(t.capacity) })
	reg.GaugeFunc(prefix+"_occupancy_highwater", func() float64 { return float64(t.maxSize) })
	reg.GaugeFunc(prefix+"_max_imbalance", func() float64 { return float64(t.MaxImbalance()) })
	reg.GaugeFunc(prefix+"_depth", func() float64 { return float64(t.Depth()) })
	for lvl := 1; lvl <= t.l; lvl++ {
		lvl := lvl
		reg.GaugeFunc(fmt.Sprintf("%s_level%d_occupancy", prefix, lvl),
			func() float64 { return float64(t.LevelOccupancy(lvl)) })
	}
}

// SojournSnapshot returns the sojourn-latency distribution collected
// since Instrument was called (the zero snapshot when uninstrumented).
func (t *Tree) SojournSnapshot() obs.QuantileSnapshot { return t.sojourn.Snapshot() }
