// Package pipeheap implements the Pipelined Heap of Ioannou &
// Katevenis, "Pipelined heap (priority queue) management for advanced
// scheduling in high-speed networks" (IEEE/ACM ToN 2007) — the second
// heap-variant baseline of Table 1 in the BMW-Tree paper.
//
// It is a conventional binary min-heap kept as a complete tree (hence
// self-balanced). The insert operation is modified to be top-down and
// pipelineable: the new value descends along the unique path from the
// root to the next free leaf position, swapping with smaller ancestors
// on the way. The pop operation is the classic one: the root leaves,
// the right-most leaf is moved to the root, and a shift-down restores
// the heap property.
//
// The BMW-Tree paper's Table 1 critique, reproduced by this model's
// access traces: during a pop the rightmost leaf must "fly from bottom
// to top and then cross from top to bottom", so each level needs a
// connection to the root and the youngest in-progress insert must be
// tracked, which makes the pipeline expensive; and nodes are not
// autonomous — the shift-down compares a node with its two children.
// PathStats records the up-down data movement so the Table 1 experiment
// can quantify it.
package pipeheap

import (
	"fmt"

	"repro/internal/core"
)

// Heap is a fixed-capacity complete binary min-heap with top-down
// insertion.
type Heap struct {
	tree []core.Element // 1-based
	size int
	cap  int

	// Movement accounting for the Table 1 experiment.
	upMoves   uint64 // leaf-to-root transfers (pop only)
	downMoves uint64 // level-to-level downward transfers
}

// New creates a heap with the given capacity.
func New(capacity int) *Heap {
	if capacity < 1 {
		panic(fmt.Sprintf("pipeheap: invalid capacity %d", capacity))
	}
	return &Heap{tree: make([]core.Element, capacity+1), cap: capacity}
}

// Len returns the stored element count; Cap the capacity.
func (h *Heap) Len() int { return h.size }
func (h *Heap) Cap() int { return h.cap }

// Push inserts top-down along the path from the root to the next free
// position (the pipelined insert of Ioannou & Katevenis).
func (h *Heap) Push(e core.Element) error {
	if h.size >= h.cap {
		return core.ErrFull
	}
	h.size++
	target := h.size
	// The path root -> target is given by the bits of target below the
	// leading one.
	depth := 0
	for v := target; v > 1; v >>= 1 {
		depth++
	}
	val := e
	for d := depth; d > 0; d-- {
		i := target >> d
		if val.Value < h.tree[i].Value {
			val, h.tree[i] = h.tree[i], val
		}
		h.downMoves++
	}
	h.tree[target] = val
	return nil
}

// Pop removes the root, moves the right-most leaf to the root (one
// bottom-to-top flight), and shifts down.
func (h *Heap) Pop() (core.Element, error) {
	if h.size == 0 {
		return core.Element{}, core.ErrEmpty
	}
	out := h.tree[1]
	last := h.tree[h.size]
	h.size--
	h.upMoves++ // the leaf crosses from the bottom level to the root
	if h.size == 0 {
		return out, nil
	}
	i := 1
	for {
		l, r := 2*i, 2*i+1
		if l > h.size {
			break
		}
		smallest := l
		if r <= h.size && h.tree[r].Value < h.tree[l].Value {
			smallest = r
		}
		if h.tree[smallest].Value >= last.Value {
			break
		}
		h.tree[i] = h.tree[smallest]
		h.downMoves++
		i = smallest
	}
	h.tree[i] = last
	return out, nil
}

// Peek returns the minimum without removing it.
func (h *Heap) Peek() (core.Element, error) {
	if h.size == 0 {
		return core.Element{}, core.ErrEmpty
	}
	return h.tree[1], nil
}

// PathStats returns the accumulated data movements: upMoves counts
// bottom-to-top leaf flights (one per pop — the movement that breaks
// pipelining), downMoves counts level-to-level downward transfers.
func (h *Heap) PathStats() (upMoves, downMoves uint64) {
	return h.upMoves, h.downMoves
}

// CheckInvariants verifies the heap property over the complete tree.
func (h *Heap) CheckInvariants() error {
	for i := 2; i <= h.size; i++ {
		if h.tree[i].Value < h.tree[i/2].Value {
			return fmt.Errorf("pipeheap: heap violation at %d", i)
		}
	}
	return nil
}
