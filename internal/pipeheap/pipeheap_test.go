package pipeheap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/refpq"
)

func TestBasic(t *testing.T) {
	h := New(15)
	for _, v := range []uint64{8, 3, 5, 1, 9, 1} {
		if err := h.Push(core.Element{Value: v}); err != nil {
			t.Fatal(err)
		}
		if err := h.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	want := []uint64{1, 1, 3, 5, 8, 9}
	for _, w := range want {
		e, err := h.Pop()
		if err != nil || e.Value != w {
			t.Fatalf("pop = %v,%v want %d", e, err, w)
		}
		if err := h.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.Pop(); err != core.ErrEmpty {
		t.Fatalf("pop empty = %v", err)
	}
}

func TestFullError(t *testing.T) {
	h := New(3)
	for i := 0; i < 3; i++ {
		if err := h.Push(core.Element{Value: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Push(core.Element{Value: 9}); err != core.ErrFull {
		t.Fatalf("push full = %v", err)
	}
}

// TestPopMovesDataUpward quantifies the Table 1 critique: every pop
// moves the right-most leaf from the bottom of the heap to the root
// (one bottom-to-top flight per pop), the movement that makes the
// classic pop expensive to pipeline. BMW-Tree pops only ever move data
// between adjacent levels.
func TestPopMovesDataUpward(t *testing.T) {
	h := New(127)
	for i := 0; i < 100; i++ {
		h.Push(core.Element{Value: uint64(i)})
	}
	const pops = 50
	for i := 0; i < pops; i++ {
		if _, err := h.Pop(); err != nil {
			t.Fatal(err)
		}
	}
	up, _ := h.PathStats()
	if up != pops {
		t.Fatalf("upMoves = %d, want one per pop (%d)", up, pops)
	}
}

func TestRandomAgainstReference(t *testing.T) {
	h := New(300)
	ref := refpq.New()
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 20000; i++ {
		if ref.Len() == 0 || (rng.Intn(2) == 0 && h.Len() < h.Cap()) {
			e := core.Element{Value: uint64(rng.Intn(100)), Meta: uint64(i)}
			if err := h.Push(e); err != nil {
				t.Fatal(err)
			}
			ref.Push(refpq.Entry{Value: e.Value, Meta: e.Meta})
		} else {
			e, err := h.Pop()
			if err != nil {
				t.Fatal(err)
			}
			if e.Value != ref.MinValue() {
				t.Fatalf("pop %d, ref min %d", e.Value, ref.MinValue())
			}
			if !ref.RemoveExact(refpq.Entry{Value: e.Value, Meta: e.Meta}) {
				t.Fatal("popped element not in reference")
			}
		}
		if i%371 == 0 {
			if err := h.CheckInvariants(); err != nil {
				t.Fatalf("after op %d: %v", i, err)
			}
		}
	}
}

func TestQuickSortedDrain(t *testing.T) {
	prop := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		h := New(len(vals))
		for _, v := range vals {
			if err := h.Push(core.Element{Value: uint64(v)}); err != nil {
				return false
			}
		}
		if err := h.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		var prev uint64
		for i := range vals {
			e, err := h.Pop()
			if err != nil {
				return false
			}
			if i > 0 && e.Value < prev {
				return false
			}
			prev = e.Value
		}
		return h.Len() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCompleteShape verifies self-balance: a pipelined heap always
// occupies positions 1..size of the array (a complete tree), the
// "Self-Balanced" property of Table 1.
func TestCompleteShape(t *testing.T) {
	h := New(63)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		if h.Len() == 0 || (rng.Intn(2) == 0 && h.Len() < h.Cap()) {
			h.Push(core.Element{Value: uint64(rng.Intn(50))})
		} else {
			h.Pop()
		}
		if err := h.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}
