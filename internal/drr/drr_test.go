package drr

import (
	"testing"
)

func TestRoundRobinEqualPackets(t *testing.T) {
	s := New(1000, 64)
	for i := 0; i < 6; i++ {
		s.Enqueue(1, 1000, nil)
		s.Enqueue(2, 1000, nil)
	}
	var order []uint32
	for i := 0; i < 12; i++ {
		id, _, _, err := s.Dequeue()
		if err != nil {
			t.Fatal(err)
		}
		order = append(order, id)
	}
	// Strict alternation with equal quanta and equal sizes.
	for i := 1; i < len(order); i++ {
		if order[i] == order[i-1] {
			t.Fatalf("no alternation at %d: %v", i, order)
		}
	}
}

// TestByteFairnessUnequalPackets is DRR's raison d'être: a flow
// sending big packets must not get more bytes than a flow sending
// small ones.
func TestByteFairnessUnequalPackets(t *testing.T) {
	s := New(1500, 4096)
	for i := 0; i < 300; i++ {
		s.Enqueue(1, 1500, nil) // big packets
	}
	for i := 0; i < 900; i++ {
		s.Enqueue(2, 500, nil) // small packets
	}
	bytes := map[uint32]uint64{}
	for i := 0; i < 600; i++ {
		id, n, _, err := s.Dequeue()
		if err != nil {
			t.Fatal(err)
		}
		bytes[id] += uint64(n)
	}
	ratio := float64(bytes[1]) / float64(bytes[2])
	if ratio < 0.85 || ratio > 1.18 {
		t.Fatalf("byte shares not fair: %v (ratio %.2f)", bytes, ratio)
	}
}

// TestWeightedQuanta: twice the quantum earns twice the bytes.
func TestWeightedQuanta(t *testing.T) {
	s := New(1000, 4096)
	s.SetQuantum(2, 2000)
	for i := 0; i < 600; i++ {
		s.Enqueue(1, 1000, nil)
		s.Enqueue(2, 1000, nil)
	}
	bytes := map[uint32]uint64{}
	for i := 0; i < 600; i++ {
		id, n, _, err := s.Dequeue()
		if err != nil {
			t.Fatal(err)
		}
		bytes[id] += uint64(n)
	}
	ratio := float64(bytes[2]) / float64(bytes[1])
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("weighted shares wrong: %v (ratio %.2f)", bytes, ratio)
	}
}

// TestQuantumSmallerThanPacket: a flow whose packets exceed one
// quantum still progresses by accumulating deficit across rounds.
func TestQuantumSmallerThanPacket(t *testing.T) {
	s := New(500, 64)
	s.Enqueue(1, 1500, "jumbo")
	s.Enqueue(2, 400, "small")
	got := map[uint32]int{}
	for i := 0; i < 2; i++ {
		id, _, _, err := s.Dequeue()
		if err != nil {
			t.Fatal(err)
		}
		got[id]++
	}
	if got[1] != 1 || got[2] != 1 {
		t.Fatalf("both packets must eventually serve: %v", got)
	}
}

func TestCapacityAndEmpty(t *testing.T) {
	s := New(100, 2)
	s.Enqueue(1, 50, nil)
	s.Enqueue(1, 50, nil)
	if err := s.Enqueue(1, 50, nil); err != ErrFull {
		t.Fatalf("enqueue full = %v", err)
	}
	s.Dequeue()
	s.Dequeue()
	if _, _, _, err := s.Dequeue(); err != ErrEmpty {
		t.Fatalf("dequeue empty = %v", err)
	}
}

// TestFlowReactivation: a flow that drains and returns starts with a
// clean deficit (no banked credit).
func TestFlowReactivation(t *testing.T) {
	s := New(1000, 64)
	s.Enqueue(1, 1000, nil)
	s.Dequeue()
	// Re-activate with competition.
	s.Enqueue(1, 1000, nil)
	s.Enqueue(2, 1000, nil)
	seen := map[uint32]int{}
	for i := 0; i < 2; i++ {
		id, _, _, _ := s.Dequeue()
		seen[id]++
	}
	if seen[1] != 1 || seen[2] != 1 {
		t.Fatalf("reactivation unfair: %v", seen)
	}
}

func TestInvalidParamsPanic(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 10) },
		func() { New(100, 0) },
		func() { New(100, 10).SetQuantum(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid params did not panic")
				}
			}()
			fn()
		}()
	}
}
