// Package drr implements Deficit Round Robin (Shreedhar & Varghese,
// 1996) — one of the few scheduling algorithms the BMW-Tree paper
// notes actually ship in line-rate switches (Section 1). It is the
// classic non-PIFO fair scheduler and serves as the conventional
// baseline against the programmable PIFO/STFQ pipeline: byte-accurate
// fairness without ranks, but no programmability — the algorithm is
// the hardware.
package drr

import (
	"errors"
)

// Errors returned by the scheduler.
var (
	ErrEmpty = errors.New("drr: empty")
	ErrFull  = errors.New("drr: buffer full, packet dropped")
)

// packet is one queued packet.
type packet struct {
	bytes   uint32
	payload any
}

// flowState is one flow's FIFO and deficit counter.
type flowState struct {
	queue   []packet
	deficit uint64
	quantum uint64
	active  bool
	inVisit bool // quantum already granted for the current round visit
}

// Scheduler is a DRR scheduler over dynamically appearing flows.
type Scheduler struct {
	flows      map[uint32]*flowState
	activeRing []uint32 // round-robin order of active flows
	cursor     int

	defaultQuantum uint64
	size           int
	capPackets     int
}

// New creates a DRR scheduler with the given per-round quantum in
// bytes and a total packet capacity.
func New(quantum uint64, capacity int) *Scheduler {
	if quantum == 0 || capacity < 1 {
		panic("drr: quantum and capacity must be positive")
	}
	return &Scheduler{
		flows:          make(map[uint32]*flowState),
		defaultQuantum: quantum,
		capPackets:     capacity,
	}
}

// SetQuantum assigns a per-flow quantum (weighted DRR).
func (s *Scheduler) SetQuantum(flow uint32, q uint64) {
	if q == 0 {
		panic("drr: quantum must be positive")
	}
	s.flow(flow).quantum = q
}

func (s *Scheduler) flow(id uint32) *flowState {
	f, ok := s.flows[id]
	if !ok {
		f = &flowState{quantum: s.defaultQuantum}
		s.flows[id] = f
	}
	return f
}

// Len returns the buffered packet count; Cap the capacity.
func (s *Scheduler) Len() int { return s.size }
func (s *Scheduler) Cap() int { return s.capPackets }

// Enqueue buffers a packet on its flow's FIFO, activating the flow.
func (s *Scheduler) Enqueue(flowID uint32, bytes uint32, payload any) error {
	if s.size >= s.capPackets {
		return ErrFull
	}
	f := s.flow(flowID)
	f.queue = append(f.queue, packet{bytes: bytes, payload: payload})
	if !f.active {
		f.active = true
		f.deficit = 0
		s.activeRing = append(s.activeRing, flowID)
	}
	s.size++
	return nil
}

// Dequeue serves the next packet under deficit round robin: the
// current flow transmits while its deficit covers the head packet;
// otherwise its deficit grows by one quantum per round.
func (s *Scheduler) Dequeue() (flowID uint32, bytes uint32, payload any, err error) {
	if s.size == 0 {
		return 0, 0, nil, ErrEmpty
	}
	for {
		if s.cursor >= len(s.activeRing) {
			s.cursor = 0
		}
		id := s.activeRing[s.cursor]
		f := s.flows[id]
		if len(f.queue) == 0 {
			// Deactivate and remove from the ring.
			f.active = false
			f.inVisit = false
			s.activeRing = append(s.activeRing[:s.cursor], s.activeRing[s.cursor+1:]...)
			continue
		}
		if !f.inVisit {
			// First service opportunity of this round visit: grant one
			// quantum, exactly once.
			f.deficit += f.quantum
			f.inVisit = true
		}
		head := f.queue[0]
		if f.deficit < uint64(head.bytes) {
			// Deficit exhausted: yield to the next flow, keeping the
			// remainder for the next round.
			f.inVisit = false
			s.cursor++
			continue
		}
		f.deficit -= uint64(head.bytes)
		f.queue = f.queue[1:]
		if len(f.queue) == 0 {
			f.queue = nil
			f.active = false
			f.inVisit = false
			f.deficit = 0 // an emptied flow forfeits its leftover deficit
			s.activeRing = append(s.activeRing[:s.cursor], s.activeRing[s.cursor+1:]...)
		}
		s.size--
		return id, head.bytes, head.payload, nil
	}
}
