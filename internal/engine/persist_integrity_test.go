package engine

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/persist"
)

func checkpointSmall(t *testing.T, shards int) (string, Config) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "ckpt")
	cfg := smallConfig(KindCore, shards)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := e.Push(core.Element{Value: uint64(i*13%97 + 1), Meta: uint64(i)}); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	e.Close()
	if err := e.Checkpoint(dir); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	return dir, cfg
}

// TestEngineManifestSealsShards pins the transitive authentication
// chain: ENGINE.json carries one self-checksum per shard MANIFEST.json
// plus an engine root over them, and restore binds each shard's durable
// state to that root before replaying it.
func TestEngineManifestSealsShards(t *testing.T) {
	dir, cfg := checkpointSmall(t, 3)

	m, err := LoadEngineManifest(dir)
	if err != nil {
		t.Fatalf("load manifest: %v", err)
	}
	if len(m.ShardChecksums) != 3 {
		t.Fatalf("shard checksums = %d, want 3", len(m.ShardChecksums))
	}
	if m.Root != EngineRoot(m.ShardChecksums) {
		t.Fatal("engine root does not match shard checksums")
	}
	for i := 0; i < 3; i++ {
		sm, err := persist.LoadManifest(nil, ShardDir(dir, i))
		if err != nil {
			t.Fatalf("shard %d manifest: %v", i, err)
		}
		if sm.Checksum != m.ShardChecksums[i] {
			t.Fatalf("shard %d checksum not sealed by engine manifest", i)
		}
	}

	cfg.RestoreDir = dir
	r, err := New(cfg)
	if err != nil {
		t.Fatalf("restore sealed checkpoint: %v", err)
	}
	r.Close()
}

// TestEngineRestoreRefusesSwappedShardManifest pins the binding check:
// replacing a shard's MANIFEST.json with another shard's (both
// individually valid) must be refused against the engine root.
func TestEngineRestoreRefusesSwappedShardManifest(t *testing.T) {
	dir, cfg := checkpointSmall(t, 3)
	src := filepath.Join(ShardDir(dir, 2), persist.ManifestName)
	dst := filepath.Join(ShardDir(dir, 0), persist.ManifestName)
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, b, 0o644); err != nil {
		t.Fatal(err)
	}
	cfg.RestoreDir = dir
	_, err = New(cfg)
	var me *persist.ManifestError
	if !errors.As(err, &me) {
		t.Fatalf("restore after shard-manifest swap = %v, want *persist.ManifestError", err)
	}
	if me.Field != "shard_checksums" {
		t.Fatalf("error names field %q, want shard_checksums", me.Field)
	}
}

// TestEngineManifestTornRefusedTyped sweeps torn ENGINE.json prefixes
// (a crash at any byte of a non-atomic write) plus single-byte rot:
// every damaged variant must yield a typed *persist.ManifestError
// naming a field — never a panic, never silent acceptance.
func TestEngineManifestTornRefusedTyped(t *testing.T) {
	dir, cfg := checkpointSmall(t, 2)
	path := filepath.Join(dir, EngineManifestName)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	restore := func() (*Engine, error) {
		c := cfg
		c.RestoreDir = dir
		return New(c)
	}

	for cut := 1; cut < len(orig); cut += 17 {
		if err := os.WriteFile(path, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := restore()
		var me *persist.ManifestError
		if !errors.As(err, &me) {
			t.Fatalf("cut at %d: restore = %v, want *persist.ManifestError", cut, err)
		}
		if me.Field == "" {
			t.Fatalf("cut at %d: manifest error without a field name", cut)
		}
	}

	// Rot one byte inside the root hex string: the self-checksum must
	// catch it and name the field.
	i := strings.Index(string(orig), `"root": "`) + len(`"root": "`)
	mut := append([]byte(nil), orig...)
	if mut[i] != 'f' {
		mut[i] = 'f'
	} else {
		mut[i] = '0'
	}
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = restore()
	var me *persist.ManifestError
	if !errors.As(err, &me) {
		t.Fatalf("rotted root: restore = %v, want *persist.ManifestError", err)
	}
	if me.Field != "root" && me.Field != "checksum" {
		t.Fatalf("rotted root names field %q, want root or checksum", me.Field)
	}

	// A pre-integrity manifest (no seals) still restores.
	legacy := CheckpointManifest{}
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadEngineManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	legacy = *m
	legacy.ShardChecksums, legacy.Root, legacy.Checksum = nil, "", ""
	if err := WriteEngineManifest(dir, legacy); err != nil {
		t.Fatal(err)
	}
	e, err := restore()
	if err != nil {
		t.Fatalf("legacy manifest restore: %v", err)
	}
	e.Close()
}
