package engine

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// TestUpdateOverloadHysteresis exercises the watermark state machine
// directly: trip at HighFrac, hold between the watermarks, clear only
// at or below LowFrac, and trip on drain latency alone.
// testShard builds a bare shard for driving updateOverload directly.
func testShard(ov Overload) *shard {
	s := &shard{ringCap: 100, hooks: new(atomic.Pointer[Hooks])}
	s.ov.Store(&ov)
	return s
}

func TestUpdateOverloadHysteresis(t *testing.T) {
	s := testShard(Overload{HighFrac: 0.8, LowFrac: 0.4})
	ov := *s.ov.Load()
	now := time.Now()
	s.updateOverload(ov, 85, now)
	if !s.overloaded.Load() {
		t.Fatal("85% occupancy did not trip HighFrac 0.8")
	}
	s.updateOverload(ov, 50, now)
	if !s.overloaded.Load() {
		t.Fatal("overload cleared between the watermarks")
	}
	s.updateOverload(ov, 40, now)
	if s.overloaded.Load() {
		t.Fatal("overload held at LowFrac")
	}
	s.updateOverload(ov, 50, now)
	if s.overloaded.Load() {
		t.Fatal("mid-band occupancy re-tripped a cleared shard")
	}

	lat := testShard(Overload{HighFrac: 0.99, LowFrac: 0.01, DrainLatencyHigh: time.Millisecond})
	lat.updateOverload(*lat.ov.Load(), 1, time.Now().Add(-10*time.Millisecond))
	if !lat.overloaded.Load() {
		t.Fatal("slow drain did not trip overload")
	}
}

// TestOverloadShedsPushes trips overload via an always-slow drain
// watermark and checks pushes shed with the typed ErrOverloaded while
// pops keep working.
func TestOverloadShedsPushes(t *testing.T) {
	e, err := New(Config{
		Shards: 1, Order: 2, Levels: 8,
		Overload: Overload{HighFrac: 0.99, DrainLatencyHigh: time.Nanosecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// First batch executes (overload is computed after the drain) and
	// trips the watermark; pushes after that must shed.
	if res := e.Submit([]Op{PushOp(core.Element{Value: 1, Meta: 1})}); res[0].Err != nil {
		t.Fatalf("priming push: %v", res[0].Err)
	}
	deadline := time.Now().Add(5 * time.Second)
	var shedErr error
	for time.Now().Before(deadline) {
		res := e.Submit([]Op{PushOp(core.Element{Value: 2, Meta: 2})})
		if res[0].Err != nil {
			shedErr = res[0].Err
			break
		}
	}
	if !errors.Is(shedErr, ErrOverloaded) {
		t.Fatalf("shed error = %v, want ErrOverloaded", shedErr)
	}
	if errors.Is(shedErr, ErrBackpressure) {
		t.Fatal("ErrOverloaded must stay distinct from ErrBackpressure")
	}
	// Pops are never shed — overload protects the queue from growth.
	res := e.Submit([]Op{PopOp()})
	if res[0].Err != nil {
		t.Fatalf("pop under overload: %v", res[0].Err)
	}
}

// TestOverloadLatchExpiry covers the push-only wedge: once overload
// trips, pushes are shed before reaching the ring, so no drain ever
// re-evaluates the signal. The latch must expire after Cooloff and
// admit the next push instead of shedding forever.
func TestOverloadLatchExpiry(t *testing.T) {
	e, err := New(Config{
		Shards: 1, Order: 2, Levels: 8,
		Overload: Overload{HighFrac: 0.99, DrainLatencyHigh: time.Nanosecond, Cooloff: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Trip the latch: the priming push drains slowly (1ns watermark),
	// then pushes shed.
	if res := e.Submit([]Op{PushOp(core.Element{Value: 1, Meta: 1})}); res[0].Err != nil {
		t.Fatalf("priming push: %v", res[0].Err)
	}
	deadline := time.Now().Add(5 * time.Second)
	tripped := false
	for time.Now().Before(deadline) {
		if res := e.Submit([]Op{PushOp(core.Element{Value: 2, Meta: 2})}); errors.Is(res[0].Err, ErrOverloaded) {
			tripped = true
			break
		}
	}
	if !tripped {
		t.Fatal("overload never tripped")
	}
	// No pops arrive, no ring traffic: only latch expiry can admit the
	// next push.
	time.Sleep(60 * time.Millisecond)
	if res := e.Submit([]Op{PushOp(core.Element{Value: 3, Meta: 3})}); res[0].Err != nil {
		t.Fatalf("push after cooloff shed: %v — latch wedged", res[0].Err)
	}
}

// TestApplyReplica drives one shard's ring directly — the follower
// apply path — and checks dense LSN stamping, shard isolation, and
// element fidelity.
func TestApplyReplica(t *testing.T) {
	e, err := New(Config{Shards: 2, Order: 2, Levels: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const n = 10
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = PushOp(core.Element{Value: uint64(100 - i), Meta: uint64(i)})
	}
	results := make([]Result, n)
	if err := e.ApplyReplica(1, ops, results); err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("apply[%d]: %v", i, r.Err)
		}
		if r.Shard != 1 || r.LSN != uint64(i+1) {
			t.Fatalf("apply[%d]: shard %d lsn %d, want shard 1 lsn %d", i, r.Shard, r.LSN, i+1)
		}
	}
	if got := e.ShardLSN(1); got != n {
		t.Fatalf("ShardLSN(1) = %d, want %d", got, n)
	}
	if got := e.ShardLSN(0); got != 0 {
		t.Fatalf("ShardLSN(0) = %d — replica apply leaked across shards", got)
	}

	// Pops through the same path come back rank-ordered with their LSNs
	// continuing the chain.
	pops := make([]Op, n)
	for i := range pops {
		pops[i] = PopOp()
	}
	popRes := make([]Result, n)
	if err := e.ApplyReplica(1, pops, popRes); err != nil {
		t.Fatal(err)
	}
	for i, r := range popRes {
		if r.Err != nil {
			t.Fatalf("pop[%d]: %v", i, r.Err)
		}
		if want := uint64(100 - (n - 1) + i); r.Elem.Value != want {
			t.Fatalf("pop[%d] value %d, want %d", i, r.Elem.Value, want)
		}
		if r.LSN != uint64(n+i+1) {
			t.Fatalf("pop[%d] lsn %d, want %d", i, r.LSN, n+i+1)
		}
	}

	if err := e.ApplyReplica(5, ops, results); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	e.Close()
	if err := e.ApplyReplica(1, ops, results); !errors.Is(err, ErrClosed) {
		t.Fatalf("apply after close: %v, want ErrClosed", err)
	}
}
