package engine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/pifo"
	"repro/internal/rbmw"
	"repro/internal/rpubmw"
)

// shardQueue is the synchronous queue contract a shard goroutine drives.
// The software queues (core.Tree, pifo.PIFO) satisfy it directly; the
// cycle-accurate simulators are wrapped by simAdapter, which turns their
// clocked issue protocol into synchronous calls.
type shardQueue interface {
	Push(core.Element) error
	Pop() (core.Element, error)
	Peek() (core.Element, error)
	Len() int
	Cap() int
	AlmostFull() bool
}

// Kind selects the exact queue implementation each shard owns.
type Kind int

// Shard queue kinds.
const (
	// KindCore is the software BMW-Tree golden model (the default).
	KindCore Kind = iota
	// KindPIFO is the shift-register PIFO baseline.
	KindPIFO
	// KindRBMW is the cycle-accurate register-based BMW-Tree, driven
	// through a synchronous adapter.
	KindRBMW
	// KindRPUBMW is the cycle-accurate RPU-driven BMW-Tree, driven
	// through a synchronous adapter.
	KindRPUBMW
)

// String names the kind as used in persist manifests and flags.
func (k Kind) String() string {
	switch k {
	case KindCore:
		return "core"
	case KindPIFO:
		return "pifo"
	case KindRBMW:
		return "rbmw"
	case KindRPUBMW:
		return "rpubmw"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind resolves a kind name ("core", "pifo", "rbmw", "rpubmw").
func ParseKind(s string) (Kind, error) {
	switch s {
	case "core":
		return KindCore, nil
	case "pifo":
		return KindPIFO, nil
	case "rbmw":
		return KindRBMW, nil
	case "rpubmw":
		return KindRPUBMW, nil
	}
	return 0, fmt.Errorf("engine: unknown queue kind %q", s)
}

// newShardQueue builds one shard's queue for the configuration.
func newShardQueue(cfg Config) shardQueue {
	switch cfg.Kind {
	case KindPIFO:
		return pifo.New(cfg.Cap)
	case KindRBMW:
		return newSimAdapter(rbmw.New(cfg.Order, cfg.Levels))
	case KindRPUBMW:
		return newSimAdapter(rpubmw.New(cfg.Order, cfg.Levels))
	default:
		return core.New(cfg.Order, cfg.Levels)
	}
}

// cycleSim is the slice of the hardware-simulator contract the adapter
// needs: the clocked issue protocol plus quiescence for checkpoints.
type cycleSim interface {
	Tick(hw.Op) (*core.Element, error)
	Len() int
	Cap() int
	AlmostFull() bool
	PushAvailable() bool
	PopAvailable() bool
	Quiescent() bool
}

// simAdapter drives a cycle-accurate simulator synchronously: each Push
// or Pop ticks the simulator (inserting null cycles while the issue
// handshake refuses the operation) until the operation completes.
//
// To provide the Peek the strict-merge pop of the engine needs — the
// hardware designs have no architectural peek port — the adapter keeps a
// one-element head buffer with the invariant that the buffered element
// is a minimum of the whole shard: the buffer is filled by popping the
// simulator, and a pushed element smaller than the buffered head swaps
// with it before entering the simulator. Per-shard exactness is
// therefore preserved: every Pop returns a true minimum of everything
// pushed and not yet popped on this shard.
type simAdapter struct {
	sim     cycleSim
	head    core.Element
	hasHead bool
}

func newSimAdapter(s cycleSim) *simAdapter { return &simAdapter{sim: s} }

// Len counts the buffered head alongside the simulator's occupancy.
func (a *simAdapter) Len() int {
	n := a.sim.Len()
	if a.hasHead {
		n++
	}
	return n
}

// Cap is the simulator's capacity; the head buffer is not extra space
// (Push refuses at Cap), so the simulator itself never fills completely
// while the buffer is occupied.
func (a *simAdapter) Cap() int { return a.sim.Cap() }

// AlmostFull mirrors the hardware almost-full backpressure signal.
func (a *simAdapter) AlmostFull() bool { return a.Len() >= a.Cap() }

// Push inserts e, maintaining the head-buffer minimum invariant.
func (a *simAdapter) Push(e core.Element) error {
	if a.Len() >= a.Cap() {
		return core.ErrFull
	}
	if !a.hasHead {
		a.head = e
		a.hasHead = true
		return nil
	}
	if e.Value < a.head.Value {
		e, a.head = a.head, e
	}
	return a.pushSim(e)
}

// Pop returns the buffered minimum and refills the buffer from the
// simulator.
func (a *simAdapter) Pop() (core.Element, error) {
	if !a.hasHead {
		return core.Element{}, core.ErrEmpty
	}
	out := a.head
	if a.sim.Len() > 0 {
		e, err := a.popSim()
		if err != nil {
			return core.Element{}, err
		}
		a.head = e
	} else {
		a.hasHead = false
	}
	return out, nil
}

// Peek returns the buffered minimum without removing it.
func (a *simAdapter) Peek() (core.Element, error) {
	if !a.hasHead {
		return core.Element{}, core.ErrEmpty
	}
	return a.head, nil
}

// pushSim ticks until the push handshake accepts, then issues the push.
func (a *simAdapter) pushSim(e core.Element) error {
	for !a.sim.PushAvailable() {
		if _, err := a.sim.Tick(hw.NopOp()); err != nil {
			return err
		}
	}
	_, err := a.sim.Tick(hw.PushOp(e.Value, e.Meta))
	return err
}

// popSim ticks until the pop handshake accepts, then issues the pop.
func (a *simAdapter) popSim() (core.Element, error) {
	for !a.sim.PopAvailable() {
		if _, err := a.sim.Tick(hw.NopOp()); err != nil {
			return core.Element{}, err
		}
	}
	el, err := a.sim.Tick(hw.PopOp())
	if err != nil {
		return core.Element{}, err
	}
	if el == nil {
		return core.Element{}, core.ErrEmpty
	}
	return *el, nil
}

// flush pushes the buffered head back into the simulator and ticks it
// quiescent, so the simulator alone holds the shard's full state — the
// form checkpoints persist.
func (a *simAdapter) flush() error {
	if a.hasHead {
		if err := a.pushSim(a.head); err != nil {
			return err
		}
		a.hasHead = false
	}
	for !a.sim.Quiescent() {
		if _, err := a.sim.Tick(hw.NopOp()); err != nil {
			return err
		}
	}
	return nil
}

// refill restores the head-buffer invariant after a flush or a restore:
// if the simulator holds elements, its minimum moves into the buffer.
func (a *simAdapter) refill() error {
	if a.hasHead || a.sim.Len() == 0 {
		return nil
	}
	e, err := a.popSim()
	if err != nil {
		return err
	}
	a.head = e
	a.hasHead = true
	return nil
}
