package engine

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBareQueuesDocumentSingleGoroutineContract asserts that every
// bare queue implementation the engine shards over documents its
// intentional single-goroutine design. The queues model hardware with
// one issue port per cycle and deliberately carry no synchronization;
// the engine is the only concurrency boundary. If the contract
// sentence disappears from a queue's documentation, this test fails so
// the concurrency story stays written down next to the code it
// governs.
func TestBareQueuesDocumentSingleGoroutineContract(t *testing.T) {
	const phrase = "single goroutine"
	files := []string{
		filepath.Join("..", "core", "core.go"),
		filepath.Join("..", "pifo", "pifo.go"),
		filepath.Join("..", "rbmw", "rbmw.go"),
		filepath.Join("..", "rpubmw", "rpubmw.go"),
	}
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("read %s: %v", f, err)
		}
		if !strings.Contains(strings.ToLower(string(b)), phrase) {
			t.Errorf("%s does not document the %q contract", f, phrase)
		}
	}
}
