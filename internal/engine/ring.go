package engine

import "sync"

// entry is one queued request: the operation, the batch it belongs to,
// and its slot in the batch's result array.
type entry struct {
	op  Op
	b   *batch
	idx int
}

// ring is the bounded MPSC request ring in front of one shard. Many
// submitters append batches of entries under a single lock acquisition;
// the shard goroutine drains up to its batch size the same way, so the
// per-operation synchronization cost is one mutex round-trip divided by
// the batch size on each side.
//
// The ring never blocks a submitter: enqueue accepts as many entries as
// fit and reports how many, leaving backpressure policy (typed
// ErrBackpressure) to the engine. The consumer blocks on a condition
// variable only when the ring is empty.
type ring struct {
	mu       sync.Mutex
	nonEmpty *sync.Cond
	buf      []entry
	head     int // index of the oldest entry
	count    int
	closed   bool
}

func newRing(size int) *ring {
	r := &ring{buf: make([]entry, size)}
	r.nonEmpty = sync.NewCond(&r.mu)
	return r
}

// enqueue appends as many of es as fit and returns the number accepted,
// or -1 if the ring is closed. One lock acquisition and at most one
// wakeup per call, regardless of batch size.
func (r *ring) enqueue(es []entry) int {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return -1
	}
	n := len(r.buf) - r.count
	if n > len(es) {
		n = len(es)
	}
	for i := 0; i < n; i++ {
		r.buf[(r.head+r.count+i)%len(r.buf)] = es[i]
	}
	r.count += n
	if n > 0 {
		r.nonEmpty.Signal()
	}
	r.mu.Unlock()
	return n
}

// drain blocks until the ring is non-empty or closed, then moves up to
// len(dst) entries into dst. It returns the number moved and the ring
// occupancy observed before draining; n == 0 means the ring is closed
// and fully drained, so the consumer should exit.
func (r *ring) drain(dst []entry) (n, occupancy int) {
	r.mu.Lock()
	for r.count == 0 && !r.closed {
		r.nonEmpty.Wait()
	}
	occupancy = r.count
	n = r.count
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = r.buf[r.head]
		r.buf[r.head] = entry{} // drop batch references for the GC
		r.head = (r.head + 1) % len(r.buf)
	}
	r.count -= n
	r.mu.Unlock()
	return n, occupancy
}

// close marks the ring closed: enqueue refuses new entries, drain keeps
// returning queued ones until empty, then reports n == 0.
func (r *ring) close() {
	r.mu.Lock()
	r.closed = true
	r.nonEmpty.Broadcast()
	r.mu.Unlock()
}
