package engine

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestConcurrentPushPopContract is the concurrency-safety contract of
// the serving layer, meaningful under -race (the CI race job runs this
// package): many goroutines race batched pushes and pops against a
// shard group, and afterwards the engine must account for every
// element exactly — nothing lost, nothing invented, every shard drain
// sorted. The bare queues carry no locks by design (see docs_test.go);
// the engine is the layer that must be clean under the race detector.
func TestConcurrentPushPopContract(t *testing.T) {
	cfg := Config{
		Shards: 4, Kind: KindCore,
		Order: 2, Levels: 8, // 510 per shard
		RingSize: 512, BatchSize: 32,
		Routing: RouteHash,
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const (
		workers    = 8
		opsPerGoro = 3000
	)
	var (
		mu     sync.Mutex
		ledger = map[core.Element]int{} // +pushed, -popped
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			pushedHere := map[core.Element]int{}
			poppedHere := map[core.Element]int{}
			ops := make([]Op, 0, 16)
			for done := 0; done < opsPerGoro; {
				ops = ops[:0]
				n := 1 + rng.Intn(16)
				for i := 0; i < n; i++ {
					if rng.Intn(2) == 0 {
						el := core.Element{
							Value: uint64(rng.Intn(1 << 16)),
							Meta:  uint64(w)<<32 | uint64(done+i),
						}
						ops = append(ops, PushOp(el))
					} else {
						ops = append(ops, PopOp())
					}
				}
				for i, r := range e.Submit(ops) {
					switch ops[i].Kind {
					case OpPush:
						if r.Err == nil {
							pushedHere[ops[i].Elem]++
						} else if !errors.Is(r.Err, ErrBackpressure) && !errors.Is(r.Err, core.ErrFull) {
							t.Errorf("push: unexpected error %v", r.Err)
						}
					case OpPop:
						if r.Err == nil {
							poppedHere[r.Elem]++
						} else if !errors.Is(r.Err, core.ErrEmpty) {
							t.Errorf("pop: unexpected error %v", r.Err)
						}
					}
				}
				done += n
			}
			mu.Lock()
			for el, n := range pushedHere {
				ledger[el] += n
			}
			for el, n := range poppedHere {
				ledger[el] -= n
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	e.Close()

	remaining := 0
	for s := 0; s < e.Shards(); s++ {
		got, err := e.ShardDrain(s)
		if err != nil {
			t.Fatalf("drain shard %d: %v", s, err)
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Value < got[j].Value }) {
			t.Fatalf("shard %d drain not sorted after concurrent load", s)
		}
		for _, el := range got {
			ledger[el]--
		}
		remaining += len(got)
	}
	for el, n := range ledger {
		if n != 0 {
			t.Fatalf("element %+v unbalanced by %d after concurrent load", el, n)
		}
	}
	t.Logf("concurrent contract: %d elements remained at close across %d shards", remaining, e.Shards())
}

// TestConcurrentRankRouting repeats the race with rank-range routing
// and the strict merge path (engine.Pop) in the mix, so the head
// publication and merge scan also run under the race detector.
func TestConcurrentRankRouting(t *testing.T) {
	cfg := Config{
		Shards: 4, Kind: KindCore,
		Order: 2, Levels: 8,
		RingSize: 512, BatchSize: 32,
		Routing: RouteRank, RankBits: 16,
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var pushes, pops, drained int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			myPush, myPop := int64(0), int64(0)
			for i := 0; i < 2000; i++ {
				if rng.Intn(3) > 0 {
					el := core.Element{Value: uint64(rng.Intn(1 << 16)), Meta: uint64(w)<<32 | uint64(i)}
					if err := e.Push(el); err == nil {
						myPush++
					}
				} else {
					if _, err := e.Pop(); err == nil {
						myPop++
					}
				}
			}
			mu.Lock()
			pushes += myPush
			pops += myPop
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	e.Close()
	for s := 0; s < e.Shards(); s++ {
		got, err := e.ShardDrain(s)
		if err != nil {
			t.Fatalf("drain shard %d: %v", s, err)
		}
		drained += int64(len(got))
	}
	if pushes != pops+drained {
		t.Fatalf("accounting: %d pushes != %d pops + %d drained", pushes, pops, drained)
	}
}
