package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/persist"
)

// manifestName is the engine-level checkpoint manifest inside the
// fan-out directory; the per-shard state lives in shard-<i>/ subtrees
// owned by internal/persist.
const manifestName = "ENGINE.json"

// manifest pins the configuration a checkpoint fan-out was written
// with; restore refuses a mismatched engine rather than loading shards
// into the wrong shape or routing.
type manifest struct {
	Schema   string `json:"schema"`
	Shards   int    `json:"shards"`
	Kind     string `json:"kind"`
	Order    int    `json:"order,omitempty"`
	Levels   int    `json:"levels,omitempty"`
	Cap      int    `json:"cap,omitempty"`
	Routing  int    `json:"routing"`
	RankBits int    `json:"rank_bits"`
}

const manifestSchema = "bmw-engine-checkpoint/v1"

func (e *Engine) manifest() manifest {
	return manifest{
		Schema:   manifestSchema,
		Shards:   len(e.shards),
		Kind:     e.cfg.Kind.String(),
		Order:    e.cfg.Order,
		Levels:   e.cfg.Levels,
		Cap:      e.cfg.Cap,
		Routing:  int(e.cfg.Routing),
		RankBits: e.cfg.RankBits,
	}
}

// shardDir returns the fan-out subdirectory of shard i.
func shardDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
}

// checkpointTarget resolves the persist.Checkpointable behind a shard's
// queue, settling simulator adapters into a persistable quiescent state
// first.
func (s *shard) checkpointTarget() (persist.Checkpointable, error) {
	q := s.q
	if a, ok := q.(*simAdapter); ok {
		if err := a.flush(); err != nil {
			return nil, fmt.Errorf("engine: shard %d flush: %w", s.id, err)
		}
		cq, ok := a.sim.(persist.Checkpointable)
		if !ok {
			return nil, fmt.Errorf("engine: shard %d simulator is not checkpointable", s.id)
		}
		return cq, nil
	}
	cq, ok := q.(persist.Checkpointable)
	if !ok {
		return nil, fmt.Errorf("engine: shard %d queue kind is not checkpointable", s.id)
	}
	return cq, nil
}

// Checkpoint writes a per-shard checkpoint fan-out under dir: an
// engine manifest plus one persist snapshot directory per shard. The
// engine must be Closed first — checkpointing requires exclusive
// access to every shard queue. It is the graceful-drain path cmd/bmwd
// takes on SIGTERM, reusing the same snapshot envelope and recovery
// machinery as the single-queue persistence subsystem.
func (e *Engine) Checkpoint(dir string) error {
	if !e.closed.Load() {
		return errors.New("engine: Checkpoint before Close")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, s := range e.shards {
		cq, err := s.checkpointTarget()
		if err != nil {
			return err
		}
		popts := persist.Options{}
		if h := e.hooks.Load(); h != nil {
			popts.Flight = h.Flight
		}
		m, err := persist.Attach(shardDir(dir, s.id), cq, popts)
		if err != nil {
			return fmt.Errorf("engine: shard %d attach: %w", s.id, err)
		}
		if err := m.Checkpoint(); err != nil {
			m.Close()
			return fmt.Errorf("engine: shard %d checkpoint: %w", s.id, err)
		}
		if err := m.Close(); err != nil {
			return fmt.Errorf("engine: shard %d close: %w", s.id, err)
		}
		// Restore the adapter's head-buffer invariant so a drain after
		// checkpointing still sees the full shard.
		if a, ok := s.q.(*simAdapter); ok {
			if err := a.refill(); err != nil {
				return fmt.Errorf("engine: shard %d refill: %w", s.id, err)
			}
		}
	}
	b, err := json.MarshalIndent(e.manifest(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, manifestName), append(b, '\n'), 0o644)
}

// restore loads every shard from a checkpoint fan-out written by
// Checkpoint. A directory without a manifest is a fresh start. Called
// from New before the shard goroutines exist, so it owns the queues.
func (e *Engine) restore(dir string) error {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	var m manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return fmt.Errorf("engine: bad manifest: %w", err)
	}
	if m.Schema != manifestSchema {
		return fmt.Errorf("engine: manifest schema %q, want %q", m.Schema, manifestSchema)
	}
	want := e.manifest()
	if m != want {
		return fmt.Errorf("engine: checkpoint config %+v does not match engine config %+v", m, want)
	}
	for _, s := range e.shards {
		cq, err := s.checkpointTarget()
		if err != nil {
			return err
		}
		mgr, _, err := persist.Open(shardDir(dir, s.id), cq, persist.Options{})
		if err != nil {
			return fmt.Errorf("engine: shard %d restore: %w", s.id, err)
		}
		if err := mgr.Close(); err != nil {
			return fmt.Errorf("engine: shard %d close: %w", s.id, err)
		}
		if a, ok := s.q.(*simAdapter); ok {
			if err := a.refill(); err != nil {
				return fmt.Errorf("engine: shard %d refill: %w", s.id, err)
			}
		}
	}
	return nil
}
