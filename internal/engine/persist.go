package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/persist"
)

// manifestName is the engine-level checkpoint manifest inside the
// fan-out directory; the per-shard state lives in shard-<i>/ subtrees
// owned by internal/persist.
const manifestName = "ENGINE.json"

// EngineManifestName exposes the manifest file name to the integrity
// tooling (anti-entropy repair, the bit-rot harness).
const EngineManifestName = manifestName

// CheckpointManifest pins the configuration a checkpoint fan-out was
// written with — restore refuses a mismatched engine rather than
// loading shards into the wrong shape or routing — and, since the
// integrity extension, binds every shard's own MANIFEST.json
// self-checksum under one engine root and a self-checksum, so a single
// trusted value authenticates the entire fan-out transitively: engine
// root → shard manifest checksums → WAL chain heads + snapshot Merkle
// roots → every byte on disk.
type CheckpointManifest struct {
	Schema   string `json:"schema"`
	Shards   int    `json:"shards"`
	Kind     string `json:"kind"`
	Order    int    `json:"order,omitempty"`
	Levels   int    `json:"levels,omitempty"`
	Cap      int    `json:"cap,omitempty"`
	Routing  int    `json:"routing"`
	RankBits int    `json:"rank_bits"`
	// ShardChecksums[i] is shard i's persist MANIFEST.json
	// self-checksum; Root is the sha256 over all of them. Empty on
	// legacy (pre-integrity) checkpoints.
	ShardChecksums []string `json:"shard_checksums,omitempty"`
	Root           string   `json:"root,omitempty"`
	// Checksum is the self-checksum: hex sha256 over the canonical
	// JSON with Checksum cleared.
	Checksum string `json:"checksum,omitempty"`
}

const manifestSchema = "bmw-engine-checkpoint/v1"

// EngineManifestSchema is the schema string exported for tooling that
// assembles checkpoint fan-outs outside an Engine (the bit-rot
// harness).
const EngineManifestSchema = manifestSchema

// manifestConfig is the comparable projection of the configuration
// fields (everything the integrity extension does not cover).
type manifestConfig struct {
	Schema   string
	Shards   int
	Kind     string
	Order    int
	Levels   int
	Cap      int
	Routing  int
	RankBits int
}

func (m CheckpointManifest) config() manifestConfig {
	return manifestConfig{
		Schema: m.Schema, Shards: m.Shards, Kind: m.Kind,
		Order: m.Order, Levels: m.Levels, Cap: m.Cap,
		Routing: m.Routing, RankBits: m.RankBits,
	}
}

func (e *Engine) manifest() CheckpointManifest {
	return CheckpointManifest{
		Schema:   manifestSchema,
		Shards:   len(e.shards),
		Kind:     e.cfg.Kind.String(),
		Order:    e.cfg.Order,
		Levels:   e.cfg.Levels,
		Cap:      e.cfg.Cap,
		Routing:  int(e.cfg.Routing),
		RankBits: e.cfg.RankBits,
	}
}

// EngineManifestChecksum computes the manifest self-checksum.
func EngineManifestChecksum(m CheckpointManifest) (string, error) {
	m.Checksum = ""
	b, err := json.Marshal(m)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// EngineRoot folds the per-shard manifest checksums into the one value
// that authenticates the whole checkpoint.
func EngineRoot(shardSums []string) string {
	h := sha256.New()
	h.Write([]byte("bmw-engine-root/v1"))
	for _, s := range shardSums {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// DecodeEngineManifest parses and validates ENGINE.json bytes. Any
// refusal — torn JSON from a crash mid-write, a rotted field, a
// checksum or root mismatch — is a typed *persist.ManifestError naming
// the offending field, never a decode panic. Legacy manifests (no
// integrity fields) validate their configuration only.
func DecodeEngineManifest(path string, b []byte) (*CheckpointManifest, error) {
	var m CheckpointManifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, &persist.ManifestError{Path: path, Field: "(json)", Reason: err.Error()}
	}
	if m.Schema != manifestSchema {
		return nil, &persist.ManifestError{Path: path, Field: "schema",
			Reason: fmt.Sprintf("%q, want %q", m.Schema, manifestSchema)}
	}
	if m.Shards <= 0 {
		return nil, &persist.ManifestError{Path: path, Field: "shards",
			Reason: fmt.Sprintf("%d, must be positive", m.Shards)}
	}
	if m.Kind == "" {
		return nil, &persist.ManifestError{Path: path, Field: "kind", Reason: "empty"}
	}
	if m.Checksum == "" && len(m.ShardChecksums) == 0 && m.Root == "" {
		return &m, nil // legacy checkpoint: nothing sealing it
	}
	if len(m.ShardChecksums) != m.Shards {
		return nil, &persist.ManifestError{Path: path, Field: "shard_checksums",
			Reason: fmt.Sprintf("%d entries for %d shards", len(m.ShardChecksums), m.Shards)}
	}
	if m.Root != EngineRoot(m.ShardChecksums) {
		return nil, &persist.ManifestError{Path: path, Field: "root",
			Reason: "does not match shard_checksums"}
	}
	want, err := EngineManifestChecksum(m)
	if err != nil {
		return nil, &persist.ManifestError{Path: path, Field: "checksum", Reason: err.Error()}
	}
	if m.Checksum != want {
		return nil, &persist.ManifestError{Path: path, Field: "checksum",
			Reason: fmt.Sprintf("%.12s, want %.12s", m.Checksum, want)}
	}
	return &m, nil
}

// LoadEngineManifest reads and validates dir's ENGINE.json. A missing
// file returns os.ErrNotExist unwrapped.
func LoadEngineManifest(dir string) (*CheckpointManifest, error) {
	path := filepath.Join(dir, manifestName)
	b, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
		return nil, &persist.ManifestError{Path: path, Field: "(file)", Reason: err.Error()}
	}
	return DecodeEngineManifest(path, b)
}

// ShardDir returns the fan-out subdirectory of shard i.
func ShardDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
}

// shardDir is the internal alias predating the exported form.
func shardDir(dir string, i int) string { return ShardDir(dir, i) }

// checkpointTarget resolves the persist.Checkpointable behind a shard's
// queue, settling simulator adapters into a persistable quiescent state
// first.
func (s *shard) checkpointTarget() (persist.Checkpointable, error) {
	q := s.q
	if a, ok := q.(*simAdapter); ok {
		if err := a.flush(); err != nil {
			return nil, fmt.Errorf("engine: shard %d flush: %w", s.id, err)
		}
		cq, ok := a.sim.(persist.Checkpointable)
		if !ok {
			return nil, fmt.Errorf("engine: shard %d simulator is not checkpointable", s.id)
		}
		return cq, nil
	}
	cq, ok := q.(persist.Checkpointable)
	if !ok {
		return nil, fmt.Errorf("engine: shard %d queue kind is not checkpointable", s.id)
	}
	return cq, nil
}

// Checkpoint writes a per-shard checkpoint fan-out under dir: an
// engine manifest plus one persist snapshot directory per shard. The
// engine must be Closed first — checkpointing requires exclusive
// access to every shard queue. It is the graceful-drain path cmd/bmwd
// takes on SIGTERM, reusing the same snapshot envelope and recovery
// machinery as the single-queue persistence subsystem.
//
// The engine manifest is written last and by tmp+rename: every shard's
// own manifest (chain head, Merkle root) is durable before the engine
// root that binds them is published.
func (e *Engine) Checkpoint(dir string) error {
	if !e.closed.Load() {
		return errors.New("engine: Checkpoint before Close")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	man := e.manifest()
	for _, s := range e.shards {
		cq, err := s.checkpointTarget()
		if err != nil {
			return err
		}
		popts := persist.Options{}
		if h := e.hooks.Load(); h != nil {
			popts.Flight = h.Flight
			if h.Metrics != nil {
				popts.Metrics = h.Metrics
				prefix := h.MetricsPrefix
				if prefix == "" {
					prefix = "persist"
				}
				popts.MetricsPrefix = fmt.Sprintf("%s_shard%d", prefix, s.id)
			}
		}
		m, err := persist.Attach(shardDir(dir, s.id), cq, popts)
		if err != nil {
			return fmt.Errorf("engine: shard %d attach: %w", s.id, err)
		}
		if err := m.Checkpoint(); err != nil {
			m.Close()
			return fmt.Errorf("engine: shard %d checkpoint: %w", s.id, err)
		}
		if sm := m.Manifest(); sm != nil {
			man.ShardChecksums = append(man.ShardChecksums, sm.Checksum)
		}
		if err := m.Close(); err != nil {
			return fmt.Errorf("engine: shard %d close: %w", s.id, err)
		}
		// Restore the adapter's head-buffer invariant so a drain after
		// checkpointing still sees the full shard.
		if a, ok := s.q.(*simAdapter); ok {
			if err := a.refill(); err != nil {
				return fmt.Errorf("engine: shard %d refill: %w", s.id, err)
			}
		}
	}
	man.Root = EngineRoot(man.ShardChecksums)
	sum, err := EngineManifestChecksum(man)
	if err != nil {
		return err
	}
	man.Checksum = sum
	return WriteEngineManifest(dir, man)
}

// WriteEngineManifest publishes an engine manifest atomically
// (tmp+rename with an fsync in between).
func WriteEngineManifest(dir string, m CheckpointManifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	final := filepath.Join(dir, manifestName)
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// restore loads every shard from a checkpoint fan-out written by
// Checkpoint. A directory without a manifest is a fresh start. Called
// from New before the shard goroutines exist, so it owns the queues.
func (e *Engine) restore(dir string) error {
	m, err := LoadEngineManifest(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	want := e.manifest()
	if m.config() != want.config() {
		return fmt.Errorf("engine: checkpoint config %+v does not match engine config %+v", m.config(), want.config())
	}
	sealed := len(m.ShardChecksums) == m.Shards
	for _, s := range e.shards {
		sdir := shardDir(dir, s.id)
		// Bind the shard's durable state to the engine root before
		// restoring from it: its MANIFEST.json must carry exactly the
		// self-checksum ENGINE.json sealed.
		if sealed {
			sm, err := persist.LoadManifest(nil, sdir)
			if err != nil {
				return fmt.Errorf("engine: shard %d manifest: %w", s.id, err)
			}
			if sm.Checksum != m.ShardChecksums[s.id] {
				return &persist.ManifestError{
					Path: filepath.Join(dir, manifestName), Field: "shard_checksums",
					Reason: fmt.Sprintf("shard %d manifest checksum %.12s, sealed %.12s",
						s.id, sm.Checksum, m.ShardChecksums[s.id]),
				}
			}
		}
		cq, err := s.checkpointTarget()
		if err != nil {
			return err
		}
		mgr, _, err := persist.Open(sdir, cq, persist.Options{})
		if err != nil {
			return fmt.Errorf("engine: shard %d restore: %w", s.id, err)
		}
		if err := mgr.Close(); err != nil {
			return fmt.Errorf("engine: shard %d close: %w", s.id, err)
		}
		if a, ok := s.q.(*simAdapter); ok {
			if err := a.refill(); err != nil {
				return fmt.Errorf("engine: shard %d refill: %w", s.id, err)
			}
		}
	}
	return nil
}
