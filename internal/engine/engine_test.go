package engine

import (
	"errors"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/refpq"
)

// kinds under test; every engine behaviour must hold for all four
// exact queue implementations.
var kinds = []Kind{KindCore, KindPIFO, KindRBMW, KindRPUBMW}

// smallConfig is a low-capacity engine for functional tests.
func smallConfig(k Kind, shards int) Config {
	return Config{
		Shards: shards, Kind: k,
		Order: 2, Levels: 6, // tree capacity 126 per shard
		Cap:      126,
		RingSize: 256, BatchSize: 16,
		Routing: RouteRank, RankBits: 16,
	}
}

// TestRankRoutedPopsGloballySorted drives a sequential push/pop phase
// through a rank-routed engine and checks the strict merge yields a
// globally sorted drain, validated per shard against a refpq reference:
// with rank-range routing the popped value identifies the serving
// shard, so each pop can be checked against that shard's own reference
// minimum — the per-shard differential drain of the acceptance
// criteria.
func TestRankRoutedPopsGloballySorted(t *testing.T) {
	for _, k := range kinds {
		t.Run(k.String(), func(t *testing.T) {
			const shards = 4
			e, err := New(smallConfig(k, shards))
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()

			width := (uint64(1) << 16) / shards
			shardOf := func(v uint64) int {
				s := v / width
				if s >= shards {
					s = shards - 1
				}
				return int(s)
			}
			refs := make([]*refpq.Queue, shards)
			for i := range refs {
				refs[i] = refpq.New()
			}

			rng := rand.New(rand.NewSource(7))
			pushed := 0
			for i := 0; i < 300; i++ {
				el := core.Element{Value: uint64(rng.Intn(1 << 16)), Meta: uint64(i)}
				err := e.Push(el)
				if err == nil {
					refs[shardOf(el.Value)].Push(refpq.Entry{Value: el.Value, Meta: el.Meta})
					pushed++
					continue
				}
				if !errors.Is(err, ErrBackpressure) && !errors.Is(err, core.ErrFull) {
					t.Fatalf("push %d: %v", i, err)
				}
			}
			if e.Len() != pushed {
				t.Fatalf("Len = %d after %d pushes", e.Len(), pushed)
			}

			prev := uint64(0)
			for i := 0; i < pushed; i++ {
				el, err := e.Pop()
				if err != nil {
					t.Fatalf("pop %d/%d: %v", i, pushed, err)
				}
				if el.Value < prev {
					t.Fatalf("pop %d: value %d after %d — merge not sorted", i, el.Value, prev)
				}
				prev = el.Value
				ref := refs[shardOf(el.Value)]
				if min := ref.MinValue(); el.Value != min {
					t.Fatalf("pop %d: value %d, shard reference min %d", i, el.Value, min)
				}
				if !ref.RemoveExact(refpq.Entry{Value: el.Value, Meta: el.Meta}) {
					t.Fatalf("pop %d: element (%d,%d) not in shard reference", i, el.Value, el.Meta)
				}
			}
			if _, err := e.Pop(); !errors.Is(err, core.ErrEmpty) {
				t.Fatalf("pop on empty engine = %v, want ErrEmpty", err)
			}
		})
	}
}

// TestHashRoutedShardExactness checks the per-shard exactness contract
// under hash routing: every pop returns a true minimum of some shard,
// and draining after Close yields a nondecreasing sequence per shard
// with nothing lost or invented.
func TestHashRoutedShardExactness(t *testing.T) {
	cfg := smallConfig(KindCore, 3)
	cfg.Routing = RouteHash
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(11))
	want := map[core.Element]int{}
	pushed := 0
	for i := 0; i < 250; i++ {
		el := core.Element{Value: uint64(rng.Intn(1 << 16)), Meta: uint64(i)}
		if err := e.Push(el); err == nil {
			want[el]++
			pushed++
		}
	}
	for i := 0; i < pushed/3; i++ {
		el, err := e.Pop()
		if err != nil {
			t.Fatalf("pop %d: %v", i, err)
		}
		if want[el] == 0 {
			t.Fatalf("pop %d: element %+v never pushed", i, el)
		}
		want[el]--
	}
	e.Close()
	for s := 0; s < e.Shards(); s++ {
		got, err := e.ShardDrain(s)
		if err != nil {
			t.Fatalf("drain shard %d: %v", s, err)
		}
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Value < got[j].Value }) {
			t.Fatalf("shard %d drain not sorted", s)
		}
		for _, el := range got {
			if want[el] == 0 {
				t.Fatalf("shard %d drained element %+v never pushed", s, el)
			}
			want[el]--
		}
	}
	for el, n := range want {
		if n != 0 {
			t.Fatalf("element %+v lost (%d copies unaccounted)", el, n)
		}
	}
}

// TestBackpressureTyped pins the non-blocking admission contract: a
// push against a full shard fails fast with ErrBackpressure (published
// almost-full) or core.ErrFull (raced to the queue), never blocking
// and never erroring untyped.
func TestBackpressureTyped(t *testing.T) {
	cfg := Config{Shards: 1, Kind: KindPIFO, Cap: 8, RingSize: 4, BatchSize: 2}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	refused := 0
	for i := 0; i < 64; i++ {
		err := e.Push(core.Element{Value: uint64(i), Meta: uint64(i)})
		switch {
		case err == nil:
		case errors.Is(err, ErrBackpressure), errors.Is(err, core.ErrFull):
			refused++
		default:
			t.Fatalf("push %d: unexpected error %v", i, err)
		}
	}
	if refused == 0 {
		t.Fatal("no push was refused despite 64 pushes into capacity 8")
	}
	if e.Len() != 8 {
		t.Fatalf("Len = %d, want full capacity 8", e.Len())
	}
	// Draining relieves the backpressure.
	if _, err := e.Pop(); err != nil {
		t.Fatalf("pop under backpressure: %v", err)
	}
	if err := e.Push(core.Element{Value: 1, Meta: 99}); err != nil {
		t.Fatalf("push after drain: %v", err)
	}
}

// TestSubmitBatchMixed checks the batched submit path end to end:
// mixed push/pop batches complete in order with one result per op.
func TestSubmitBatchMixed(t *testing.T) {
	e, err := New(smallConfig(KindCore, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	ops := make([]Op, 0, 32)
	for i := 0; i < 16; i++ {
		ops = append(ops, PushOp(core.Element{Value: uint64(100 - i), Meta: uint64(i)}))
	}
	res := e.Submit(ops)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("push op %d: %v", i, r.Err)
		}
	}
	pops := make([]Op, 16)
	for i := range pops {
		pops[i] = PopOp()
	}
	res = e.Submit(pops)
	got := 0
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("pop op %d: %v", i, r.Err)
		}
		got++
		_ = i
	}
	if got != 16 || e.Len() != 0 {
		t.Fatalf("popped %d, engine len %d; want 16 and 0", got, e.Len())
	}
}

// TestClosedEngine pins ErrClosed after Close.
func TestClosedEngine(t *testing.T) {
	e, err := New(smallConfig(KindCore, 2))
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close() // idempotent
	if err := e.Push(core.Element{Value: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close = %v, want ErrClosed", err)
	}
	if _, err := e.Pop(); !errors.Is(err, core.ErrEmpty) && !errors.Is(err, ErrClosed) {
		t.Fatalf("pop after close = %v, want ErrEmpty or ErrClosed", err)
	}
}

// TestCheckpointRestore round-trips every queue kind through the
// per-shard checkpoint fan-out: push, close, checkpoint, restore into
// a fresh engine, and drain — the restored engine must yield exactly
// the surviving elements in merged sorted order.
func TestCheckpointRestore(t *testing.T) {
	for _, k := range kinds {
		t.Run(k.String(), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "ckpt")
			cfg := smallConfig(k, 3)
			e, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(23))
			want := []core.Element{}
			for i := 0; i < 150; i++ {
				el := core.Element{Value: uint64(rng.Intn(1 << 16)), Meta: uint64(i)}
				if err := e.Push(el); err == nil {
					want = append(want, el)
				}
			}
			// A few pops so the checkpoint is mid-lifecycle, not pristine.
			for i := 0; i < 20; i++ {
				el, err := e.Pop()
				if err != nil {
					t.Fatalf("pop %d: %v", i, err)
				}
				for j, w := range want {
					if w == el {
						want = append(want[:j], want[j+1:]...)
						break
					}
				}
			}
			e.Close()
			if err := e.Checkpoint(dir); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}

			cfg.RestoreDir = dir
			r, err := New(cfg)
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			defer r.Close()
			if r.Len() != len(want) {
				t.Fatalf("restored Len = %d, want %d", r.Len(), len(want))
			}
			sort.Slice(want, func(i, j int) bool { return want[i].Value < want[j].Value })
			for i := range want {
				el, err := r.Pop()
				if err != nil {
					t.Fatalf("restored pop %d: %v", i, err)
				}
				if el.Value != want[i].Value {
					t.Fatalf("restored pop %d: value %d, want %d", i, el.Value, want[i].Value)
				}
			}
		})
	}
}

// TestRestoreConfigMismatch pins the manifest guard: restoring a
// fan-out into a differently configured engine is refused.
func TestRestoreConfigMismatch(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	e, err := New(smallConfig(KindCore, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Push(core.Element{Value: 5}); err != nil {
		t.Fatal(err)
	}
	e.Close()
	if err := e.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	bad := smallConfig(KindCore, 4) // shard count differs
	bad.RestoreDir = dir
	if _, err := New(bad); err == nil {
		t.Fatal("restore into mismatched shard count succeeded, want error")
	}
}

// TestSimAdapterAgainstReference validates the synchronous adapter
// (including its head-buffer minimum invariant) against refpq over a
// random push/pop schedule on both hardware simulators.
func TestSimAdapterAgainstReference(t *testing.T) {
	for _, k := range []Kind{KindRBMW, KindRPUBMW} {
		t.Run(k.String(), func(t *testing.T) {
			a := newShardQueue(Config{Kind: k, Order: 2, Levels: 5}.withDefaults())
			ref := refpq.New()
			rng := rand.New(rand.NewSource(3))
			for i := 0; i < 4000; i++ {
				if (rng.Intn(2) == 0 && !a.AlmostFull()) || ref.Len() == 0 {
					el := core.Element{Value: uint64(rng.Intn(1 << 12)), Meta: uint64(i)}
					if err := a.Push(el); err != nil {
						t.Fatalf("push %d: %v", i, err)
					}
					ref.Push(refpq.Entry{Value: el.Value, Meta: el.Meta})
				} else {
					el, err := a.Pop()
					if err != nil {
						t.Fatalf("pop %d: %v", i, err)
					}
					if min := ref.MinValue(); el.Value != min {
						t.Fatalf("pop %d: value %d, reference min %d", i, el.Value, min)
					}
					if !ref.RemoveExact(refpq.Entry{Value: el.Value, Meta: el.Meta}) {
						t.Fatalf("pop %d: (%d,%d) not in reference", i, el.Value, el.Meta)
					}
				}
				if a.Len() != ref.Len() {
					t.Fatalf("step %d: Len %d, reference %d", i, a.Len(), ref.Len())
				}
			}
		})
	}
}
