package engine

import (
	"testing"

	"repro/internal/core"
)

// TestPeekMin covers the non-destructive global-minimum read that backs
// the cluster's cross-node strict merge: empty engine, min across
// shards, stability across repeated peeks, and tracking as pops drain.
func TestPeekMin(t *testing.T) {
	for _, k := range kinds {
		t.Run(k.String(), func(t *testing.T) {
			e, err := New(smallConfig(k, 4))
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()

			if _, ok := e.PeekMin(); ok {
				t.Fatal("PeekMin on an empty engine reported a head")
			}

			// Rank routing spreads these across shards; the peek must
			// merge to the global minimum.
			vals := []uint64{40000, 7, 65535, 20000, 300}
			for i, v := range vals {
				if res := e.Submit([]Op{PushOp(core.Element{Value: v, Meta: uint64(i)})}); res[0].Err != nil {
					t.Fatalf("push %d: %v", v, res[0].Err)
				}
			}
			for i := 0; i < 3; i++ { // non-destructive: stable across reads
				el, ok := e.PeekMin()
				if !ok || el.Value != 7 {
					t.Fatalf("peek %d = %+v ok=%v, want 7", i, el, ok)
				}
			}
			if e.Len() != len(vals) {
				t.Fatalf("peek consumed elements: len %d", e.Len())
			}

			// Each pop moves the head to the next global minimum.
			for _, want := range []uint64{7, 300, 20000} {
				res := e.Submit([]Op{PopOp()})
				if res[0].Err != nil || res[0].Elem.Value != want {
					t.Fatalf("pop = %+v, want %d", res[0], want)
				}
			}
			if el, ok := e.PeekMin(); !ok || el.Value != 40000 {
				t.Fatalf("peek after pops = %+v ok=%v, want 40000", el, ok)
			}
		})
	}
}
