// Package engine is the sharded, concurrent serving layer over the
// exact priority queues of this module: N shards, each a goroutine that
// exclusively owns one queue (software BMW-Tree, PIFO, or a
// cycle-accurate simulator behind a synchronous adapter), fed by a
// bounded MPSC request ring with batched submit and drain so the
// synchronization cost per operation is a small fraction of a mutex
// round-trip.
//
// The bare queues in this module are intentionally single-goroutine —
// they model hardware with one issue port per cycle and carry zero
// synchronization on their hot paths. The engine is the one concurrency
// boundary: all cross-goroutine traffic goes through the rings, and each
// queue is only ever touched by its owning shard goroutine.
//
// Ordering semantics: each shard is an exact PIFO — every pop returns a
// true minimum of the elements currently on that shard. Across shards
// the order is determined by routing. With RouteRank the rank space is
// range-partitioned, so draining shards lowest-first yields a globally
// sorted sequence and the strict merge (pop from the shard with the
// smallest published head) is exact up to concurrently in-flight
// requests. With RouteHash elements of any rank land on any shard and
// the merge is best-effort: per-shard exactness still holds, global
// order is approximate while producers are concurrent. See DESIGN.md
// section 6.
//
// Backpressure is typed, never blocking: a push submitted to a shard
// whose queue reported almost-full, or whose ring is full, fails with
// ErrBackpressure and the caller decides whether to retry, shed, or
// slow down.
package engine

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Typed engine errors. Queue-level ErrFull/ErrEmpty pass through from
// internal/core.
var (
	// ErrBackpressure reports that a push was refused before reaching
	// the queue: the shard's ring was full or its queue almost-full.
	// Transient — back off briefly and retry.
	ErrBackpressure = errors.New("engine: shard backpressured")
	// ErrOverloaded reports that a push was shed by admission control:
	// the shard has been running above its overload watermarks (ring
	// occupancy or drain latency, see Overload) and is protecting
	// itself. Distinct from ErrBackpressure so callers can back off
	// harder — the shard is saturated, not momentarily full.
	ErrOverloaded = errors.New("engine: shard overloaded")
	// ErrClosed reports a submit against a closed engine.
	ErrClosed = errors.New("engine: closed")
	// ErrInvalidOp reports an operation of unknown kind.
	ErrInvalidOp = errors.New("engine: invalid operation")
)

// OpKind identifies a request kind.
type OpKind uint8

// Request kinds.
const (
	OpPush OpKind = iota
	OpPop
)

// Op is one request: a push carrying an element, or a pop.
type Op struct {
	Kind OpKind
	Elem core.Element
}

// PushOp builds a push request.
func PushOp(e core.Element) Op { return Op{Kind: OpPush, Elem: e} }

// PopOp builds a pop request.
func PopOp() Op { return Op{Kind: OpPop} }

// Result is one request's outcome. Elem is meaningful for a successful
// pop. Shard and LSN identify where and in what order a successful
// (Err == nil) operation mutated its queue: LSN is the shard's count of
// applied mutations, dense and strictly increasing per shard. They are
// what WAL-shipping replication streams; refused or failed operations
// mutate nothing and carry LSN 0.
type Result struct {
	Elem  core.Element
	Err   error
	Shard int32
	LSN   uint64
}

// Routing selects how pushes map to shards.
type Routing int

// Routing policies.
const (
	// RouteHash spreads pushes by a hash of the element metadata (the
	// flow identifier), balancing load at the cost of cross-shard
	// ordering exactness.
	RouteHash Routing = iota
	// RouteRank partitions the rank space into contiguous per-shard
	// ranges, preserving a globally sorted drain order.
	RouteRank
)

// Config parameterises New.
type Config struct {
	// Shards is the number of shard goroutines (default 1).
	Shards int
	// Kind selects each shard's queue implementation (default KindCore).
	Kind Kind
	// Order and Levels shape the tree-based kinds (defaults 2 and 11).
	Order, Levels int
	// Cap is the per-shard capacity for KindPIFO (default 4094).
	Cap int
	// RingSize bounds each shard's request ring (default 1024).
	RingSize int
	// BatchSize caps how many requests a shard drains and executes per
	// ring acquisition (default 64).
	BatchSize int
	// Routing selects the push-routing policy (default RouteHash).
	Routing Routing
	// RankBits is the width of the rank space RouteRank partitions
	// (default 16, matching the paper's 16-bit ranks). Ranks at or
	// beyond 1<<RankBits route to the last shard.
	RankBits int
	// RestoreDir, when non-empty, restores every shard from the
	// per-shard checkpoint fan-out a previous Checkpoint wrote there.
	// A missing or empty directory is a fresh start, not an error.
	RestoreDir string
	// Overload sets the admission-control watermarks; the zero value
	// disables overload shedding.
	Overload Overload
}

// Overload parameterises per-shard admission control. A shard trips
// into overload when its ring occupancy at drain reaches HighFrac of
// the ring size, or a drained batch takes DrainLatencyHigh or longer to
// execute; while tripped, pushes routed to it are shed with
// ErrOverloaded. It clears once occupancy falls back to LowFrac with
// drain latency below the high mark — hysteresis, so the signal does
// not flap at the boundary — or once Cooloff passes with no drain at
// all: shed pushes never reach the ring, so under push-only traffic an
// emptied ring would otherwise never drain again and the latch would
// hold forever.
type Overload struct {
	// HighFrac is the ring-occupancy fraction (0,1] that trips
	// overload. Zero disables overload control entirely.
	HighFrac float64
	// LowFrac is the occupancy fraction at or below which overload
	// clears (default HighFrac/2).
	LowFrac float64
	// DrainLatencyHigh, when nonzero, also trips overload when one
	// drained batch takes this long or longer to execute.
	DrainLatencyHigh time.Duration
	// Cooloff bounds how long a tripped shard sheds without any drain
	// re-evaluating the signal; past it the next push is admitted and
	// the watermarks judge afresh (default 250ms).
	Cooloff time.Duration
}

// enabled reports whether overload control is on.
func (o Overload) enabled() bool { return o.HighFrac > 0 }

// Normalized returns the config with all defaults applied — the form
// New actually runs, and the form replication manifests compare.
func (c Config) Normalized() Config { return c.withDefaults() }

// withDefaults fills the zero values.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Order <= 0 {
		c.Order = 2
	}
	if c.Levels <= 0 {
		c.Levels = 11
	}
	if c.Cap <= 0 {
		c.Cap = 4094
	}
	if c.RingSize <= 0 {
		c.RingSize = 1024
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.RankBits <= 0 || c.RankBits > 63 {
		c.RankBits = 16
	}
	if c.Overload.HighFrac > 0 && c.Overload.LowFrac <= 0 {
		c.Overload.LowFrac = c.Overload.HighFrac / 2
	}
	if c.Overload.HighFrac > 0 && c.Overload.Cooloff <= 0 {
		c.Overload.Cooloff = 250 * time.Millisecond
	}
	return c
}

// emptyHead is the published head value of an empty shard. A real rank
// of MaxUint64 collides with it and merely deprioritizes that shard in
// the merge; correctness is unaffected because pops are validated
// against the queue itself.
const emptyHead = math.MaxUint64

// Hooks are the engine's incident-wiring points, set once via
// SetHooks before traffic: the flight recorder receives overload and
// backpressure edges, OnOverloadTrip fires (from the shard goroutine —
// keep it non-blocking, e.g. IncidentCapturer.CaptureAsync) when a
// shard trips into overload, and OnPanic observes a shard goroutine's
// panic value before the engine re-panics.
type Hooks struct {
	Flight         *obs.FlightRecorder
	OnOverloadTrip func(shard, occ int)
	OnPanic        func(shard int, r any)
	// Metrics, when non-nil, is handed to the per-shard persist
	// managers Checkpoint attaches (prefixed <MetricsPrefix>_shard<i>),
	// so WAL sticky-poisoning and fsync-retry state surface as gauges
	// on the daemon registry.
	Metrics       *obs.Registry
	MetricsPrefix string
}

// shard is one engine lane: a goroutine, its ring, and its queue.
type shard struct {
	id      int
	q       shardQueue
	ring    *ring
	ringCap int
	// ov is the admission-control config, swappable at runtime
	// (SetOverload) so operators and the chaos harness can tighten or
	// relax the watermarks on a live engine.
	ov    atomic.Pointer[Overload]
	hooks *atomic.Pointer[Hooks]

	// lsn counts this shard's applied mutations; owned by the shard
	// goroutine, mirrored into lsnPub after each batch for readers.
	lsn    uint64
	lsnPub atomic.Uint64

	// Published state, written by the shard after each drained batch
	// and read by routers: queue length, smallest rank (emptyHead when
	// empty) with its metadata, the almost-full backpressure signal,
	// and the overload admission gate. headV/headM are separate words,
	// so a reader racing a drain can see a (value, meta) pair from two
	// different heads; PeekMin documents that tear — merge routing keys
	// on Value alone.
	length     atomic.Int64
	headV      atomic.Uint64
	headM      atomic.Uint64
	almostFull atomic.Bool
	overloaded atomic.Bool
	// overUntil is the UnixNano deadline of the overload latch,
	// refreshed at every drain while tripped. Past it with no drain
	// having cleared the latch, the push path clears it itself — the
	// drain loop cannot, because shed pushes never reach the ring.
	overUntil atomic.Int64

	// Metrics (nil-safe when the engine is uninstrumented).
	pushes, pops     *obs.Counter
	fulls, empties   *obs.Counter
	backpressured    *obs.Counter
	shed             *obs.Counter
	ringOcc, drained *obs.Histogram

	scratch []entry
}

// batch is one submit call's completion state: results land in place,
// the last finished entry closes done. sp, when non-nil, is the
// request-lifecycle span the shards stamp (StageDequeue on first drain,
// StageApply when the batch completes).
type batch struct {
	results []Result
	pending atomic.Int32
	done    chan struct{}
	sp      *obs.Span
}

// Engine is the sharded scheduling service.
type Engine struct {
	cfg    Config
	shards []*shard
	hooks  atomic.Pointer[Hooks]
	// backpressure counter for submit-side ring rejections across all
	// shards (per-shard queue-side signals live on the shards).
	closed atomic.Bool
	wg     sync.WaitGroup
}

// SetHooks installs the incident-wiring points. Call once, before the
// engine serves traffic.
func (e *Engine) SetHooks(h Hooks) { e.hooks.Store(&h) }

// SetOverload replaces the admission-control watermarks on every shard
// of a live engine (defaults applied as in Config). The zero value
// disables shedding; a currently tripped latch clears at the next
// drain or push-path cooloff under the new config.
func (e *Engine) SetOverload(o Overload) {
	if o.HighFrac > 0 && o.LowFrac <= 0 {
		o.LowFrac = o.HighFrac / 2
	}
	if o.HighFrac > 0 && o.Cooloff <= 0 {
		o.Cooloff = 250 * time.Millisecond
	}
	for _, s := range e.shards {
		s.ov.Store(&o)
	}
}

// New builds the engine, restoring shards from cfg.RestoreDir when set,
// and starts one goroutine per shard.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.Kind != KindPIFO && cfg.Order < core.MinOrder {
		return nil, fmt.Errorf("engine: order %d below minimum %d", cfg.Order, core.MinOrder)
	}
	e := &Engine{cfg: cfg}
	for i := 0; i < cfg.Shards; i++ {
		s := &shard{
			id:      i,
			q:       newShardQueue(cfg),
			ring:    newRing(cfg.RingSize),
			ringCap: cfg.RingSize,
			hooks:   &e.hooks,
			scratch: make([]entry, cfg.BatchSize),
		}
		ov := cfg.Overload
		s.ov.Store(&ov)
		e.shards = append(e.shards, s)
	}
	if cfg.RestoreDir != "" {
		if err := e.restore(cfg.RestoreDir); err != nil {
			return nil, err
		}
	}
	for _, s := range e.shards {
		s.publish()
		e.wg.Add(1)
		go func(s *shard) {
			defer e.wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if h := e.hooks.Load(); h != nil && h.OnPanic != nil {
						h.OnPanic(s.id, r)
					}
					panic(r)
				}
			}()
			s.run()
		}(s)
	}
	return e, nil
}

// Shards returns the shard count.
func (e *Engine) Shards() int { return len(e.shards) }

// Len sums the published per-shard queue lengths.
func (e *Engine) Len() int {
	n := int64(0)
	for _, s := range e.shards {
		n += s.length.Load()
	}
	return int(n)
}

// Cap sums the per-shard capacities.
func (e *Engine) Cap() int {
	n := 0
	for _, s := range e.shards {
		n += s.q.Cap()
	}
	return n
}

// ShardLen returns the published length of shard i.
func (e *Engine) ShardLen(i int) int { return int(e.shards[i].length.Load()) }

// OverloadedShards counts shards currently shedding pushes under
// admission control — the health-endpoint view of overload state.
func (e *Engine) OverloadedShards() int {
	n := 0
	for _, s := range e.shards {
		if s.overloaded.Load() {
			n++
		}
	}
	return n
}

// splitmix64 is the routing hash: cheap, well-mixed, allocation-free.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// routePush picks the shard a push belongs to.
func (e *Engine) routePush(el core.Element) int {
	n := uint64(len(e.shards))
	if e.cfg.Routing == RouteRank {
		width := (uint64(1) << e.cfg.RankBits) / n
		if width == 0 {
			width = 1
		}
		s := el.Value / width
		if s >= n {
			s = n - 1
		}
		return int(s)
	}
	return int(splitmix64(el.Meta) % n)
}

// routePop picks the shard with the smallest published head — the
// strict merge across shard minimums. It returns -1 when every shard
// publishes empty.
func (e *Engine) routePop() int {
	best, bestHead := -1, uint64(emptyHead)
	for i, s := range e.shards {
		if s.length.Load() == 0 {
			continue
		}
		if h := s.headV.Load(); best == -1 || h < bestHead {
			best, bestHead = i, h
		}
	}
	return best
}

// PeekMin returns the engine's current global minimum — the smallest
// published shard head — without removing it, or ok=false when every
// shard publishes empty. It is the node-local half of the cluster's
// cross-node strict-merge PopMin: a client probes each node's minimum
// with this (via the wire protocol's OpPeek) and drains from the
// globally minimal head, mirroring routePop's merge across shards one
// level up. The read is advisory, exactly like routePop's snapshot:
// concurrent mutators can change the head before the caller acts, and
// the returned Meta may be torn relative to Value when a drain races
// the read (the merge keys on Value alone).
func (e *Engine) PeekMin() (core.Element, bool) {
	best := core.Element{Value: emptyHead}
	ok := false
	for _, s := range e.shards {
		if s.length.Load() == 0 {
			continue
		}
		if v := s.headV.Load(); !ok || v < best.Value {
			best = core.Element{Value: v, Meta: s.headM.Load()}
			ok = true
		}
	}
	return best, ok
}

// Submit routes each operation to its shard, enqueues the per-shard
// groups with one ring acquisition each, and waits for all accepted
// operations to complete. Refused operations (backpressure, closed
// engine, pop on an engine publishing empty) fail in place without
// blocking the rest of the batch. The returned slice has one Result
// per op, in order.
func (e *Engine) Submit(ops []Op) []Result {
	results := make([]Result, len(ops))
	e.SubmitInto(ops, results)
	return results
}

// SubmitInto is Submit writing into a caller-provided result slice
// (len(results) must equal len(ops)), saving the allocation on hot
// paths.
func (e *Engine) SubmitInto(ops []Op, results []Result) {
	e.SubmitTraced(ops, results, nil)
}

// SubmitTraced is SubmitInto carrying a request-lifecycle span: the
// engine stamps StageEnqueue immediately before the first ring insert
// (so it always precedes the shard's StageDequeue), StageDequeue when a
// shard drains one of the request's operations, and StageApply when the
// last accepted operation has executed. A nil span costs one branch per
// stamp site — the untraced path.
func (e *Engine) SubmitTraced(ops []Op, results []Result, sp *obs.Span) {
	if len(results) != len(ops) {
		panic("engine: SubmitInto result slice length mismatch")
	}
	if e.closed.Load() {
		for i := range results {
			results[i] = Result{Err: ErrClosed}
		}
		return
	}
	b := &batch{results: results, done: make(chan struct{}), sp: sp}
	perShard := make([][]entry, len(e.shards))
	accepted := 0
	for i, op := range ops {
		var sh int
		switch op.Kind {
		case OpPush:
			sh = e.routePush(op.Elem)
			if s := e.shards[sh]; s.overloaded.Load() {
				// An expired latch means no drain has re-judged the
				// signal for a full cooloff — admit this push so the
				// next drain can.
				if time.Now().UnixNano() >= s.overUntil.Load() {
					if s.overloaded.Swap(false) {
						s.overloadEdge(false, -1)
					}
				} else {
					s.shed.Inc()
					results[i] = Result{Err: ErrOverloaded}
					continue
				}
			}
			if e.shards[sh].almostFull.Load() {
				e.shards[sh].backpressured.Inc()
				results[i] = Result{Err: ErrBackpressure}
				continue
			}
		case OpPop:
			sh = e.routePop()
			if sh < 0 {
				results[i] = Result{Err: core.ErrEmpty}
				continue
			}
		default:
			results[i] = Result{Err: ErrInvalidOp}
			continue
		}
		perShard[sh] = append(perShard[sh], entry{op: op, b: b, idx: i})
		accepted++
	}
	if accepted == 0 {
		return
	}
	b.pending.Store(int32(accepted))
	// Stamp before the first ring insert: a fast shard may drain (and
	// stamp StageDequeue) the instant an entry lands, so stamping after
	// the loop could record enqueue > dequeue.
	sp.Stamp(obs.StageEnqueue)
	refused := int32(0)
	for sh, es := range perShard {
		if len(es) == 0 {
			continue
		}
		n := e.shards[sh].ring.enqueue(es)
		err := ErrBackpressure
		if n < 0 {
			n, err = 0, ErrClosed
		}
		for _, rej := range es[n:] {
			if err == ErrBackpressure {
				e.shards[sh].backpressured.Inc()
			}
			results[rej.idx] = Result{Err: err}
			refused++
		}
	}
	if refused > 0 && b.pending.Add(-refused) == 0 {
		// Every accepted entry already executed (their decrements came
		// first); the shard that ran the last one never saw pending hit
		// zero, so the apply stamp falls to us. First-wins: no-op when a
		// shard already stamped.
		sp.Stamp(obs.StageApply)
		return
	}
	<-b.done
}

// Push submits one push. It returns nil on success, ErrBackpressure
// when the shard refuses admission, core.ErrFull when the queue itself
// is full at execution, or ErrClosed.
func (e *Engine) Push(el core.Element) error {
	var results [1]Result
	e.SubmitInto([]Op{PushOp(el)}, results[:])
	return results[0].Err
}

// Pop submits one pop via the strict merge. When the merged shard
// raced to empty it retries against the remaining shards before
// reporting core.ErrEmpty.
func (e *Engine) Pop() (core.Element, error) {
	var results [1]Result
	ops := [1]Op{PopOp()}
	for attempt := 0; attempt <= len(e.shards); attempt++ {
		e.SubmitInto(ops[:], results[:])
		r := results[0]
		if !errors.Is(r.Err, core.ErrEmpty) {
			return r.Elem, r.Err
		}
		if e.Len() == 0 {
			break
		}
	}
	return core.Element{}, core.ErrEmpty
}

// Close stops the shard goroutines after the rings drain. Submits that
// raced with Close complete; later submits fail with ErrClosed. Close
// is idempotent.
func (e *Engine) Close() {
	if e.closed.Swap(true) {
		return
	}
	for _, s := range e.shards {
		s.ring.close()
	}
	e.wg.Wait()
}

// ShardDrain empties shard i in pop order. It must only be called
// after Close, when no shard goroutine is running.
func (e *Engine) ShardDrain(i int) ([]core.Element, error) {
	if !e.closed.Load() {
		return nil, errors.New("engine: ShardDrain before Close")
	}
	s := e.shards[i]
	out := make([]core.Element, 0, s.q.Len())
	for s.q.Len() > 0 {
		el, err := s.q.Pop()
		if err != nil {
			return out, err
		}
		out = append(out, el)
	}
	return out, nil
}

// run is the shard goroutine: drain a batch, execute it against the
// exclusively owned queue, publish the head/length/backpressure
// signals, then complete the batch entries.
func (s *shard) run() {
	for {
		n, occ := s.ring.drain(s.scratch)
		if n == 0 {
			return
		}
		s.ringOcc.Observe(uint64(occ))
		s.drained.Observe(uint64(n))
		ov := *s.ov.Load()
		var start time.Time
		if ov.DrainLatencyHigh > 0 {
			start = time.Now()
		}
		// One span clock read covers every traced batch in this drain:
		// the entries all left the ring at drain time, so the drain
		// moment IS their dequeue timestamp, and sharing it keeps the
		// per-entry cost at a nil check when tracing is off.
		var drainNs int64
		for i := 0; i < n; i++ {
			en := &s.scratch[i]
			if en.b.sp != nil {
				if drainNs == 0 {
					drainNs = obs.SpanNow()
				}
				en.b.sp.StampAt(obs.StageDequeue, drainNs)
			}
			switch en.op.Kind {
			case OpPush:
				err := s.q.Push(en.op.Elem)
				switch {
				case err == nil:
					s.pushes.Inc()
					s.lsn++
					en.b.results[en.idx] = Result{Err: nil, Shard: int32(s.id), LSN: s.lsn}
					continue
				case errors.Is(err, core.ErrFull):
					s.fulls.Inc()
				}
				en.b.results[en.idx] = Result{Err: err}
			case OpPop:
				el, err := s.q.Pop()
				switch {
				case err == nil:
					s.pops.Inc()
					s.lsn++
					en.b.results[en.idx] = Result{Elem: el, Shard: int32(s.id), LSN: s.lsn}
					continue
				case errors.Is(err, core.ErrEmpty):
					s.empties.Inc()
				}
				en.b.results[en.idx] = Result{Elem: el, Err: err}
			default:
				en.b.results[en.idx] = Result{Err: ErrInvalidOp}
			}
		}
		s.publish()
		if ov.enabled() {
			s.updateOverload(ov, occ, start)
		}
		var applyNs int64
		for i := 0; i < n; i++ {
			b := s.scratch[i].b
			s.scratch[i] = entry{}
			if b.pending.Add(-1) == 0 {
				if b.sp != nil {
					if applyNs == 0 {
						applyNs = obs.SpanNow()
					}
					b.sp.StampAt(obs.StageApply, applyNs)
				}
				close(b.done)
			}
		}
	}
}

// updateOverload applies the admission-control hysteresis after one
// drained batch: trip at the high watermarks, clear only once both
// signals sit below them again. Edges (not levels) feed the hooks.
func (s *shard) updateOverload(ov Overload, occ int, start time.Time) {
	frac := float64(occ) / float64(s.ringCap)
	slow := false
	if ov.DrainLatencyHigh > 0 {
		slow = time.Since(start) >= ov.DrainLatencyHigh
	}
	switch {
	case frac >= ov.HighFrac || slow:
		if !s.overloaded.Swap(true) {
			s.overloadEdge(true, occ)
		}
	case s.overloaded.Load() && frac <= ov.LowFrac:
		if s.overloaded.Swap(false) {
			s.overloadEdge(false, occ)
		}
	}
	if s.overloaded.Load() {
		s.overUntil.Store(time.Now().Add(ov.Cooloff).UnixNano())
	}
}

// overloadEdge reports one overload latch transition to the hooks.
// occ is the ring occupancy at the deciding drain (-1 when the edge
// came from the push path's cooloff expiry).
func (s *shard) overloadEdge(tripped bool, occ int) {
	h := s.hooks.Load()
	if h == nil {
		return
	}
	b := uint64(0)
	if tripped {
		b = 1
	}
	h.Flight.Record(obs.FlightOverload, 0, uint64(s.id), b, uint64(max(occ, 0)))
	if tripped && h.OnOverloadTrip != nil {
		h.OnOverloadTrip(s.id, occ)
	}
}

// publish refreshes the shard's router-visible state from its queue,
// recording almost-full (backpressure) edges into the flight recorder.
func (s *shard) publish() {
	s.length.Store(int64(s.q.Len()))
	if el, err := s.q.Peek(); err == nil {
		s.headV.Store(el.Value)
		s.headM.Store(el.Meta)
	} else {
		s.headV.Store(emptyHead)
		s.headM.Store(0)
	}
	af := s.q.AlmostFull()
	if s.almostFull.Swap(af) != af {
		if h := s.hooks.Load(); h != nil {
			b := uint64(0)
			if af {
				b = 1
			}
			h.Flight.Record(obs.FlightBackpressure, 0, uint64(s.id), b, uint64(s.q.Len()))
		}
	}
	s.lsnPub.Store(s.lsn)
}

// ShardLSN returns shard i's published applied-mutation count — the
// replication high-water mark readers compare against streamed record
// LSNs.
func (e *Engine) ShardLSN(i int) uint64 { return e.shards[i].lsnPub.Load() }

// ApplyReplica executes ops against shard sh directly — the replication
// apply path. It bypasses push routing, the strict-merge pop routing,
// and every admission gate (backpressure and overload): a follower must
// apply the primary's history verbatim, in the primary's per-shard LSN
// order, and the history is known to fit because the primary executed
// it against identical geometry. When the target ring is momentarily
// full it waits rather than refusing. Results land one per op, in
// order, with Shard/LSN stamped exactly as on the primary; it returns
// ErrClosed if the engine closes mid-apply.
func (e *Engine) ApplyReplica(sh int, ops []Op, results []Result) error {
	if len(results) != len(ops) {
		panic("engine: ApplyReplica result slice length mismatch")
	}
	if sh < 0 || sh >= len(e.shards) {
		return fmt.Errorf("engine: ApplyReplica shard %d of %d", sh, len(e.shards))
	}
	if len(ops) == 0 {
		return nil
	}
	b := &batch{results: results, done: make(chan struct{})}
	es := make([]entry, len(ops))
	for i, op := range ops {
		es[i] = entry{op: op, b: b, idx: i}
	}
	b.pending.Store(int32(len(es)))
	refused := int32(0)
	for len(es) > 0 {
		n := e.shards[sh].ring.enqueue(es)
		if n < 0 {
			for _, en := range es {
				results[en.idx] = Result{Err: ErrClosed}
			}
			refused = int32(len(es))
			break
		}
		es = es[n:]
		if len(es) > 0 {
			// Ring full: the shard goroutine is draining it; yield and
			// retry rather than surface backpressure on the apply path.
			runtime.Gosched()
		}
	}
	if refused > 0 {
		if b.pending.Add(-refused) > 0 {
			<-b.done
		}
		return ErrClosed
	}
	<-b.done
	return nil
}
