package engine

import (
	"fmt"

	"repro/internal/obs"
)

// ringBounds are the drain-size/occupancy histogram buckets: powers of
// two up to the largest ring the defaults allow.
var ringBounds = []uint64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// Instrument registers the engine's per-shard probes in reg under the
// metric-name prefix:
//
//	<prefix>_shard<i>_pushes_total / _pops_total   successful operations
//	<prefix>_shard<i>_full_total / _empty_total    queue-level refusals
//	<prefix>_shard<i>_backpressure_total           admission refusals
//	<prefix>_shard<i>_ring_occupancy               ring depth at drain
//	<prefix>_shard<i>_drain_batch                  requests per drain
//	<prefix>_shard<i>_occupancy / _capacity        queue fill
//	<prefix>_len                                   aggregate length
//
// The shard goroutines own their counters (atomics), so the registry is
// safe to serve over HTTP while the engine is loaded. Call before
// submitting traffic; a nil registry leaves the engine uninstrumented.
func (e *Engine) Instrument(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.GaugeFunc(prefix+"_len", func() float64 { return float64(e.Len()) })
	reg.GaugeFunc(prefix+"_shards", func() float64 { return float64(len(e.shards)) })
	for _, s := range e.shards {
		s := s
		p := fmt.Sprintf("%s_shard%d", prefix, s.id)
		s.pushes = reg.Counter(p + "_pushes_total")
		s.pops = reg.Counter(p + "_pops_total")
		s.fulls = reg.Counter(p + "_full_total")
		s.empties = reg.Counter(p + "_empty_total")
		s.backpressured = reg.Counter(p + "_backpressure_total")
		s.shed = reg.Counter(p + "_overload_shed_total")
		reg.GaugeFunc(p+"_overloaded", func() float64 {
			if s.overloaded.Load() {
				return 1
			}
			return 0
		})
		reg.Help(p+"_ring_occupancy", "request-ring depth observed at each drain")
		s.ringOcc = reg.Histogram(p+"_ring_occupancy", ringBounds)
		reg.Help(p+"_drain_batch", "requests executed per ring drain")
		s.drained = reg.Histogram(p+"_drain_batch", ringBounds)
		reg.GaugeFunc(p+"_occupancy", func() float64 { return float64(s.length.Load()) })
		reg.GaugeFunc(p+"_capacity", func() float64 { return float64(s.q.Cap()) })
	}
}
