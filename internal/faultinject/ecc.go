// ECC model: a Hamming(72,64) SECDED code and an ECC-protected
// Simple Dual-Port RAM that implements the same port contract as
// hw.SDPRAM while storing code words that a fault plan can corrupt.
//
// The coding choice mirrors deployed SRAM protection: each 64-bit
// payload chunk carries 7 Hamming check bits plus one overall parity
// bit (72 bits stored per chunk). Single-bit errors per chunk are
// corrected, double-bit errors are detected, and a background scrubber
// rewrites corrected words so independent single-bit upsets cannot
// accumulate into an uncorrectable pair. A cheaper parity-only mode
// (65 bits per chunk, detect-only) and an unprotected mode (64 bits,
// silent corruption) are provided for ablation: the chaos-soak harness
// uses them to demonstrate what SECDED buys.
package faultinject

import (
	"fmt"
	"math/bits"

	"repro/internal/hw"
)

// ECCMode selects the protection layered on stored words.
type ECCMode int

const (
	// EccOff stores raw payload bits; faults corrupt silently.
	EccOff ECCMode = iota
	// EccParity stores one parity bit per 64-bit chunk: any odd number
	// of flipped bits in a chunk is detected, nothing is corrected.
	EccParity
	// EccSECDED stores Hamming(72,64): single-bit errors per chunk are
	// corrected, double-bit errors are detected.
	EccSECDED
)

// String names the mode as the bmwsoak flags spell it.
func (m ECCMode) String() string {
	switch m {
	case EccOff:
		return "off"
	case EccParity:
		return "parity"
	case EccSECDED:
		return "secded"
	default:
		return fmt.Sprintf("ECCMode(%d)", int(m))
	}
}

// bitsPerChunk returns the stored width of one 64-bit payload chunk.
func (m ECCMode) bitsPerChunk() int {
	switch m {
	case EccOff:
		return 64
	case EccParity:
		return 65
	case EccSECDED:
		return 72
	default:
		panic(fmt.Sprintf("faultinject: unknown ECC mode %d", int(m)))
	}
}

// Hamming(72,64) layout: code-word positions 1..71 hold the 7 check
// bits (at the power-of-two positions) and the 64 data bits (at the
// rest); the 72nd bit is the overall parity of the other 71. The
// tables below are the position maps, built once at init.
var (
	hammingDataPos [64]int   // data bit i -> code position (1..71)
	hammingPosData [72]int   // code position -> data bit index, -1 if check
	hammingMask    [7]uint64 // check bit k -> mask of data bits it covers
)

func init() {
	for p := range hammingPosData {
		hammingPosData[p] = -1
	}
	i := 0
	for p := 1; p <= 71; p++ {
		if p&(p-1) == 0 { // power of two: check-bit position
			continue
		}
		hammingDataPos[i] = p
		hammingPosData[p] = i
		for k := 0; k < 7; k++ {
			if p&(1<<k) != 0 {
				hammingMask[k] |= 1 << uint(i)
			}
		}
		i++
	}
	if i != 64 {
		panic("faultinject: Hamming position table construction failed")
	}
}

func parity64(x uint64) uint8 { return uint8(bits.OnesCount64(x) & 1) }

// secdedEncode returns the 8 check bits for a 64-bit payload: bits 0..6
// are the Hamming check bits, bit 7 the overall parity over all 72
// stored bits (even total parity).
func secdedEncode(d uint64) uint8 {
	var c uint8
	for k := 0; k < 7; k++ {
		c |= parity64(d&hammingMask[k]) << uint(k)
	}
	c |= (parity64(d) ^ uint8(bits.OnesCount8(c)&1)) << 7
	return c
}

// chunkStatus classifies one chunk's decode.
type chunkStatus int

const (
	chunkClean chunkStatus = iota
	chunkCorrected
	chunkBad
)

// secdedDecode checks and, when possible, corrects one stored chunk.
// It returns the (possibly corrected) payload and the chunk status.
func secdedDecode(d uint64, c uint8) (uint64, chunkStatus) {
	var syndrome int
	for k := 0; k < 7; k++ {
		syndrome |= int(parity64(d&hammingMask[k])^((c>>uint(k))&1)) << uint(k)
	}
	overall := parity64(d) ^ uint8(bits.OnesCount8(c)&1)
	switch {
	case syndrome == 0 && overall == 0:
		return d, chunkClean
	case overall == 1:
		// Odd number of flips: assume one, locatable by the syndrome.
		if syndrome == 0 {
			return d, chunkCorrected // the overall-parity bit itself
		}
		if syndrome&(syndrome-1) == 0 {
			return d, chunkCorrected // a Hamming check bit
		}
		if syndrome <= 71 && hammingPosData[syndrome] >= 0 {
			return d ^ (1 << uint(hammingPosData[syndrome])), chunkCorrected
		}
		return d, chunkBad // syndrome points outside the code word
	default:
		// Even number of flips with a nonzero syndrome: double-bit
		// error, detectable but not correctable.
		return d, chunkBad
	}
}

// WordCodec serialises a RAM word type T into fixed 64-bit payload
// chunks for protection and fault injection. Encode must fill exactly
// Chunks() entries and Decode must be its inverse on clean data.
type WordCodec[T any] interface {
	Chunks() int
	Encode(word T, dst []uint64)
	Decode(src []uint64) T
}

// codeword is the stored form of one RAM word: payload chunks plus one
// check byte per chunk (unused bits per the mode).
type codeword struct {
	data  []uint64
	check []uint8
}

// ECCStats aggregates a protected RAM's detection/correction activity.
type ECCStats struct {
	// CorrectedReads counts functional reads whose data needed (and
	// received) single-bit correction.
	CorrectedReads uint64
	// DetectedReads counts functional reads that hit an uncorrectable
	// error and surfaced a CorruptionError.
	DetectedReads uint64
	// Scrubs counts background scrub passes over single words.
	Scrubs uint64
	// ScrubCorrected counts words rewritten clean by the scrubber.
	ScrubCorrected uint64
	// ScrubDetected counts scrub passes that found an uncorrectable
	// word (left in place for the functional path to trip over).
	ScrubDetected uint64
}

// ECCRAM is a Simple Dual-Port RAM that stores ECC code words. It
// implements hw.RAM[T] with the exact port protocol and write-first
// collision semantics of hw.SDPRAM, plus hw.FaultTarget so a fault
// plan can flip stored bits. Encoding happens on Write, detection and
// correction on the read capture at Tick; an optional scrubber walks
// one word every ScrubEvery ticks through the maintenance path and
// rewrites correctable words.
type ECCRAM[T any] struct {
	name   string
	codec  WordCodec[T]
	mode   ECCMode
	chunks int
	mem    []codeword

	scrubEvery  int
	scrubCursor int
	sinceScrub  int

	readPending  bool
	readAddr     int
	writePending bool
	writeAddr    int
	writeData    T // clean copy for the write-first collision path
	writeCode    codeword

	dataValid bool
	data      T
	readErr   error

	ticks                     uint64
	reads, writes, collisions uint64
	ecc                       ECCStats

	scratch []uint64
}

// NewECCRAM builds a protected RAM of the given depth. scrubEvery
// selects the background scrub cadence (one word per scrubEvery ticks;
// 0 disables scrubbing). The zero value of T must encode to all-zero
// chunks for the initial memory image to be consistent, which holds
// for the plain struct words the simulators store.
func NewECCRAM[T any](name string, words int, codec WordCodec[T], mode ECCMode, scrubEvery int) *ECCRAM[T] {
	if words < 1 {
		panic(fmt.Sprintf("faultinject: invalid ECCRAM depth %d", words))
	}
	chunks := codec.Chunks()
	if chunks < 1 {
		panic("faultinject: codec must produce at least one chunk")
	}
	r := &ECCRAM[T]{
		name:       name,
		codec:      codec,
		mode:       mode,
		chunks:     chunks,
		mem:        make([]codeword, words),
		scrubEvery: scrubEvery,
		scratch:    make([]uint64, chunks),
	}
	var zero T
	for i := range r.mem {
		r.mem[i] = r.encode(zero)
	}
	return r
}

// encode builds a fresh code word for one payload word.
func (r *ECCRAM[T]) encode(w T) codeword {
	cw := codeword{data: make([]uint64, r.chunks), check: make([]uint8, r.chunks)}
	r.codec.Encode(w, cw.data)
	switch r.mode {
	case EccParity:
		for i, d := range cw.data {
			cw.check[i] = parity64(d)
		}
	case EccSECDED:
		for i, d := range cw.data {
			cw.check[i] = secdedEncode(d)
		}
	}
	return cw
}

// decode checks one stored word, correcting what the mode allows.
// When repair is true, corrected chunks are rewritten in place (the
// scrub path). It returns the decoded word, how many chunks needed
// correction, and the indices of uncorrectable chunks.
func (r *ECCRAM[T]) decode(addr int, repair bool) (T, int, []int) {
	cw := r.mem[addr]
	var bad []int
	corrected := 0
	for i := 0; i < r.chunks; i++ {
		d := cw.data[i]
		switch r.mode {
		case EccOff:
			r.scratch[i] = d
		case EccParity:
			if parity64(d) != cw.check[i] {
				bad = append(bad, i)
			}
			r.scratch[i] = d
		case EccSECDED:
			fixed, st := secdedDecode(d, cw.check[i])
			r.scratch[i] = fixed
			switch st {
			case chunkCorrected:
				corrected++
				if repair {
					cw.data[i] = fixed
					cw.check[i] = secdedEncode(fixed)
				}
			case chunkBad:
				bad = append(bad, i)
			}
		}
	}
	return r.codec.Decode(r.scratch), corrected, bad
}

// Words returns the RAM depth.
func (r *ECCRAM[T]) Words() int { return len(r.mem) }

// Mode returns the protection mode.
func (r *ECCRAM[T]) Mode() ECCMode { return r.mode }

// checkAddr mirrors hw.SDPRAM's issue-time bounds check.
func (r *ECCRAM[T]) checkAddr(port string, addr int) {
	if addr < 0 || addr >= len(r.mem) {
		panic(fmt.Sprintf("faultinject: %s address %d out of range [0,%d)", port, addr, len(r.mem)))
	}
}

// Read presents addr on the read port for the current cycle.
func (r *ECCRAM[T]) Read(addr int) {
	r.checkAddr("read", addr)
	if r.readPending {
		panic(fmt.Sprintf("faultinject: second read issued in one cycle (addr %d, pending %d)", addr, r.readAddr))
	}
	r.readPending = true
	r.readAddr = addr
	r.reads++
}

// Write presents addr/data on the write port; the code word is built
// here (encode on write).
func (r *ECCRAM[T]) Write(addr int, data T) {
	r.checkAddr("write", addr)
	if r.writePending {
		panic(fmt.Sprintf("faultinject: second write issued in one cycle (addr %d, pending %d)", addr, r.writeAddr))
	}
	r.writePending = true
	r.writeAddr = addr
	r.writeData = data
	r.writeCode = r.encode(data)
	r.writes++
}

// Tick commits the pending write, captures the pending read (decoding
// and correcting it), and runs one scrub step. Write-first collision
// returns the just-written data, which is clean by construction.
func (r *ECCRAM[T]) Tick() {
	r.ticks++
	r.dataValid = false
	r.readErr = nil
	if r.readPending {
		if r.writePending && r.writeAddr == r.readAddr {
			r.data = r.writeData
			r.collisions++
		} else {
			d, corrected, bad := r.decode(r.readAddr, false)
			r.data = d
			if corrected > 0 {
				r.ecc.CorrectedReads++
			}
			if len(bad) > 0 {
				r.ecc.DetectedReads++
				r.readErr = &hw.CorruptionError{
					Unit:  r.name,
					Word:  r.readAddr,
					Chunk: bad[0],
					Cycle: r.ticks,
					Detail: fmt.Sprintf("uncorrectable %s error (%d bad chunk(s))",
						r.mode, len(bad)),
				}
			}
		}
		r.dataValid = true
	}
	if r.writePending {
		r.mem[r.writeAddr] = r.writeCode
	}
	r.readPending = false
	r.writePending = false
	r.scrubStep()
}

// scrubStep advances the background scrubber: every scrubEvery ticks
// it decodes one word through the maintenance path and rewrites it if
// correction was needed. SECDED only; parity cannot repair.
func (r *ECCRAM[T]) scrubStep() {
	if r.scrubEvery <= 0 || r.mode != EccSECDED {
		return
	}
	r.sinceScrub++
	if r.sinceScrub < r.scrubEvery {
		return
	}
	r.sinceScrub = 0
	addr := r.scrubCursor
	r.scrubCursor = (r.scrubCursor + 1) % len(r.mem)
	r.ecc.Scrubs++
	_, corrected, bad := r.decode(addr, true)
	if corrected > 0 {
		r.ecc.ScrubCorrected++
	}
	if len(bad) > 0 {
		r.ecc.ScrubDetected++
	}
}

// Data returns the word captured by the read issued in the previous
// cycle, after correction. ok is false if no read was issued. A
// detected uncorrectable error is reported by ReadError; the returned
// word is then the best-effort decode.
func (r *ECCRAM[T]) Data() (T, bool) { return r.data, r.dataValid }

// ReadError returns nil if the last captured read decoded cleanly (or
// was corrected), or the *hw.CorruptionError describing an
// uncorrectable error.
func (r *ECCRAM[T]) ReadError() error { return r.readErr }

// Pending reports an uncommitted port request, as in hw.SDPRAM.
func (r *ECCRAM[T]) Pending() bool { return r.readPending || r.writePending }

// Peek decodes the committed word through the maintenance path without
// touching the ports or the counters.
func (r *ECCRAM[T]) Peek(addr int) T {
	cw := r.mem[addr]
	for i := 0; i < r.chunks; i++ {
		d := cw.data[i]
		if r.mode == EccSECDED {
			d, _ = secdedDecode(d, cw.check[i])
		}
		r.scratch[i] = d
	}
	return r.codec.Decode(r.scratch)
}

// Poke rewrites a committed word with a fresh clean code word: the
// maintenance write used by recovery rebuilds.
func (r *ECCRAM[T]) Poke(addr int, data T) { r.mem[addr] = r.encode(data) }

// RawWord returns copies of a committed word's stored bits — payload
// chunks and check bytes — exactly as they sit in the array, with no
// decoding or correction. The snapshot codecs use it so a latent upset
// is persisted as the mismatch it is rather than silently healed by a
// decode/re-encode round trip.
func (r *ECCRAM[T]) RawWord(addr int) (data []uint64, check []uint8) {
	r.checkAddr("rawword", addr)
	cw := r.mem[addr]
	return append([]uint64(nil), cw.data...), append([]uint8(nil), cw.check...)
}

// SetRawWord overwrites a committed word's stored bits verbatim — the
// snapshot-restore counterpart of RawWord. No re-encoding happens, so
// check bits inconsistent with the payload stay inconsistent and remain
// detectable. It panics if the lengths do not match the codec's chunk
// count.
func (r *ECCRAM[T]) SetRawWord(addr int, data []uint64, check []uint8) {
	r.checkAddr("setrawword", addr)
	if len(data) != r.chunks || len(check) != r.chunks {
		panic(fmt.Sprintf("faultinject: SetRawWord got %d data / %d check chunks, want %d",
			len(data), len(check), r.chunks))
	}
	r.mem[addr] = codeword{
		data:  append([]uint64(nil), data...),
		check: append([]uint8(nil), check...),
	}
}

// Audit decodes a committed word and reports which chunks are
// uncorrectably corrupt, for the drain-and-rebuild recovery path.
func (r *ECCRAM[T]) Audit(addr int) (T, []int) {
	w, _, bad := r.decode(addr, false)
	return w, bad
}

// Stats reports port activity, mirroring hw.SDPRAM.
func (r *ECCRAM[T]) Stats() (reads, writes, collisions uint64) {
	return r.reads, r.writes, r.collisions
}

// ECCStats reports the protection activity since construction.
func (r *ECCRAM[T]) ECCStats() ECCStats { return r.ecc }

// --- hw.FaultTarget ---

// TargetName identifies this RAM in fault plans.
func (r *ECCRAM[T]) TargetName() string { return r.name }

// WordBits is the stored width of one word: payload plus check bits.
func (r *ECCRAM[T]) WordBits() int { return r.chunks * r.mode.bitsPerChunk() }

// locateBit maps a word-relative bit index onto (chunk, offset).
func (r *ECCRAM[T]) locateBit(bit int) (chunk, off int) {
	per := r.mode.bitsPerChunk()
	if bit < 0 || bit >= r.chunks*per {
		panic(fmt.Sprintf("faultinject: bit %d out of range [0,%d)", bit, r.chunks*per))
	}
	return bit / per, bit % per
}

// PeekBit reports a stored bit (payload or check).
func (r *ECCRAM[T]) PeekBit(word, bit int) bool {
	r.checkAddr("peekbit", word)
	chunk, off := r.locateBit(bit)
	if off < 64 {
		return r.mem[word].data[chunk]&(1<<uint(off)) != 0
	}
	return r.mem[word].check[chunk]&(1<<uint(off-64)) != 0
}

// FlipBit inverts a stored bit in place — the injection primitive.
func (r *ECCRAM[T]) FlipBit(word, bit int) {
	r.checkAddr("flipbit", word)
	chunk, off := r.locateBit(bit)
	if off < 64 {
		r.mem[word].data[chunk] ^= 1 << uint(off)
	} else {
		r.mem[word].check[chunk] ^= 1 << uint(off-64)
	}
}

// Interface conformance.
var (
	_ hw.RAM[uint64] = (*ECCRAM[uint64])(nil)
	_ hw.FaultTarget = (*ECCRAM[uint64])(nil)
)

// U64Codec is the trivial codec for RAMs whose word is a single
// uint64 (tests and simple stores).
type U64Codec struct{}

// Chunks returns 1.
func (U64Codec) Chunks() int { return 1 }

// Encode stores the word in the single chunk.
func (U64Codec) Encode(w uint64, dst []uint64) { dst[0] = w }

// Decode restores the word.
func (U64Codec) Decode(src []uint64) uint64 { return src[0] }
