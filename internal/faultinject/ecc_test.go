package faultinject

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/hw"
)

// TestSECDEDCleanRoundTrip checks encode/decode is the identity on
// clean words.
func TestSECDEDCleanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		d := rng.Uint64()
		c := secdedEncode(d)
		got, st := secdedDecode(d, c)
		if st != chunkClean || got != d {
			t.Fatalf("clean word %#x decoded to %#x status %d", d, got, st)
		}
	}
}

// TestSECDEDCorrectsEverySingleBit flips each of the 72 stored bits in
// turn and requires exact correction of the payload.
func TestSECDEDCorrectsEverySingleBit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		d := rng.Uint64()
		c := secdedEncode(d)
		for bit := 0; bit < 72; bit++ {
			fd, fc := d, c
			if bit < 64 {
				fd ^= 1 << uint(bit)
			} else {
				fc ^= 1 << uint(bit-64)
			}
			got, st := secdedDecode(fd, fc)
			if st != chunkCorrected {
				t.Fatalf("single-bit flip at %d not corrected (status %d)", bit, st)
			}
			if got != d {
				t.Fatalf("single-bit flip at %d: decoded %#x want %#x", bit, got, d)
			}
		}
	}
}

// TestSECDEDDetectsEveryDoubleBit flips every pair of stored bits and
// requires the error to be flagged (never silently accepted, never
// "corrected" into some third word without detection).
func TestSECDEDDetectsEveryDoubleBit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		d := rng.Uint64()
		c := secdedEncode(d)
		for a := 0; a < 72; a++ {
			for b := a + 1; b < 72; b++ {
				fd, fc := d, c
				for _, bit := range []int{a, b} {
					if bit < 64 {
						fd ^= 1 << uint(bit)
					} else {
						fc ^= 1 << uint(bit-64)
					}
				}
				if _, st := secdedDecode(fd, fc); st != chunkBad {
					t.Fatalf("double-bit flip (%d,%d) not detected (status %d)", a, b, st)
				}
			}
		}
	}
}

// TestECCRAMPortContract replays the hw.SDPRAM contract tests against
// the protected RAM: one-cycle read latency, write-first collisions,
// issue-time bounds checks.
func TestECCRAMPortContract(t *testing.T) {
	r := NewECCRAM[uint64]("ram", 8, U64Codec{}, EccSECDED, 1)
	r.Write(3, 77)
	r.Tick()
	r.Read(3)
	r.Tick()
	if d, ok := r.Data(); !ok || d != 77 {
		t.Fatalf("read = %d,%v want 77,true", d, ok)
	}
	if err := r.ReadError(); err != nil {
		t.Fatalf("clean read error: %v", err)
	}
	// Write-first collision.
	r.Write(3, 99)
	r.Read(3)
	r.Tick()
	if d, _ := r.Data(); d != 99 {
		t.Fatalf("collision read = %d want 99 (write-first)", d)
	}
	if _, _, coll := r.Stats(); coll != 1 {
		t.Fatalf("collisions = %d want 1", coll)
	}
	// Issue-time bounds.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range read did not panic")
			}
		}()
		r.Read(8)
	}()
}

// TestECCRAMCorrectsInjectedSingleBit flips one stored payload bit and
// one check bit and expects transparent correction on read.
func TestECCRAMCorrectsInjectedSingleBit(t *testing.T) {
	r := NewECCRAM[uint64]("ram", 4, U64Codec{}, EccSECDED, 0)
	r.Write(2, 0xDEADBEEF)
	r.Tick()
	r.FlipBit(2, 17) // payload bit
	r.Read(2)
	r.Tick()
	if d, _ := r.Data(); d != 0xDEADBEEF {
		t.Fatalf("corrupted read = %#x want corrected 0xDEADBEEF", d)
	}
	if err := r.ReadError(); err != nil {
		t.Fatalf("single-bit error not transparent: %v", err)
	}
	if s := r.ECCStats(); s.CorrectedReads != 1 {
		t.Fatalf("CorrectedReads = %d want 1", s.CorrectedReads)
	}
	r.FlipBit(2, 64+3) // check bit (payload bit still flipped in mem: read did not repair)
	r.Read(2)
	r.Tick()
	if err := r.ReadError(); err == nil {
		t.Fatal("double-bit (payload+check) error not detected")
	} else if !errors.Is(err, hw.ErrCorrupt) {
		t.Fatalf("detection error %v does not wrap ErrCorrupt", err)
	}
}

// TestECCRAMScrubRepairs injects a single-bit fault and lets the
// scrubber repair the stored word, so a later second fault in the same
// word is still correctable.
func TestECCRAMScrubRepairs(t *testing.T) {
	r := NewECCRAM[uint64]("ram", 2, U64Codec{}, EccSECDED, 1)
	r.Write(0, 42)
	r.Tick()
	r.FlipBit(0, 5)
	// Scrubber visits one word per tick; two idle ticks cover both.
	r.Tick()
	r.Tick()
	if s := r.ECCStats(); s.ScrubCorrected != 1 {
		t.Fatalf("ScrubCorrected = %d want 1", s.ScrubCorrected)
	}
	// The stored word is clean again: a second single-bit fault remains
	// correctable rather than accumulating into a double-bit error.
	r.FlipBit(0, 9)
	r.Read(0)
	r.Tick()
	if d, _ := r.Data(); d != 42 {
		t.Fatalf("post-scrub read = %d want 42", d)
	}
	if err := r.ReadError(); err != nil {
		t.Fatalf("post-scrub single-bit fault not corrected: %v", err)
	}
}

// TestECCRAMParityDetectsOnly checks the parity mode detects an odd
// number of flips but corrects nothing.
func TestECCRAMParityDetectsOnly(t *testing.T) {
	r := NewECCRAM[uint64]("ram", 2, U64Codec{}, EccParity, 0)
	r.Write(1, 1000)
	r.Tick()
	r.FlipBit(1, 3)
	r.Read(1)
	r.Tick()
	if err := r.ReadError(); err == nil {
		t.Fatal("parity mode missed a single-bit fault")
	}
	if d, _ := r.Data(); d == 1000 {
		t.Fatal("parity mode claims to have corrected data")
	}
}

// TestECCRAMOffIsSilent checks the unprotected mode returns corrupted
// data with no error — the ablation the soak harness demonstrates.
func TestECCRAMOffIsSilent(t *testing.T) {
	r := NewECCRAM[uint64]("ram", 2, U64Codec{}, EccOff, 0)
	r.Write(0, 8)
	r.Tick()
	r.FlipBit(0, 0)
	r.Read(0)
	r.Tick()
	if d, _ := r.Data(); d != 9 {
		t.Fatalf("unprotected read = %d want corrupted 9", d)
	}
	if err := r.ReadError(); err != nil {
		t.Fatalf("unprotected mode reported: %v", err)
	}
}

// TestECCRAMAuditAndPoke exercises the recovery maintenance paths:
// Audit reports uncorrectable chunks, Poke rewrites them clean.
func TestECCRAMAuditAndPoke(t *testing.T) {
	r := NewECCRAM[uint64]("ram", 2, U64Codec{}, EccSECDED, 0)
	r.Poke(0, 123)
	if w, bad := r.Audit(0); w != 123 || len(bad) != 0 {
		t.Fatalf("clean audit = %d, %v", w, bad)
	}
	r.FlipBit(0, 1)
	r.FlipBit(0, 2)
	if _, bad := r.Audit(0); len(bad) != 1 || bad[0] != 0 {
		t.Fatalf("double-bit audit bad = %v want [0]", bad)
	}
	r.Poke(0, 123)
	if w, bad := r.Audit(0); w != 123 || len(bad) != 0 {
		t.Fatalf("audit after Poke = %d, %v", w, bad)
	}
}

// TestECCRAMWordBits checks the injectable widths per mode.
func TestECCRAMWordBits(t *testing.T) {
	for _, tc := range []struct {
		mode ECCMode
		want int
	}{{EccOff, 64}, {EccParity, 65}, {EccSECDED, 72}} {
		r := NewECCRAM[uint64]("ram", 1, U64Codec{}, tc.mode, 0)
		if r.WordBits() != tc.want {
			t.Fatalf("%v WordBits = %d want %d", tc.mode, r.WordBits(), tc.want)
		}
	}
}

// TestECCRAMPeekBitFlipBitInverse checks the fault-target primitives
// agree with each other across payload and check regions.
func TestECCRAMPeekBitFlipBitInverse(t *testing.T) {
	r := NewECCRAM[uint64]("ram", 3, U64Codec{}, EccSECDED, 0)
	r.Poke(1, 0x5A5A)
	for bit := 0; bit < r.WordBits(); bit++ {
		before := r.PeekBit(1, bit)
		r.FlipBit(1, bit)
		if r.PeekBit(1, bit) == before {
			t.Fatalf("FlipBit(%d) did not change PeekBit", bit)
		}
		r.FlipBit(1, bit)
		if r.PeekBit(1, bit) != before {
			t.Fatalf("double FlipBit(%d) not identity", bit)
		}
	}
}
