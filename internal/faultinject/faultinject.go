// Package faultinject provides the fault-injection and memory-
// protection subsystem for the cycle-accurate hardware simulations:
// seeded deterministic fault plans (single-event-upset bit flips and
// stuck-at faults, rate- or schedule-driven) that corrupt any
// hw.FaultTarget, and an ECC layer (SECDED or parity) over the SRAM
// and register storage those faults attack.
//
// The design follows the memory-integrity practice of the pipelined
// hardware priority-queue literature: storage is the vulnerable
// surface, so every storable bit is addressable by the injector, and
// every protection mechanism (Hamming SECDED on SRAM words, parity on
// register files, the online tree invariant checker) is accounted for
// by counters that a soak harness can reconcile — injected faults must
// end up corrected, detected, or (for an unprotected ablation)
// demonstrably escaped.
//
// Determinism is load-bearing: a Plan is seeded, consumes its RNG in a
// fixed order, and logs every injection, so any divergence found by
// the chaos-soak harness is reproducible from the command line that
// produced it.
package faultinject

import (
	"fmt"
	"math/rand"

	"repro/internal/hw"
)

// Config parameterises a fault plan.
type Config struct {
	// Seed drives every random choice the plan makes.
	Seed int64
	// Rate is the per-cycle probability of one rate-driven random
	// single-bit flip across all registered targets (0 disables).
	Rate float64
	// MaxRandom caps the number of rate-driven flips (0 = unlimited).
	// Scheduled flips and stuck-at faults are not counted against it.
	MaxRandom int
	// Start and Stop bound the active window in cycles for rate-driven
	// injection and stuck-at enforcement (Stop 0 = no upper bound).
	Start, Stop uint64
}

// Injection records one storage corruption the plan performed.
type Injection struct {
	Cycle  uint64
	Target string
	Word   int
	Bit    int
	Kind   string // "rate", "scheduled", "stuck"
}

// String formats the injection for divergence traces.
func (i Injection) String() string {
	return fmt.Sprintf("cycle %d: %s fault in %s word %d bit %d", i.Cycle, i.Kind, i.Target, i.Word, i.Bit)
}

// scheduled is one planned flip: either an explicit location or a
// random draw performed when the cycle arrives.
type scheduled struct {
	target    string // empty for random draws
	word, bit int
	random    bool
}

// stuckFault pins one bit to a value from a given cycle on.
type stuckFault struct {
	target    string
	word, bit int
	value     bool
	from      uint64
}

// maxTraceLen bounds the retained injection log; the counters keep
// exact totals beyond it.
const maxTraceLen = 4096

// Plan is a seeded, deterministic fault plan. Register storage targets,
// optionally add scheduled or stuck-at faults, then call Step once per
// simulated cycle (the simulators do this automatically when a plan is
// attached). All mutation happens between clock edges: Step runs after
// a cycle's Tick, so a fault becomes visible to reads of the following
// cycles — the semantics of an upset landing in an idle array.
type Plan struct {
	cfg Config
	rng *rand.Rand

	targets []hw.FaultTarget
	byName  map[string]hw.FaultTarget

	schedule map[uint64][]scheduled
	stucks   []stuckFault

	injected     uint64
	rateInjected uint64
	stuckApplied uint64
	trace        []Injection
}

// NewPlan builds a fault plan from the configuration.
func NewPlan(cfg Config) *Plan {
	if cfg.Rate < 0 || cfg.Rate > 1 {
		panic(fmt.Sprintf("faultinject: rate %v outside [0,1]", cfg.Rate))
	}
	return &Plan{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		byName:   make(map[string]hw.FaultTarget),
		schedule: make(map[uint64][]scheduled),
	}
}

// Register adds a storage target to the plan. Registration order
// matters for determinism: random draws weight targets by bit count in
// the order they were registered.
func (p *Plan) Register(t hw.FaultTarget) {
	name := t.TargetName()
	if _, dup := p.byName[name]; dup {
		panic(fmt.Sprintf("faultinject: duplicate target %q", name))
	}
	p.targets = append(p.targets, t)
	p.byName[name] = t
}

// Targets lists the registered target names in registration order.
func (p *Plan) Targets() []string {
	out := make([]string, len(p.targets))
	for i, t := range p.targets {
		out[i] = t.TargetName()
	}
	return out
}

// ScheduleFlip plans a single-bit flip of an explicit location at the
// given cycle.
func (p *Plan) ScheduleFlip(cycle uint64, target string, word, bit int) {
	p.schedule[cycle] = append(p.schedule[cycle], scheduled{target: target, word: word, bit: bit})
}

// ScheduleRandomFlip plans one uniformly random single-bit flip at the
// given cycle; the location is drawn when the cycle arrives, so the
// whole fault set is reproducible from the seed.
func (p *Plan) ScheduleRandomFlip(cycle uint64) {
	p.schedule[cycle] = append(p.schedule[cycle], scheduled{random: true})
}

// AddStuck pins target's bit to value from cycle `from` on: every Step
// re-forces the bit, modelling a hard (stuck-at) fault rather than a
// transient upset.
func (p *Plan) AddStuck(target string, word, bit int, value bool, from uint64) {
	p.stucks = append(p.stucks, stuckFault{target: target, word: word, bit: bit, value: value, from: from})
}

// AddRandomStuck pins n uniformly random bits (drawn immediately from
// the plan's RNG over the currently registered targets) from cycle
// `from` on.
func (p *Plan) AddRandomStuck(n int, from uint64) {
	for i := 0; i < n; i++ {
		t, word, bit, ok := p.drawLocation()
		if !ok {
			panic("faultinject: AddRandomStuck with no registered targets")
		}
		p.AddStuck(t.TargetName(), word, bit, p.rng.Intn(2) == 1, from)
	}
}

// drawLocation picks a uniformly random stored bit across all
// registered targets, weighted by their bit counts.
func (p *Plan) drawLocation() (hw.FaultTarget, int, int, bool) {
	var total int64
	for _, t := range p.targets {
		total += int64(t.Words()) * int64(t.WordBits())
	}
	if total == 0 {
		return nil, 0, 0, false
	}
	idx := p.rng.Int63n(total)
	for _, t := range p.targets {
		n := int64(t.Words()) * int64(t.WordBits())
		if idx < n {
			return t, int(idx / int64(t.WordBits())), int(idx % int64(t.WordBits())), true
		}
		idx -= n
	}
	panic("faultinject: bit index out of range")
}

// active reports whether the window admits rate/stuck activity.
func (p *Plan) active(cycle uint64) bool {
	if cycle < p.cfg.Start {
		return false
	}
	return p.cfg.Stop == 0 || cycle <= p.cfg.Stop
}

// record logs one performed injection.
func (p *Plan) record(cycle uint64, t hw.FaultTarget, word, bit int, kind string) {
	p.injected++
	if kind == "rate" {
		p.rateInjected++
	}
	if len(p.trace) < maxTraceLen {
		p.trace = append(p.trace, Injection{Cycle: cycle, Target: t.TargetName(), Word: word, Bit: bit, Kind: kind})
	}
}

// Step performs the cycle's injections: scheduled flips for this
// cycle, at most one rate-driven flip, and stuck-at enforcement. Call
// once per simulated cycle, after the clock edge.
func (p *Plan) Step(cycle uint64) {
	for _, s := range p.schedule[cycle] {
		if s.random {
			t, word, bit, ok := p.drawLocation()
			if !ok {
				continue
			}
			t.FlipBit(word, bit)
			p.record(cycle, t, word, bit, "scheduled")
			continue
		}
		t, ok := p.byName[s.target]
		if !ok {
			panic(fmt.Sprintf("faultinject: scheduled fault for unregistered target %q", s.target))
		}
		t.FlipBit(s.word, s.bit)
		p.record(cycle, t, s.word, s.bit, "scheduled")
	}
	delete(p.schedule, cycle)

	if p.cfg.Rate > 0 && p.active(cycle) {
		// One RNG draw per cycle regardless of budget keeps the stream
		// deterministic under different MaxRandom settings.
		hit := p.rng.Float64() < p.cfg.Rate
		if hit && (p.cfg.MaxRandom == 0 || p.rateInjected < uint64(p.cfg.MaxRandom)) {
			if t, word, bit, ok := p.drawLocation(); ok {
				t.FlipBit(word, bit)
				p.record(cycle, t, word, bit, "rate")
			}
		}
	}

	for _, s := range p.stucks {
		if cycle < s.from || !p.active(cycle) {
			continue
		}
		t, ok := p.byName[s.target]
		if !ok {
			panic(fmt.Sprintf("faultinject: stuck fault for unregistered target %q", s.target))
		}
		if t.PeekBit(s.word, s.bit) != s.value {
			t.FlipBit(s.word, s.bit)
			p.stuckApplied++
			p.record(cycle, t, s.word, s.bit, "stuck")
		}
	}
}

// Injected returns the total number of bit corruptions performed
// (transient flips plus stuck-at re-assertions).
func (p *Plan) Injected() uint64 { return p.injected }

// RateInjected returns the rate-driven subset of Injected.
func (p *Plan) RateInjected() uint64 { return p.rateInjected }

// StuckApplied returns how many times a stuck-at fault actually
// changed a bit.
func (p *Plan) StuckApplied() uint64 { return p.stuckApplied }

// PendingScheduled returns how many scheduled flips have not fired yet.
func (p *Plan) PendingScheduled() int {
	n := 0
	for _, s := range p.schedule {
		n += len(s)
	}
	return n
}

// Trace returns the retained injection log (up to the first 4096
// injections), for divergence reports.
func (p *Plan) Trace() []Injection { return p.trace }
