package faultinject

import (
	"reflect"
	"testing"
)

// TestPlanScheduledFlip fires an explicit scheduled fault at its cycle
// and only then.
func TestPlanScheduledFlip(t *testing.T) {
	r := NewECCRAM[uint64]("ram", 4, U64Codec{}, EccOff, 0)
	p := NewPlan(Config{Seed: 1})
	p.Register(r)
	p.ScheduleFlip(5, "ram", 2, 7)
	for c := uint64(0); c < 5; c++ {
		p.Step(c)
	}
	if p.Injected() != 0 {
		t.Fatalf("injected %d before the scheduled cycle", p.Injected())
	}
	p.Step(5)
	if p.Injected() != 1 {
		t.Fatalf("injected = %d want 1", p.Injected())
	}
	if !r.PeekBit(2, 7) {
		t.Fatal("scheduled bit not flipped")
	}
	tr := p.Trace()
	if len(tr) != 1 || tr[0].Cycle != 5 || tr[0].Target != "ram" || tr[0].Word != 2 || tr[0].Bit != 7 {
		t.Fatalf("trace = %+v", tr)
	}
}

// TestPlanDeterminism runs two identically seeded plans over identical
// targets and requires identical injection traces.
func TestPlanDeterminism(t *testing.T) {
	run := func() []Injection {
		r := NewECCRAM[uint64]("ram", 64, U64Codec{}, EccOff, 0)
		p := NewPlan(Config{Seed: 42, Rate: 0.3})
		p.Register(r)
		for i := 0; i < 50; i++ {
			p.ScheduleRandomFlip(uint64(i * 3))
		}
		for c := uint64(0); c < 200; c++ {
			p.Step(c)
		}
		return p.Trace()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no injections recorded")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identically seeded plans diverged")
	}
}

// TestPlanScheduledRandomExactCount checks that N scheduled random
// flips inside the run window inject exactly N faults — the seed
// hygiene the soak harness depends on.
func TestPlanScheduledRandomExactCount(t *testing.T) {
	r := NewECCRAM[uint64]("ram", 16, U64Codec{}, EccSECDED, 0)
	p := NewPlan(Config{Seed: 7})
	p.Register(r)
	const n = 100
	for i := 0; i < n; i++ {
		p.ScheduleRandomFlip(uint64(i % 37))
	}
	for c := uint64(0); c < 37; c++ {
		p.Step(c)
	}
	if p.Injected() != n {
		t.Fatalf("injected = %d want %d", p.Injected(), n)
	}
	if p.PendingScheduled() != 0 {
		t.Fatalf("pending = %d want 0", p.PendingScheduled())
	}
}

// TestPlanRateWindowAndBudget checks the Start/Stop window and the
// MaxRandom budget bound rate-driven injection.
func TestPlanRateWindowAndBudget(t *testing.T) {
	r := NewECCRAM[uint64]("ram", 8, U64Codec{}, EccOff, 0)
	p := NewPlan(Config{Seed: 3, Rate: 1.0, MaxRandom: 5, Start: 10, Stop: 100})
	p.Register(r)
	for c := uint64(0); c < 10; c++ {
		p.Step(c)
	}
	if p.RateInjected() != 0 {
		t.Fatalf("injected %d before Start", p.RateInjected())
	}
	for c := uint64(10); c < 200; c++ {
		p.Step(c)
	}
	if p.RateInjected() != 5 {
		t.Fatalf("rate-injected = %d want budget 5", p.RateInjected())
	}
}

// TestPlanStuckAt checks a stuck-at fault is re-asserted after the
// stored word is rewritten clean.
func TestPlanStuckAt(t *testing.T) {
	r := NewECCRAM[uint64]("ram", 2, U64Codec{}, EccOff, 0)
	p := NewPlan(Config{Seed: 1})
	p.Register(r)
	p.AddStuck("ram", 0, 4, true, 0)
	p.Step(0)
	if !r.PeekBit(0, 4) {
		t.Fatal("stuck-at-1 not applied")
	}
	// A functional write overwrites the bit; the next Step re-pins it.
	r.Write(0, 0)
	r.Tick()
	if r.PeekBit(0, 4) {
		t.Fatal("write did not clear the bit")
	}
	p.Step(1)
	if !r.PeekBit(0, 4) {
		t.Fatal("stuck-at-1 not re-asserted after rewrite")
	}
	if p.StuckApplied() != 2 {
		t.Fatalf("StuckApplied = %d want 2", p.StuckApplied())
	}
}

// TestPlanMultiTargetDraws registers two targets of very different
// sizes and checks random draws eventually land in both.
func TestPlanMultiTargetDraws(t *testing.T) {
	big := NewECCRAM[uint64]("big", 64, U64Codec{}, EccOff, 0)
	small := NewECCRAM[uint64]("small", 1, U64Codec{}, EccOff, 0)
	p := NewPlan(Config{Seed: 9, Rate: 1.0})
	p.Register(big)
	p.Register(small)
	for c := uint64(0); c < 2000; c++ {
		p.Step(c)
	}
	seen := map[string]bool{}
	for _, inj := range p.Trace() {
		seen[inj.Target] = true
	}
	if !seen["big"] || !seen["small"] {
		t.Fatalf("draws did not cover both targets: %v", seen)
	}
}
