// Package eventq provides the discrete-event engine for the packet-
// level simulator that substitutes for NS-3 in the paper's Section 6.4
// experiment. Time is in integer nanoseconds; events at the same
// timestamp run in scheduling order (FIFO tie-break), which keeps
// simulations deterministic.
package eventq

import "container/heap"

// event is one scheduled callback.
type event struct {
	at  uint64
	seq uint64
	fn  func()
}

type evHeap []event

func (h evHeap) Len() int { return len(h) }
func (h evHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h evHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *evHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *evHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Queue is a discrete-event queue with a simulated clock.
type Queue struct {
	h    evHeap
	now  uint64
	seq  uint64
	runs uint64
}

// New returns an empty queue at time zero.
func New() *Queue { return &Queue{} }

// Now returns the current simulated time in nanoseconds.
func (q *Queue) Now() uint64 { return q.now }

// Pending returns the number of scheduled events.
func (q *Queue) Pending() int { return len(q.h) }

// Processed returns the number of events executed so far.
func (q *Queue) Processed() uint64 { return q.runs }

// At schedules fn at absolute time t. Scheduling in the past panics: it
// would silently corrupt causality.
func (q *Queue) At(t uint64, fn func()) {
	if t < q.now {
		panic("eventq: event scheduled in the past")
	}
	q.seq++
	heap.Push(&q.h, event{at: t, seq: q.seq, fn: fn})
}

// After schedules fn d nanoseconds from now.
func (q *Queue) After(d uint64, fn func()) { q.At(q.now+d, fn) }

// Step runs the next event; it reports false when the queue is empty.
func (q *Queue) Step() bool {
	if len(q.h) == 0 {
		return false
	}
	e := heap.Pop(&q.h).(event)
	q.now = e.at
	q.runs++
	e.fn()
	return true
}

// RunUntil executes events up to and including time t, then advances
// the clock to t.
func (q *Queue) RunUntil(t uint64) {
	for len(q.h) > 0 && q.h[0].at <= t {
		q.Step()
	}
	if t > q.now {
		q.now = t
	}
}

// Run executes events until none remain or the event budget is
// exhausted (a guard against runaway simulations; 0 = unlimited).
func (q *Queue) Run(budget uint64) {
	for q.Step() {
		if budget > 0 && q.runs >= budget {
			return
		}
	}
}
