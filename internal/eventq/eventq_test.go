package eventq

import (
	"math/rand"
	"testing"
)

func TestOrdering(t *testing.T) {
	q := New()
	var got []int
	q.At(30, func() { got = append(got, 3) })
	q.At(10, func() { got = append(got, 1) })
	q.At(20, func() { got = append(got, 2) })
	q.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if q.Now() != 30 {
		t.Fatalf("Now = %d", q.Now())
	}
	if q.Processed() != 3 {
		t.Fatalf("Processed = %d", q.Processed())
	}
}

// TestFIFOAtSameTime: events at the same timestamp run in scheduling
// order, keeping simulations deterministic.
func TestFIFOAtSameTime(t *testing.T) {
	q := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(5, func() { got = append(got, i) })
	}
	q.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time order broken: %v", got)
		}
	}
}

func TestAfterAndNesting(t *testing.T) {
	q := New()
	var fired []uint64
	q.At(100, func() {
		q.After(50, func() { fired = append(fired, q.Now()) })
	})
	q.Run(0)
	if len(fired) != 1 || fired[0] != 150 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestPastPanics(t *testing.T) {
	q := New()
	q.At(100, func() {})
	q.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	q.At(50, func() {})
}

func TestRunUntil(t *testing.T) {
	q := New()
	count := 0
	for _, tm := range []uint64{10, 20, 30, 40} {
		q.At(tm, func() { count++ })
	}
	q.RunUntil(25)
	if count != 2 || q.Now() != 25 {
		t.Fatalf("count=%d now=%d", count, q.Now())
	}
	if q.Pending() != 2 {
		t.Fatalf("pending = %d", q.Pending())
	}
	q.RunUntil(100)
	if count != 4 || q.Now() != 100 {
		t.Fatalf("count=%d now=%d", count, q.Now())
	}
}

func TestBudget(t *testing.T) {
	q := New()
	var rec func()
	n := 0
	rec = func() {
		n++
		q.After(1, rec)
	}
	q.At(0, rec)
	q.Run(100)
	if n != 100 {
		t.Fatalf("budget run executed %d events", n)
	}
}

func TestStepEmpty(t *testing.T) {
	q := New()
	if q.Step() {
		t.Fatal("Step on empty returned true")
	}
}

func TestRandomTimesMonotone(t *testing.T) {
	q := New()
	rng := rand.New(rand.NewSource(5))
	var last uint64
	ok := true
	for i := 0; i < 1000; i++ {
		at := uint64(rng.Intn(10000))
		q.At(at, func() {
			if q.Now() < last {
				ok = false
			}
			last = q.Now()
		})
	}
	q.Run(0)
	if !ok {
		t.Fatal("clock went backwards")
	}
}
