package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler serves the registry over HTTP for long-running commands:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  Snapshot as JSON
//	/debug/vars    expvar (Go runtime memstats etc.)
//	/debug/pprof/  CPU/heap/goroutine profiles
//
// Only owned instruments (atomics) should live in a registry served
// live — callback instruments would be sampled concurrently with the
// producer. Long-running commands sample mutable sim state into
// gauges from their own loop instead.
func Handler(r *Registry) http.Handler {
	return HandlerHealth(r, nil, nil)
}

// HandlerHealth is Handler plus the probe endpoints:
//
//	/healthz  liveness — 200 once the process serves HTTP at all
//	/readyz   readiness — 200 only when ready() returns true
//
// healthy/ready may be nil: a nil healthy means always live; a nil
// ready falls back to healthy (a plain daemon is ready when live).
// bmwd wires ready to its restore/replication-catchup state, so a
// follower mid-catchup, or a primary still restoring a checkpoint,
// reports 503 and stays out of load-balancer rotation without being
// restarted.
func HandlerHealth(r *Registry, healthy, ready func() bool) http.Handler {
	return HandlerOpts(r, HandlerOptions{Healthy: healthy, Ready: ready})
}

// HandlerOptions parameterise HandlerOpts beyond the bare probes.
type HandlerOptions struct {
	// Healthy gates /healthz; nil means always live.
	Healthy func() bool
	// Ready gates /readyz; nil falls back to Healthy.
	Ready func() bool
	// Detail, when set, is sampled per probe request and merged into
	// the probe's JSON body (role, replication lag, overload state…) so
	// operators and dashboards can tell *why* a node is unready.
	Detail func() map[string]any
	// Trace, when set, serves the recorder's accumulated Chrome trace
	// at /trace.json.
	Trace *TraceRecorder
	// SLO, when set, serves the objective states at /slo.json.
	SLO *SLOEngine
	// Flight, when set, serves a live dump of the black-box ring at
	// /flight.json.
	Flight *FlightRecorder
}

// HandlerOpts is HandlerHealth with probe detail and trace export. The
// probes answer with a JSON body — {"ok":bool, ...detail} — under the
// same 200/503 status contract, so existing status-code checks keep
// working while curl and bmwtop get the reason.
func HandlerOpts(r *Registry, opts HandlerOptions) http.Handler {
	mux := http.NewServeMux()
	probe := func(check func() bool) http.HandlerFunc {
		return func(w http.ResponseWriter, _ *http.Request) {
			ok := check == nil || check()
			body := map[string]any{"ok": ok}
			if opts.Detail != nil {
				for k, v := range opts.Detail() {
					body[k] = v
				}
			}
			w.Header().Set("Content-Type", "application/json")
			if !ok {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			_ = json.NewEncoder(w).Encode(body)
		}
	}
	ready := opts.Ready
	if ready == nil {
		ready = opts.Healthy
	}
	mux.HandleFunc("/healthz", probe(opts.Healthy))
	mux.HandleFunc("/readyz", probe(ready))
	if opts.Trace != nil {
		mux.HandleFunc("/trace.json", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_, _ = opts.Trace.WriteTo(w)
		})
	}
	if opts.SLO != nil {
		mux.HandleFunc("/slo.json", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(opts.SLO.Status())
		})
	}
	if opts.Flight != nil {
		mux.HandleFunc("/flight.json", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = opts.Flight.Dump().WriteJSON(w)
		})
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(r.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// NewServer builds the metrics server for addr without starting it,
// so callers own its lifecycle — in particular http.Server.Shutdown
// for a graceful drain on SIGINT/SIGTERM.
//
// The server carries header/read/idle timeouts so a stalled or
// malicious scraper cannot pin a connection (and its goroutine)
// forever: metrics responses are small, so seconds-scale budgets are
// generous. WriteTimeout stays 0 because /debug/pprof/profile and
// /debug/pprof/trace legitimately stream for their full -seconds
// argument.
func NewServer(addr string, r *Registry) *http.Server {
	return NewServerHealth(addr, r, nil, nil)
}

// NewServerHealth is NewServer with liveness/readiness probes (see
// HandlerHealth).
func NewServerHealth(addr string, r *Registry, healthy, ready func() bool) *http.Server {
	return NewServerOpts(addr, r, HandlerOptions{Healthy: healthy, Ready: ready})
}

// NewServerOpts is NewServer with full handler options (probe detail,
// trace export).
func NewServerOpts(addr string, r *Registry, opts HandlerOptions) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           HandlerOpts(r, opts),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

// Serve starts an HTTP server for the registry on addr in a new
// goroutine and returns immediately. Errors (e.g. port in use) are
// delivered on the returned channel. Commands that need a graceful
// shutdown use NewServer instead.
func Serve(addr string, r *Registry) <-chan error {
	errc := make(chan error, 1)
	srv := NewServer(addr, r)
	go func() { errc <- srv.ListenAndServe() }()
	return errc
}
