// Structured event logging for the long-running daemons: log/slog JSON
// lines with rate-limited repeat suppression, so a flapping condition
// (a follower redialing a dead primary at 50ms backoff, a client
// hammering an overloaded shard) produces one line plus a periodic
// "suppressed N repeats" summary instead of megabytes of identical
// output.
package obs

import (
	"context"
	"io"
	"log/slog"
	"sync"
	"time"
)

// suppressState tracks one (level, message) key's repeat window.
type suppressState struct {
	windowStart time.Time
	suppressed  int
	lastSeen    time.Time
}

// DedupHandler wraps a slog.Handler with repeat suppression: a record
// whose (level, message) pair was already emitted within Window is
// counted and dropped; the next record past the window is emitted with
// a "suppressed" attribute carrying the dropped count. Records at or
// above BypassLevel always pass through.
type DedupHandler struct {
	inner  slog.Handler
	window time.Duration
	bypass slog.Level
	now    func() time.Time

	mu   sync.Mutex
	seen map[string]*suppressState
}

// maxDedupKeys bounds the suppression table; past it the stalest keys
// are evicted so an unbounded message vocabulary cannot leak memory.
const maxDedupKeys = 1024

// NewDedupHandler wraps inner with repeat suppression over window
// (default 5s). Records at or above bypass always pass (use
// slog.LevelError to keep every error line).
func NewDedupHandler(inner slog.Handler, window time.Duration, bypass slog.Level) *DedupHandler {
	if window <= 0 {
		window = 5 * time.Second
	}
	return &DedupHandler{
		inner:  inner,
		window: window,
		bypass: bypass,
		now:    time.Now,
		seen:   make(map[string]*suppressState),
	}
}

// Enabled forwards to the wrapped handler.
func (h *DedupHandler) Enabled(ctx context.Context, l slog.Level) bool {
	return h.inner.Enabled(ctx, l)
}

// Handle emits the record unless an identical (level, message) line was
// emitted within the window; the first emission after a suppressed
// stretch carries a "suppressed" count attribute.
func (h *DedupHandler) Handle(ctx context.Context, r slog.Record) error {
	if r.Level >= h.bypass {
		return h.inner.Handle(ctx, r)
	}
	key := r.Level.String() + "\x00" + r.Message
	now := h.now()
	h.mu.Lock()
	st := h.seen[key]
	if st == nil {
		if len(h.seen) >= maxDedupKeys {
			h.evictStale(now)
		}
		st = &suppressState{windowStart: now}
		h.seen[key] = st
		st.lastSeen = now
		h.mu.Unlock()
		return h.inner.Handle(ctx, r)
	}
	st.lastSeen = now
	if now.Sub(st.windowStart) < h.window {
		st.suppressed++
		h.mu.Unlock()
		return nil
	}
	n := st.suppressed
	st.windowStart = now
	st.suppressed = 0
	h.mu.Unlock()
	if n > 0 {
		r.AddAttrs(slog.Int("suppressed", n))
	}
	return h.inner.Handle(ctx, r)
}

// evictStale drops the half of the table least recently seen. Callers
// hold mu.
func (h *DedupHandler) evictStale(now time.Time) {
	cutoff := now.Add(-h.window)
	for k, st := range h.seen {
		if st.lastSeen.Before(cutoff) {
			delete(h.seen, k)
		}
	}
	// Vocabulary genuinely this wide within one window: drop
	// arbitrarily rather than grow without bound.
	for k := range h.seen {
		if len(h.seen) < maxDedupKeys/2 {
			break
		}
		delete(h.seen, k)
	}
}

// WithAttrs forwards to the wrapped handler; the suppression table is
// shared so "same message, different attrs" still dedups (attrs carry
// the varying detail; the message is the event identity).
func (h *DedupHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &DedupHandler{
		inner:  h.inner.WithAttrs(attrs),
		window: h.window,
		bypass: h.bypass,
		now:    h.now,
		seen:   h.seen, // shared: same event identity across attr sets
	}
}

// WithGroup forwards to the wrapped handler.
func (h *DedupHandler) WithGroup(name string) slog.Handler {
	return &DedupHandler{
		inner:  h.inner.WithGroup(name),
		window: h.window,
		bypass: h.bypass,
		now:    h.now,
		seen:   h.seen,
	}
}

// flightLogHandler mirrors error-level records into a flight recorder
// on their way to the wrapped handler, so the black box holds the
// daemon's recent error lines next to the spans and state edges they
// correlate with.
type flightLogHandler struct {
	inner slog.Handler
	fr    *FlightRecorder
}

func (h *flightLogHandler) Enabled(ctx context.Context, l slog.Level) bool {
	return h.inner.Enabled(ctx, l)
}

func (h *flightLogHandler) Handle(ctx context.Context, r slog.Record) error {
	if r.Level >= slog.LevelError {
		h.fr.RecordMsg(FlightLogError, int32(r.Level), r.Message, 0, 0, 0)
	}
	return h.inner.Handle(ctx, r)
}

func (h *flightLogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &flightLogHandler{inner: h.inner.WithAttrs(attrs), fr: h.fr}
}

func (h *flightLogHandler) WithGroup(name string) slog.Handler {
	return &flightLogHandler{inner: h.inner.WithGroup(name), fr: h.fr}
}

// WithFlightRecorder wraps a handler so error-level records are also
// recorded as FlightLogError events. A nil recorder returns inner
// unchanged.
func WithFlightRecorder(inner slog.Handler, fr *FlightRecorder) slog.Handler {
	if fr == nil {
		return inner
	}
	return &flightLogHandler{inner: inner, fr: fr}
}

// NewEventLogger builds the daemons' standard structured logger: JSON
// records to w at the given level, identical lines suppressed within
// window (default 5s), errors never suppressed.
func NewEventLogger(w io.Writer, level slog.Leveler, window time.Duration) *slog.Logger {
	inner := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})
	return slog.New(NewDedupHandler(inner, window, slog.LevelError))
}

// NewEventLoggerFlight is NewEventLogger with error-level records
// mirrored into the flight recorder (errors bypass dedup, so the
// black box sees every error line the logger emits).
func NewEventLoggerFlight(w io.Writer, level slog.Leveler, window time.Duration, fr *FlightRecorder) *slog.Logger {
	inner := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})
	return slog.New(NewDedupHandler(WithFlightRecorder(inner, fr), window, slog.LevelError))
}
