// Request-lifecycle tracing: a Span carries monotonic stage timestamps
// for one serving-stack request (client issue → frame decode → ring
// enqueue → shard dequeue → queue apply → log/WAL group-commit →
// replica ack → response write) as it crosses the wire server, the
// engine shards, and the replication layer. A Tracer owns a pool of
// spans (zero allocation steady-state), feeds every finished span's
// stage segments into per-stage QuantileHistograms, and exports a
// probabilistic 1-in-N sample of spans to a Chrome-trace TraceRecorder
// (one track per connection), so a live daemon can answer "where does
// p99 live" at any moment.
//
// Like every obs probe, the whole subsystem is nil-disabled: a nil
// Tracer returns nil Spans, and every Span/Tracer method is a no-op on
// a nil receiver, so an untraced server pays one pointer-nil branch
// per request and the engine pays one per operation.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage indexes one lifecycle timestamp inside a Span. Stages are
// stamped in pipeline order; a stage that does not apply to a request's
// outcome (e.g. no shard ever dequeued a fully-refused batch) is simply
// left unstamped and its segment is attributed to the next stamped
// stage.
type Stage uint8

// Request lifecycle stages, in pipeline order.
const (
	// StageIssue is the span origin: the moment the server turned to
	// this request (for a loaded connection, when it finished the
	// previous frame), or the client's scheduled issue time for
	// client-side spans.
	StageIssue Stage = iota
	// StageDecode: the frame is fully read, CRC-checked and parsed.
	StageDecode
	// StageEnqueue: the request's operations are headed into the shard
	// rings (stamped immediately before the first ring insert, so it
	// always precedes StageDequeue).
	StageEnqueue
	// StageDequeue: a shard goroutine drained the first of the
	// request's operations from its ring.
	StageDequeue
	// StageApply: the last of the request's operations has executed
	// against its shard queue.
	StageApply
	// StageCommit: the request's mutations are appended to the
	// replication log / WAL group-commit (zero-width when the server
	// runs without replication or persistence).
	StageCommit
	// StageAck: the synchronous-replication follower acknowledgment
	// arrived (zero-width in async or standalone mode).
	StageAck
	// StageWrite: the response bytes went to the connection.
	StageWrite
	// NumStages is the stage count; Span timestamp arrays have this
	// length.
	NumStages
)

// stageNames spell the stages as metric-name components and trace
// slice names.
var stageNames = [NumStages]string{
	"issue", "decode", "enqueue", "dequeue", "apply", "commit", "ack", "write",
}

// String names the stage.
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "invalid"
}

// spanEpoch anchors SpanNow: timestamps are monotonic nanoseconds since
// process start, so stamps taken on different goroutines still order by
// real time (the wall clock may step; the monotonic clock does not).
var spanEpoch = time.Now()

// SpanNow returns the current monotonic span timestamp in nanoseconds
// since process start.
func SpanNow() int64 { return int64(time.Since(spanEpoch)) }

// Span is one request's stage-timestamp record. Fields are atomics
// because stages are stamped from different goroutines (the connection
// reader, the shard goroutines, the connection writer); every stamp is
// first-wins, so racing stampers (two shards draining ops of one batch)
// agree on the earliest event. The zero value is usable but spans
// normally come from a Tracer's pool via Begin and return to it via
// Finish.
type Span struct {
	ts      [NumStages]atomic.Int64
	track   int64
	sampled bool
	erred   atomic.Bool
}

// MarkError flags the span as carrying a failed operation; the flight
// recorder admits errored spans unconditionally. Nil-safe.
func (sp *Span) MarkError() {
	if sp != nil {
		sp.erred.Store(true)
	}
}

// Erred reports whether MarkError was called (false on nil).
func (sp *Span) Erred() bool {
	return sp != nil && sp.erred.Load()
}

// Stamp records SpanNow for the stage if it is not already stamped.
// No-op on a nil span. The load-before-CAS guard matters on the hot
// repeated-stamp sites (a shard stamps StageDequeue per drained entry):
// once the stage is set, later calls cost one read of a shared
// cacheline instead of a clock read plus an RMW that bounces the line
// between shard goroutines.
func (sp *Span) Stamp(st Stage) {
	if sp == nil || sp.ts[st].Load() != 0 {
		return
	}
	sp.ts[st].CompareAndSwap(0, SpanNow())
}

// StampAt records an explicit timestamp (from SpanNow) for the stage if
// it is not already stamped. No-op on a nil span. Adjacent zero-width
// stamps can share one SpanNow read.
func (sp *Span) StampAt(st Stage, ns int64) {
	if sp == nil || ns == 0 || sp.ts[st].Load() != 0 {
		return
	}
	sp.ts[st].CompareAndSwap(0, ns)
}

// Stages returns the stamped timestamps (0 = unstamped). Nil-safe.
func (sp *Span) Stages() [NumStages]int64 {
	var out [NumStages]int64
	if sp == nil {
		return out
	}
	for i := range out {
		out[i] = sp.ts[i].Load()
	}
	return out
}

// Track returns the trace track (connection) id the span was begun on.
func (sp *Span) Track() int64 {
	if sp == nil {
		return 0
	}
	return sp.track
}

// reset clears the span for pool reuse.
func (sp *Span) reset() {
	for i := range sp.ts {
		sp.ts[i].Store(0)
	}
	sp.track = 0
	sp.sampled = false
	sp.erred.Store(false)
}

// TracerOptions parameterise NewTracer.
type TracerOptions struct {
	// Registry receives the per-stage quantile histograms (named
	// <Prefix>_stage_<stage>_ns, plus <Prefix>_stage_total_ns) and the
	// span counters. Nil disables the aggregate side.
	Registry *Registry
	// Prefix is the metric-name prefix (e.g. "bmwd_trace").
	Prefix string
	// Recorder receives sampled spans as Chrome-trace slices, one
	// track (tid) per connection under TracePID. Nil disables export.
	Recorder *TraceRecorder
	// SampleEvery exports one of every N finished spans to Recorder
	// (1 = every span, 0 disables sampling even with a Recorder).
	SampleEvery int
	// TracePID is the Chrome-trace process id sampled spans land
	// under (default 1).
	TracePID int64
	// Flight, when set, receives finished spans as FlightSpan events:
	// every errored or slow span, plus one in FlightSampleEvery of the
	// rest — the black-box admission policy.
	Flight *FlightRecorder
	// FlightSlowNs is the whole-span latency at or above which a span
	// counts as slow (default 25ms).
	FlightSlowNs int64
	// FlightSampleEvery admits one in N unremarkable spans to the
	// flight recorder (default 64; 0 keeps the default).
	FlightSampleEvery int
}

// Tracer mints, aggregates and recycles request spans. Nil-disabled
// like every obs probe.
type Tracer struct {
	// stageQ[0] holds the whole-span (issue→last stamp) latency;
	// stageQ[i>0] holds the segment ending at stage i.
	stageQ  [NumStages]*QuantileHistogram
	rec     *TraceRecorder
	every   uint64
	pid     int64
	nth     atomic.Uint64
	pool    sync.Pool
	started *Counter
	sampled *Counter

	flight      *FlightRecorder
	flightSlow  int64
	flightEvery uint64
	flightNth   atomic.Uint64

	// OnFinish, when set, observes every finished span's track and
	// stamped timestamps before the span returns to the pool — a test
	// and tooling hook, called synchronously from Finish.
	OnFinish func(track int64, ts [NumStages]int64)
}

// StageMetricName returns the registry name of one stage's segment
// histogram under prefix; stage StageIssue names the whole-span total.
func StageMetricName(prefix string, st Stage) string {
	if st == StageIssue {
		return prefix + "_stage_total_ns"
	}
	return prefix + "_stage_" + st.String() + "_ns"
}

// StageMetricNames returns all eight per-stage metric names under
// prefix, in stage order (total first).
func StageMetricNames(prefix string) []string {
	names := make([]string, NumStages)
	for st := Stage(0); st < NumStages; st++ {
		names[st] = StageMetricName(prefix, st)
	}
	return names
}

// NewTracer builds a tracer. It returns nil — the disabled tracer —
// when opts carries no registry, recorder, or flight recorder.
func NewTracer(opts TracerOptions) *Tracer {
	if opts.Registry == nil && opts.Recorder == nil && opts.Flight == nil {
		return nil
	}
	t := &Tracer{
		rec:        opts.Recorder,
		pid:        opts.TracePID,
		flight:     opts.Flight,
		flightSlow: opts.FlightSlowNs,
	}
	if opts.Flight != nil {
		if t.flightSlow <= 0 {
			t.flightSlow = 25 * 1e6
		}
		t.flightEvery = 64
		if opts.FlightSampleEvery > 0 {
			t.flightEvery = uint64(opts.FlightSampleEvery)
		}
	}
	if t.pid == 0 {
		t.pid = 1
	}
	if opts.Recorder != nil && opts.SampleEvery > 0 {
		t.every = uint64(opts.SampleEvery)
		opts.Recorder.ProcessName(t.pid, "requests")
	}
	if reg := opts.Registry; reg != nil {
		prefix := opts.Prefix
		if prefix == "" {
			prefix = "trace"
		}
		reg.Help(StageMetricName(prefix, StageIssue),
			"whole-request latency from issue to last recorded stage")
		for st := Stage(0); st < NumStages; st++ {
			if st > StageIssue {
				reg.Help(StageMetricName(prefix, st),
					"request latency segment ending at stage "+st.String())
			}
			t.stageQ[st] = reg.QuantileHistogram(StageMetricName(prefix, st))
		}
		t.started = reg.Counter(prefix + "_spans_total")
		t.sampled = reg.Counter(prefix + "_spans_sampled_total")
	}
	t.pool.New = func() any { return new(Span) }
	return t
}

// NameTrack labels a trace track (connection) for the viewers; no-op
// without a recorder.
func (t *Tracer) NameTrack(track int64, name string) {
	if t == nil || t.rec == nil || t.every == 0 {
		return
	}
	t.rec.ThreadName(t.pid, track, name)
}

// Begin mints a span on the given track whose StageIssue is issueNs (a
// SpanNow value taken by the caller; 0 means "now"). A nil tracer
// returns a nil span, on which every method is a no-op.
func (t *Tracer) Begin(track int64, issueNs int64) *Span {
	if t == nil {
		return nil
	}
	sp := t.pool.Get().(*Span)
	sp.track = track
	if issueNs == 0 {
		issueNs = SpanNow()
	}
	sp.ts[StageIssue].Store(issueNs)
	t.started.Inc()
	if t.every > 0 && t.nth.Add(1)%t.every == 0 {
		sp.sampled = true
		t.sampled.Inc()
	}
	return sp
}

// Finish records the span's stage segments into the per-stage
// histograms, exports it to the trace recorder when it was sampled,
// and returns it to the pool. The caller must not touch the span
// afterwards. Nil tracer or span: no-op.
func (t *Tracer) Finish(sp *Span) {
	if t == nil || sp == nil {
		return
	}
	ts := sp.Stages()
	issue := ts[StageIssue]
	prev := issue
	last := issue
	for st := StageDecode; st < NumStages; st++ {
		v := ts[st]
		if v == 0 {
			continue
		}
		d := v - prev
		if d < 0 {
			d = 0
		}
		t.stageQ[st].Observe(uint64(d))
		prev, last = v, v
	}
	if issue != 0 && last >= issue {
		t.stageQ[StageIssue].Observe(uint64(last - issue))
	}
	if t.flight != nil {
		total := int64(0)
		if issue != 0 && last >= issue {
			total = last - issue
		}
		// Admission: every errored span, every slow span, one in N of
		// the rest — the black box always holds the interesting tail.
		switch {
		case sp.erred.Load():
			t.flight.Record(FlightSpan, 0, uint64(sp.track), uint64(total), 1)
		case total >= t.flightSlow:
			t.flight.Record(FlightSpan, 0, uint64(sp.track), uint64(total), 2)
		case t.flightNth.Add(1)%t.flightEvery == 0:
			t.flight.Record(FlightSpan, 0, uint64(sp.track), uint64(total), 0)
		}
	}
	if sp.sampled && t.rec != nil {
		t.export(sp.track, ts)
	}
	if t.OnFinish != nil {
		t.OnFinish(sp.track, ts)
	}
	sp.reset()
	t.pool.Put(sp)
}

// export renders one sampled span as Chrome-trace slices: each stamped
// segment becomes an X slice named after its ending stage, on the
// span's connection track, in microseconds since process start.
func (t *Tracer) export(track int64, ts [NumStages]int64) {
	prev := ts[StageIssue]
	for st := StageDecode; st < NumStages; st++ {
		v := ts[st]
		if v == 0 {
			continue
		}
		t.rec.Slice(t.pid, track, prev/1e3, (v-prev)/1e3, st.String(), nil)
		prev = v
	}
}
