package obs

import (
	"bytes"
	"sync"
	"testing"
)

func TestFlightRecorderNilDisabled(t *testing.T) {
	var f *FlightRecorder
	f.Record(FlightSpan, 0, 1, 2, 3)
	f.RecordMsg(FlightReplState, 0, "promoted", 0, 0, 0)
	f.Instrument(NewRegistry(), "x")
	if f.Size() != 0 || f.Recorded() != 0 {
		t.Fatalf("nil recorder reports size %d recorded %d", f.Size(), f.Recorded())
	}
	d := f.Dump()
	if d.Schema != FlightDumpSchema || len(d.Events) != 0 {
		t.Fatalf("nil dump: %+v", d)
	}
	if NewFlightRecorder(0) != nil || NewFlightRecorder(-5) != nil {
		t.Fatal("size <= 0 must return the disabled recorder")
	}
}

func TestFlightRecorderSizeRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{1, 64}, {64, 64}, {65, 128}, {100, 128}, {4096, 4096},
	} {
		if got := NewFlightRecorder(tc.ask).Size(); got != tc.want {
			t.Errorf("NewFlightRecorder(%d).Size() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestFlightRecordAndDump(t *testing.T) {
	f := NewFlightRecorder(64)
	f.Record(FlightOverload, 0, 3, 1, 900)
	f.RecordMsg(FlightReplState, 0, "promoted", 42, 0, 0)
	f.Record(FlightWALStall, 0, 80e6, 50e6, 1)

	d := f.Dump()
	if d.Recorded != 3 || len(d.Events) != 3 || d.Dropped != 0 {
		t.Fatalf("dump: recorded=%d events=%d dropped=%d", d.Recorded, len(d.Events), d.Dropped)
	}
	// Oldest first, sequence numbers contiguous.
	for i, ev := range d.Events {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	if d.Events[0].Kind != "overload" || d.Events[0].A != 3 || d.Events[0].C != 900 {
		t.Fatalf("overload event: %+v", d.Events[0])
	}
	if d.Events[1].Kind != "repl_state" || d.Events[1].Msg != "promoted" || d.Events[1].A != 42 {
		t.Fatalf("repl event: %+v", d.Events[1])
	}
	if d.Events[2].Kind != "wal_stall" {
		t.Fatalf("wal event: %+v", d.Events[2])
	}
}

func TestFlightRecorderWrap(t *testing.T) {
	f := NewFlightRecorder(64)
	for i := 0; i < 200; i++ {
		f.Record(FlightSpan, 0, uint64(i), 0, 0)
	}
	d := f.Dump()
	if d.Recorded != 200 {
		t.Fatalf("recorded = %d", d.Recorded)
	}
	if len(d.Events) != 64 {
		t.Fatalf("wrapped dump holds %d events, want the ring's 64", len(d.Events))
	}
	// The surviving window is the newest 64 generations: 136..199.
	for i, ev := range d.Events {
		want := uint64(136 + i)
		if ev.Seq != want || ev.A != want {
			t.Fatalf("event %d: seq=%d a=%d, want %d", i, ev.Seq, ev.A, want)
		}
	}
}

func TestFlightRecorderInstrument(t *testing.T) {
	reg := NewRegistry()
	f := NewFlightRecorder(128)
	f.Instrument(reg, "fl")
	f.Record(FlightReady, 0, 1, 0, 0)
	f.Record(FlightReady, 0, 0, 0, 0)
	s := reg.Snapshot()
	if got := s.Counter("fl_events_total"); got != 2 {
		t.Fatalf("fl_events_total = %d", got)
	}
	if got := s.Gauge("fl_ring_size"); got != 128 {
		t.Fatalf("fl_ring_size = %v", got)
	}
}

// TestFlightRecorderConcurrent hammers the ring from many writers while
// a reader dumps continuously: every event that survives a dump must be
// internally consistent (a known kind, the writer-stamped payload
// relation A==B), torn slots may only be dropped, never corrupted.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(64) // small ring: constant lapping
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				v := uint64(w)<<32 | uint64(i)
				f.Record(FlightSpan, 0, v, v, 0)
			}
		}(w)
	}
	go func() { wg.Wait(); close(stop) }()
	for {
		d := f.Dump()
		for _, ev := range d.Events {
			if ev.Kind != "span" {
				t.Fatalf("corrupt kind %q in concurrent dump", ev.Kind)
			}
			if ev.A != ev.B {
				t.Fatalf("torn payload surfaced: a=%d b=%d", ev.A, ev.B)
			}
		}
		select {
		case <-stop:
			if got := f.Recorded(); got != writers*perWriter {
				t.Fatalf("recorded = %d, want %d", got, writers*perWriter)
			}
			return
		default:
		}
	}
}

func TestParseFlightDumpRoundtrip(t *testing.T) {
	f := NewFlightRecorder(64)
	f.RecordMsg(FlightSLO, int32(SLOPage), "p99", 7, 8, 0)
	var buf bytes.Buffer
	if err := f.Dump().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := ParseFlightDump(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Events) != 1 || d.Events[0].Kind != "slo" || d.Events[0].Msg != "p99" {
		t.Fatalf("roundtrip dump: %+v", d)
	}
	if _, err := ParseFlightDump([]byte(`{"schema":"bogus/v9"}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := ParseFlightDump([]byte(`{nope`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestFlightKindNames(t *testing.T) {
	for k := FlightSpan; k <= FlightIncident; k++ {
		if k.String() == "kind_unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if FlightKind(250).String() != "kind_unknown" {
		t.Error("unknown kind must stringify as kind_unknown")
	}
}
