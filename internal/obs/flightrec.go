// Black-box flight recorder: a fixed-size, lock-free ring of recent
// structured events — finished request spans (every error/slow span,
// a 1-in-N sample of the rest), overload and backpressure edges,
// replication state transitions, WAL fsync stalls, error log records —
// recording continuously at a handful of atomic stores per event, with
// a Dump that snapshots a consistent recent window for incident
// bundles, /flight.json, and post-mortems.
//
// Concurrency model: the cursor is a single atomic counter, so each
// recorded event owns exactly one slot generation (single writer per
// slot per lap). A writer invalidates its slot (seq=0), fills the
// fields, then publishes by storing seq=generation+1; Dump validates
// seq before and after copying and drops torn slots. Every slot field
// is an atomic, so concurrent writer/reader access is race-detector
// clean; the residual hazard — a writer lapping the entire ring while
// another writer is mid-publish on the same slot — can at worst make
// Dump drop or misattribute that one slot, never corrupt the rest,
// which is the right trade for a diagnostics black box.
package obs

import (
	"encoding/json"
	"io"
	"sync/atomic"
	"time"
)

// FlightKind classifies one flight-recorder event.
type FlightKind uint8

// Flight event kinds. The A/B/C payload meaning is per-kind and
// documented on each constant; Msg carries free-form identity (an
// objective name, a log message) where one applies.
const (
	// FlightSpan is a finished request span: A = track (connection id),
	// B = whole-span latency ns, C = 1 error / 2 slow / 0 sampled-in.
	FlightSpan FlightKind = iota + 1
	// FlightOverload is an overload admission edge: A = shard,
	// B = 1 trip / 0 clear, C = ring occupancy at the deciding drain.
	FlightOverload
	// FlightBackpressure is an almost-full edge: A = shard,
	// B = 1 asserted / 0 cleared, C = queue length.
	FlightBackpressure
	// FlightReplState is a replication state transition; Msg names the
	// transition (attached, caught_up, detached, promoted, degraded,
	// stream_fatal, refused), A/B carry transition-specific detail
	// (typically LSN/lag).
	FlightReplState
	// FlightWALStall is a WAL fsync exceeding the stall threshold:
	// A = fsync ns, B = threshold ns.
	FlightWALStall
	// FlightLogError is an error-level structured log record; Msg is
	// the log message.
	FlightLogError
	// FlightReady is a readiness flip: A = 1 ready / 0 unready.
	FlightReady
	// FlightSLO is an SLO burn-rate state change; Msg names the
	// objective, Code is the new SLOState, A = float64 bits of the
	// measured value, B = float64 bits of the bound.
	FlightSLO
	// FlightGCPause is a GC pause past the runtime collector's stall
	// threshold: A = pause ns (bucket upper bound), B = threshold ns.
	FlightGCPause
	// FlightIncident marks an incident capture; Msg is the trigger.
	FlightIncident
	// FlightIntegrity is a durable-state corruption detection (scrub or
	// recovery): Msg classifies it, A/B carry the LSN range or
	// seq/chunk-count the detector localised.
	FlightIntegrity
)

// flightKindNames spell the kinds in dumps.
var flightKindNames = map[FlightKind]string{
	FlightSpan:         "span",
	FlightOverload:     "overload",
	FlightBackpressure: "backpressure",
	FlightReplState:    "repl_state",
	FlightWALStall:     "wal_stall",
	FlightLogError:     "log_error",
	FlightReady:        "ready",
	FlightSLO:          "slo",
	FlightGCPause:      "gc_pause",
	FlightIncident:     "incident",
	FlightIntegrity:    "integrity",
}

// String names the kind ("kind_<n>" for unknown values).
func (k FlightKind) String() string {
	if s, ok := flightKindNames[k]; ok {
		return s
	}
	return "kind_unknown"
}

// flightSlot is one ring slot. All fields are atomics so writers and
// Dump never race at the memory-model level; seq is the publication
// tag (generation+1, 0 while a writer owns the slot).
type flightSlot struct {
	seq atomic.Uint64
	ts  atomic.Int64  // SpanNow at record time
	kc  atomic.Uint64 // kind | code<<8
	a   atomic.Uint64
	b   atomic.Uint64
	c   atomic.Uint64
	msg atomic.Pointer[string]
}

// FlightRecorder is the black-box ring. Nil-disabled like every obs
// probe: Record on a nil recorder is a no-op costing one branch.
type FlightRecorder struct {
	slots  []flightSlot
	mask   uint64
	cursor atomic.Uint64
}

// NewFlightRecorder builds a recorder holding the most recent `size`
// events (rounded up to a power of two, minimum 64). A size <= 0
// returns nil — the disabled recorder.
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		return nil
	}
	n := 64
	for n < size {
		n <<= 1
	}
	return &FlightRecorder{slots: make([]flightSlot, n), mask: uint64(n - 1)}
}

// Size returns the ring capacity (0 on nil).
func (f *FlightRecorder) Size() int {
	if f == nil {
		return 0
	}
	return len(f.slots)
}

// Recorded returns the total events recorded since construction,
// including those already overwritten (0 on nil).
func (f *FlightRecorder) Recorded() uint64 {
	if f == nil {
		return 0
	}
	return f.cursor.Load()
}

// Record appends one event. Safe for concurrent use from any
// goroutine; no-op on nil.
func (f *FlightRecorder) Record(kind FlightKind, code int32, a, b, c uint64) {
	f.record(kind, code, a, b, c, nil)
}

// RecordMsg is Record with a free-form message (one allocation for the
// string header indirection — keep it off per-op hot paths).
func (f *FlightRecorder) RecordMsg(kind FlightKind, code int32, msg string, a, b, c uint64) {
	f.record(kind, code, a, b, c, &msg)
}

func (f *FlightRecorder) record(kind FlightKind, code int32, a, b, c uint64, msg *string) {
	if f == nil {
		return
	}
	gen := f.cursor.Add(1) - 1
	s := &f.slots[gen&f.mask]
	s.seq.Store(0) // invalidate: readers mid-copy see the tear
	s.ts.Store(SpanNow())
	s.kc.Store(uint64(kind) | uint64(uint32(code))<<8)
	s.a.Store(a)
	s.b.Store(b)
	s.c.Store(c)
	s.msg.Store(msg)
	s.seq.Store(gen + 1) // publish
}

// Instrument registers the recorder's event counter and ring size
// under prefix.
func (f *FlightRecorder) Instrument(reg *Registry, prefix string) {
	if f == nil || reg == nil {
		return
	}
	reg.Help(prefix+"_events_total", "flight-recorder events recorded (including overwritten)")
	reg.CounterFunc(prefix+"_events_total", f.Recorded)
	reg.Help(prefix+"_ring_size", "flight-recorder ring capacity in events")
	reg.GaugeFunc(prefix+"_ring_size", func() float64 { return float64(f.Size()) })
}

// FlightEvent is one dumped event. TS is monotonic nanoseconds since
// the recording process's span epoch; FlightDump.CapturedTS anchors it
// to CapturedAt wall time.
type FlightEvent struct {
	Seq  uint64 `json:"seq"`
	TS   int64  `json:"ts_ns"`
	Kind string `json:"kind"`
	Code int32  `json:"code,omitempty"`
	A    uint64 `json:"a,omitempty"`
	B    uint64 `json:"b,omitempty"`
	C    uint64 `json:"c,omitempty"`
	Msg  string `json:"msg,omitempty"`
}

// FlightDump is the versioned dump document: the recent event window,
// oldest first, plus the wall/monotonic anchor pair that converts
// event timestamps to wall time (wall ≈ CapturedAt - (CapturedTS-TS)).
type FlightDump struct {
	Schema     string        `json:"schema"`
	CapturedAt time.Time     `json:"captured_at"`
	CapturedTS int64         `json:"captured_ts_ns"`
	Recorded   uint64        `json:"recorded_total"`
	Dropped    int           `json:"dropped_torn,omitempty"`
	Events     []FlightEvent `json:"events"`
}

// FlightDumpSchema versions the dump document.
const FlightDumpSchema = "bmwflight/v1"

// Dump snapshots the recent window: every slot whose generation still
// matches its publication tag, oldest first. Slots overwritten or torn
// by concurrent writers during the dump are dropped (counted in
// Dropped), never returned corrupt. A nil recorder dumps an empty
// document.
func (f *FlightRecorder) Dump() FlightDump {
	d := FlightDump{
		Schema:     FlightDumpSchema,
		CapturedAt: time.Now(),
		CapturedTS: SpanNow(),
	}
	if f == nil {
		return d
	}
	end := f.cursor.Load()
	d.Recorded = end
	start := uint64(0)
	if n := uint64(len(f.slots)); end > n {
		start = end - n
	}
	d.Events = make([]FlightEvent, 0, end-start)
	for gen := start; gen < end; gen++ {
		s := &f.slots[gen&f.mask]
		if s.seq.Load() != gen+1 {
			d.Dropped++
			continue
		}
		ev := FlightEvent{Seq: gen, TS: s.ts.Load()}
		kc := s.kc.Load()
		ev.Kind = FlightKind(kc & 0xff).String()
		ev.Code = int32(uint32(kc >> 8))
		ev.A = s.a.Load()
		ev.B = s.b.Load()
		ev.C = s.c.Load()
		if p := s.msg.Load(); p != nil {
			ev.Msg = *p
		}
		if s.seq.Load() != gen+1 { // torn by a concurrent writer
			d.Dropped++
			continue
		}
		d.Events = append(d.Events, ev)
	}
	return d
}

// WriteJSON writes the dump as JSON to w.
func (d FlightDump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// ParseFlightDump decodes and sanity-checks a dump document.
func ParseFlightDump(b []byte) (FlightDump, error) {
	var d FlightDump
	if err := json.Unmarshal(b, &d); err != nil {
		return d, err
	}
	if d.Schema != FlightDumpSchema {
		return d, errSchema("flight dump", d.Schema, FlightDumpSchema)
	}
	return d, nil
}
