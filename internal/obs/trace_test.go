package obs

import (
	"bytes"
	"sync"
	"testing"
)

func TestNilTraceRecorderIsNoOp(t *testing.T) {
	var tr *TraceRecorder
	tr.ProcessName(1, "p")
	tr.ThreadName(1, 2, "t")
	tr.Slice(1, 2, 0, 3, "s", nil)
	tr.Begin(1, 2, 0, "b", nil)
	tr.End(1, 2, 1)
	tr.Instant(1, 2, 0, "i", nil)
	tr.Counter(1, 0, "c", map[string]any{"v": 1})
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil recorder not inert")
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.TraceEvents) != 0 {
		t.Fatal("nil recorder trace should be empty")
	}
}

// TestTraceRoundTripValidates is the acceptance-criteria schema test:
// a recorded trace serialises to Chrome Trace Event JSON, parses back,
// and validates structurally.
func TestTraceRoundTripValidates(t *testing.T) {
	tr := NewTraceRecorder()
	tr.ProcessName(1, "rbmw")
	tr.ThreadName(1, 0, "level 0")
	tr.ThreadName(1, 1, "level 1")
	tr.Slice(1, 0, 0, 1, "push", map[string]any{"rank": 7})
	tr.Slice(1, 1, 1, 2, "pop", nil)
	tr.Begin(1, 1, 3, "refill", nil)
	tr.End(1, 1, 6)
	tr.Instant(1, 0, 4, "almost_full", nil)
	tr.Counter(1, 5, "occupancy", map[string]any{"level0": 3, "level1": 8})

	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if len(parsed.TraceEvents) != tr.Len() {
		t.Fatalf("parsed %d events, recorded %d", len(parsed.TraceEvents), tr.Len())
	}
	if err := ValidateTrace(parsed); err != nil {
		t.Fatalf("trace fails schema validation: %v", err)
	}
	// Spot-check a field survived the round trip.
	found := false
	for _, ev := range parsed.TraceEvents {
		if ev.Name == "push" && ev.Phase == "X" && ev.Dur == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("push slice lost in round trip")
	}
}

func TestValidateTraceRejectsMalformed(t *testing.T) {
	cases := map[string]Trace{
		"unknown phase": {TraceEvents: []TraceEvent{{Name: "x", Phase: "Q"}}},
		"negative ts":   {TraceEvents: []TraceEvent{{Name: "x", Phase: "i", Ts: -1}}},
		"zero-dur X":    {TraceEvents: []TraceEvent{{Name: "x", Phase: "X", Dur: 0}}},
		"unmatched E":   {TraceEvents: []TraceEvent{{Phase: "E"}}},
		"unclosed B":    {TraceEvents: []TraceEvent{{Name: "x", Phase: "B"}}},
		"unnamed slice": {TraceEvents: []TraceEvent{{Phase: "X", Dur: 1}}},
	}
	for name, tr := range cases {
		if err := ValidateTrace(tr); err == nil {
			t.Errorf("%s: validation should have failed", name)
		}
	}
}

func TestTraceSliceClampsDuration(t *testing.T) {
	tr := NewTraceRecorder()
	tr.Slice(1, 0, 0, 0, "zero", nil)
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Dur != 1 {
		t.Fatalf("zero-dur slice not clamped: %+v", evs)
	}
}

func TestTraceRecorderCap(t *testing.T) {
	tr := NewTraceRecorder()
	tr.events = make([]TraceEvent, maxTraceEvents)
	tr.Instant(1, 0, 0, "over", nil)
	if tr.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", tr.Dropped())
	}
	if tr.Len() != maxTraceEvents {
		t.Fatalf("len grew past cap: %d", tr.Len())
	}
}

// TestTraceConcurrent drives the recorder from several goroutines;
// run under -race in CI.
func TestTraceConcurrent(t *testing.T) {
	tr := NewTraceRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				tr.Slice(int64(i), 0, int64(j), 1, "s", nil)
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 2000 {
		t.Fatalf("len = %d, want 2000", tr.Len())
	}
}
