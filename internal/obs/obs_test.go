package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(3)
	g.Max(9)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(7)

	var r *Registry
	if r.Counter("x") != nil || r.Gauge("y") != nil || r.Histogram("z", []uint64{1}) != nil {
		t.Fatal("nil registry should hand out nil instruments")
	}
	r.CounterFunc("cf", func() uint64 { return 1 })
	r.GaugeFunc("gf", func() float64 { return 1 })
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("ops_total") != c {
		t.Fatal("re-registration should return the same counter")
	}

	g := r.Gauge("occupancy")
	g.Set(12.5)
	if got := g.Value(); got != 12.5 {
		t.Fatalf("gauge = %g, want 12.5", got)
	}
	g.Max(10) // lower: no change
	if got := g.Value(); got != 12.5 {
		t.Fatalf("gauge after Max(10) = %g, want 12.5", got)
	}
	g.Max(40)
	if got := g.Value(); got != 40 {
		t.Fatalf("gauge after Max(40) = %g, want 40", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []uint64{1, 2, 4})
	for _, v := range []uint64{0, 1, 2, 3, 4, 9} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	want := []uint64{2, 1, 2, 1} // <=1: {0,1}; <=2: {2}; <=4: {3,4}; overflow: {9}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 || s.Sum != 19 {
		t.Fatalf("count/sum = %d/%d, want 6/19", s.Count, s.Sum)
	}
	if m := s.Mean(); m < 3.16 || m > 3.17 {
		t.Fatalf("mean = %g, want 19/6", m)
	}
}

func TestHistogramBadBounds(t *testing.T) {
	for _, bounds := range [][]uint64{nil, {}, {3, 1}, {2, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind conflict")
		}
	}()
	r.Gauge("m")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"", "1abc", "a-b", "a.b", "a b", "héllo"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", name)
				}
			}()
			r.Counter(name)
		}()
	}
}

func TestSnapshotFuncsAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("pushes_total").Add(7)
	r.Gauge("depth").Set(3)
	r.CounterFunc("ram_reads_total", func() uint64 { return 11 })
	r.GaugeFunc("load", func() float64 { return 0.5 })
	r.Histogram("h", []uint64{10}).Observe(2)

	s := r.Snapshot()
	if s.Counter("pushes_total") != 7 || s.Counter("ram_reads_total") != 11 {
		t.Fatalf("counters: %+v", s.Counters)
	}
	if s.Gauge("depth") != 3 || s.Gauge("load") != 0.5 {
		t.Fatalf("gauges: %+v", s.Gauges)
	}
	if s.Counter("missing") != 0 || s.Gauge("missing") != 0 {
		t.Fatal("absent metrics should read zero")
	}

	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counter("pushes_total") != 7 || back.Histograms["h"].Count != 1 {
		t.Fatalf("round trip lost data: %s", b)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops_total").Add(3)
	r.Gauge("occ").Set(1.5)
	h := r.Histogram("lat_cycles", []uint64{1, 4})
	h.Observe(1)
	h.Observe(2)
	h.Observe(9)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE ops_total counter\nops_total 3\n",
		"# TYPE occ gauge\nocc 1.5\n",
		"# TYPE lat_cycles histogram\n",
		"lat_cycles_bucket{le=\"1\"} 1\n",
		"lat_cycles_bucket{le=\"4\"} 2\n",
		"lat_cycles_bucket{le=\"+Inf\"} 3\n",
		"lat_cycles_sum 12\n",
		"lat_cycles_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentUse exercises registration, updates, and snapshots
// from many goroutines; run under -race in CI.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared_total")
			g := r.Gauge("shared_gauge")
			h := r.Histogram("shared_hist", []uint64{2, 8, 32})
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Set(float64(j))
				g.Max(float64(j))
				h.Observe(uint64(j % 40))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 100; j++ {
			_ = r.Snapshot()
			_ = r.WritePrometheus(&strings.Builder{})
		}
	}()
	wg.Wait()
	if got := r.Snapshot().Counter("shared_total"); got != 8000 {
		t.Fatalf("shared_total = %d, want 8000", got)
	}
}
