// Incident capture: a triggerable bundler that freezes the daemon's
// diagnostic state — flight-recorder dump, metrics snapshot, Chrome
// trace slice, SLO status, probe detail, goroutine and heap profiles,
// build identity — into a versioned, self-checksummed incident-<ts>/
// directory the moment something goes wrong (panic, SIGQUIT, overload
// trip, follower fatal-degrade, readiness flip, SLO page).
//
// Bundles are rate-limited (a flapping trigger cannot fill the disk),
// retention-capped (oldest pruned past MaxBundles), and validated by
// ValidateIncidentBundle, which CI and bmwchaos run against every
// bundle a fault run produces.
package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/buildinfo"
)

// IncidentSchema versions the bundle manifest.
const IncidentSchema = "bmwincident/v1"

// errSchema builds the uniform bad-schema error.
func errSchema(what, got, want string) error {
	return fmt.Errorf("obs: %s schema %q, want %q", what, got, want)
}

// IncidentManifest is the bundle's manifest.json: identity, trigger,
// the sha256 of every other file in the bundle, and a self-checksum
// over the manifest with the Checksum field empty — so any byte of the
// bundle (including the manifest itself) changing is detectable.
type IncidentManifest struct {
	Schema     string            `json:"schema"`
	Trigger    string            `json:"trigger"`
	Reason     string            `json:"reason,omitempty"`
	CapturedAt time.Time         `json:"captured_at"`
	Commit     string            `json:"commit"`
	GoVersion  string            `json:"go_version"`
	Files      map[string]string `json:"files"`
	Checksum   string            `json:"checksum"`
}

// manifestChecksum computes the self-checksum: sha256 over the
// canonical JSON of the manifest with Checksum cleared.
func manifestChecksum(m IncidentManifest) (string, error) {
	m.Checksum = ""
	b, err := json.Marshal(m)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// IncidentOptions parameterise NewIncidentCapturer. Every source is
// optional; a capture includes whatever is wired.
type IncidentOptions struct {
	// Dir is the directory bundles are written under (created if
	// missing). Required.
	Dir string
	// MaxBundles caps retained bundles; older ones are pruned
	// (default 16).
	MaxBundles int
	// MinInterval rate-limits captures: triggers inside the interval
	// are counted and suppressed (default 30s). Panic and explicit
	// operator triggers bypass it — see Capture.
	MinInterval time.Duration
	// Flight, Registry, Trace, SLO and Detail are the state sources
	// frozen into the bundle.
	Flight   *FlightRecorder
	Registry *Registry
	Trace    *TraceRecorder
	SLO      *SLOEngine
	Detail   func() map[string]any
	// Logger receives one line per capture and per suppression.
	Logger *slog.Logger
}

// IncidentCapturer writes incident bundles. Nil-disabled.
type IncidentCapturer struct {
	opts IncidentOptions

	mu   sync.Mutex
	last time.Time

	captures   Counter
	suppressed Counter
}

// forceTriggers bypass rate limiting: a panic bundle is the last
// chance to capture anything, and an operator sending SIGQUIT asked
// explicitly.
var forceTriggers = map[string]bool{"panic": true, "sigquit": true}

// NewIncidentCapturer builds a capturer, creating Dir. Returns nil on
// an empty Dir — the disabled capturer.
func NewIncidentCapturer(opts IncidentOptions) (*IncidentCapturer, error) {
	if opts.Dir == "" {
		return nil, nil
	}
	if opts.MaxBundles <= 0 {
		opts.MaxBundles = 16
	}
	if opts.MinInterval <= 0 {
		opts.MinInterval = 30 * time.Second
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: incident dir: %w", err)
	}
	return &IncidentCapturer{opts: opts}, nil
}

// Instrument registers capture/suppression counters under prefix.
func (c *IncidentCapturer) Instrument(reg *Registry, prefix string) {
	if c == nil || reg == nil {
		return
	}
	reg.Help(prefix+"_captures_total", "incident bundles written")
	reg.CounterFunc(prefix+"_captures_total", c.captures.Value)
	reg.Help(prefix+"_suppressed_total", "incident triggers suppressed by rate limiting")
	reg.CounterFunc(prefix+"_suppressed_total", c.suppressed.Value)
}

// Capture writes one bundle for the trigger and returns its
// directory. Rate-limited triggers return ("", nil) and are counted;
// "panic" and "sigquit" bypass the limit. Nil-safe.
func (c *IncidentCapturer) Capture(trigger, reason string) (string, error) {
	if c == nil {
		return "", nil
	}
	now := time.Now()
	c.mu.Lock()
	if !forceTriggers[trigger] && now.Sub(c.last) < c.opts.MinInterval {
		c.mu.Unlock()
		c.suppressed.Inc()
		if c.opts.Logger != nil {
			c.opts.Logger.Info("incident capture suppressed",
				"trigger", trigger, "reason", reason)
		}
		return "", nil
	}
	c.last = now
	c.mu.Unlock()

	dir, err := c.write(trigger, reason, now)
	if err != nil {
		if c.opts.Logger != nil {
			c.opts.Logger.Error("incident capture failed",
				"trigger", trigger, "error", err.Error())
		}
		return "", err
	}
	c.captures.Inc()
	c.opts.Flight.RecordMsg(FlightIncident, 0, trigger, 0, 0, 0)
	if c.opts.Logger != nil {
		c.opts.Logger.Warn("incident captured",
			"trigger", trigger, "reason", reason, "bundle", dir)
	}
	return dir, nil
}

// CaptureAsync fires Capture on its own goroutine — the form trigger
// sites on serving paths (overload trips, SLO pages) use so a capture
// never blocks a shard or the SLO tick. Nil-safe.
func (c *IncidentCapturer) CaptureAsync(trigger, reason string) {
	if c == nil {
		return
	}
	go func() { _, _ = c.Capture(trigger, reason) }()
}

// PanicCapture is the deferred panic handler: on a panic it captures
// a bundle (trigger "panic", reason the panic value) and re-panics so
// the process still dies loudly with the original stack. Use:
//
//	defer inc.PanicCapture()
//
// Nil-safe — a disabled capturer re-panics without capturing.
func (c *IncidentCapturer) PanicCapture() {
	r := recover()
	if r == nil {
		return
	}
	if c != nil {
		_, _ = c.Capture("panic", fmt.Sprint(r))
	}
	panic(r)
}

// sanitizeTrigger keeps bundle directory names shell-safe.
func sanitizeTrigger(t string) string {
	out := make([]byte, 0, len(t))
	for i := 0; i < len(t) && len(out) < 32; i++ {
		b := t[i]
		switch {
		case b >= 'a' && b <= 'z', b >= '0' && b <= '9', b == '-' || b == '_':
			out = append(out, b)
		case b >= 'A' && b <= 'Z':
			out = append(out, b+'a'-'A')
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "trigger"
	}
	return string(out)
}

// write builds one bundle directory.
func (c *IncidentCapturer) write(trigger, reason string, now time.Time) (string, error) {
	name := fmt.Sprintf("incident-%s-%09d-%s",
		now.UTC().Format("20060102T150405"), now.Nanosecond(), sanitizeTrigger(trigger))
	dir := filepath.Join(c.opts.Dir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}

	man := IncidentManifest{
		Schema:     IncidentSchema,
		Trigger:    trigger,
		Reason:     reason,
		CapturedAt: now,
		Commit:     buildinfo.Commit(),
		GoVersion:  buildinfo.GoVersion(),
		Files:      map[string]string{},
	}
	put := func(fname string, render func(f *os.File) error) error {
		path := filepath.Join(dir, fname)
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("%s: %w", fname, err)
		}
		err = render(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("%s: %w", fname, err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("%s: %w", fname, err)
		}
		sum := sha256.Sum256(b)
		man.Files[fname] = hex.EncodeToString(sum[:])
		return nil
	}

	if c.opts.Flight != nil {
		if err := put("flight.json", func(f *os.File) error {
			return c.opts.Flight.Dump().WriteJSON(f)
		}); err != nil {
			return dir, err
		}
	}
	if err := put("metrics.json", func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", " ")
		return enc.Encode(c.opts.Registry.Snapshot())
	}); err != nil {
		return dir, err
	}
	if c.opts.Trace != nil {
		if err := put("trace.json", func(f *os.File) error {
			_, err := c.opts.Trace.WriteTo(f)
			return err
		}); err != nil {
			return dir, err
		}
	}
	if c.opts.SLO != nil {
		if err := put("slo.json", func(f *os.File) error {
			enc := json.NewEncoder(f)
			enc.SetIndent("", " ")
			return enc.Encode(c.opts.SLO.Status())
		}); err != nil {
			return dir, err
		}
	}
	if c.opts.Detail != nil {
		if err := put("status.json", func(f *os.File) error {
			enc := json.NewEncoder(f)
			enc.SetIndent("", " ")
			return enc.Encode(c.opts.Detail())
		}); err != nil {
			return dir, err
		}
	}
	if err := put("goroutines.txt", func(f *os.File) error {
		return pprof.Lookup("goroutine").WriteTo(f, 2)
	}); err != nil {
		return dir, err
	}
	if err := put("heap.pprof", func(f *os.File) error {
		return pprof.Lookup("heap").WriteTo(f, 0)
	}); err != nil {
		return dir, err
	}

	sum, err := manifestChecksum(man)
	if err != nil {
		return dir, err
	}
	man.Checksum = sum
	mb, err := json.MarshalIndent(man, "", " ")
	if err != nil {
		return dir, err
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), append(mb, '\n'), 0o644); err != nil {
		return dir, err
	}

	c.prune()
	return dir, nil
}

// prune removes the oldest bundles past MaxBundles. Bundle names sort
// chronologically (UTC timestamp prefix), so lexical order is age
// order.
func (c *IncidentCapturer) prune() {
	bundles, err := ListIncidentBundles(c.opts.Dir)
	if err != nil {
		return
	}
	for len(bundles) > c.opts.MaxBundles {
		_ = os.RemoveAll(bundles[0])
		bundles = bundles[1:]
	}
}

// ListIncidentBundles returns the bundle directories under dir,
// oldest first.
func ListIncidentBundles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		if e.IsDir() && strings.HasPrefix(e.Name(), "incident-") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}

// ParseIncidentManifest decodes and structurally validates a manifest:
// schema, required identity fields, and the self-checksum. It is the
// pure core of ValidateIncidentBundle (and its fuzz target).
func ParseIncidentManifest(b []byte) (IncidentManifest, error) {
	var m IncidentManifest
	if err := json.Unmarshal(b, &m); err != nil {
		return m, err
	}
	if m.Schema != IncidentSchema {
		return m, errSchema("incident manifest", m.Schema, IncidentSchema)
	}
	if m.Trigger == "" {
		return m, fmt.Errorf("obs: incident manifest missing trigger")
	}
	if m.CapturedAt.IsZero() {
		return m, fmt.Errorf("obs: incident manifest missing captured_at")
	}
	if len(m.Files) == 0 {
		return m, fmt.Errorf("obs: incident manifest lists no files")
	}
	want, err := manifestChecksum(m)
	if err != nil {
		return m, err
	}
	if m.Checksum != want {
		return m, fmt.Errorf("obs: incident manifest checksum %.12s, want %.12s", m.Checksum, want)
	}
	return m, nil
}

// ValidateIncidentBundle checks one bundle directory end to end:
// manifest schema and self-checksum, every listed file present with a
// matching sha256, the required captures (metrics.json, goroutines.txt)
// present, the goroutine profile non-empty, and — when the bundle
// carries one — the flight record parseable with at least one event.
func ValidateIncidentBundle(dir string) error {
	mb, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return err
	}
	m, err := ParseIncidentManifest(mb)
	if err != nil {
		return fmt.Errorf("%s: %w", dir, err)
	}
	for _, req := range []string{"metrics.json", "goroutines.txt"} {
		if _, ok := m.Files[req]; !ok {
			return fmt.Errorf("%s: manifest missing required capture %s", dir, req)
		}
	}
	for fname, wantSum := range m.Files {
		if filepath.Base(fname) != fname {
			return fmt.Errorf("%s: manifest file name %q escapes the bundle", dir, fname)
		}
		b, err := os.ReadFile(filepath.Join(dir, fname))
		if err != nil {
			return fmt.Errorf("%s: %w", dir, err)
		}
		sum := sha256.Sum256(b)
		if got := hex.EncodeToString(sum[:]); got != wantSum {
			return fmt.Errorf("%s: %s checksum %.12s, want %.12s", dir, fname, got, wantSum)
		}
		switch fname {
		case "metrics.json":
			var s Snapshot
			if err := json.Unmarshal(b, &s); err != nil {
				return fmt.Errorf("%s: metrics.json: %w", dir, err)
			}
		case "goroutines.txt":
			if !strings.Contains(string(b), "goroutine") {
				return fmt.Errorf("%s: goroutines.txt has no goroutine dump", dir)
			}
		case "flight.json":
			d, err := ParseFlightDump(b)
			if err != nil {
				return fmt.Errorf("%s: flight.json: %w", dir, err)
			}
			if len(d.Events) == 0 {
				return fmt.Errorf("%s: flight.json holds no events", dir)
			}
		}
	}
	return nil
}
