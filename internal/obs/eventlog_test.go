package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// logLines decodes one JSON record per line.
func logLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

func TestDedupHandlerSuppresses(t *testing.T) {
	var buf bytes.Buffer
	h := NewDedupHandler(slog.NewJSONHandler(&buf, nil), time.Minute, slog.LevelError)
	now := time.Unix(0, 0)
	h.now = func() time.Time { return now }
	lg := slog.New(h)

	for i := 0; i < 10; i++ {
		lg.Info("follower reconnect", "attempt", i)
	}
	lines := logLines(t, &buf)
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1 (repeats suppressed)", len(lines))
	}

	// Past the window the next record flushes with the suppressed count.
	now = now.Add(2 * time.Minute)
	lg.Info("follower reconnect", "attempt", 10)
	lines = logLines(t, &buf)
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if got, ok := lines[1]["suppressed"].(float64); !ok || got != 9 {
		t.Fatalf("suppressed attr = %v, want 9", lines[1]["suppressed"])
	}
}

func TestDedupHandlerDistinctMessagesPass(t *testing.T) {
	var buf bytes.Buffer
	lg := slog.New(NewDedupHandler(slog.NewJSONHandler(&buf, nil), time.Minute, slog.LevelError))
	lg.Info("msg one")
	lg.Info("msg two")
	lg.Warn("msg one") // different level: distinct key
	if lines := logLines(t, &buf); len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
}

func TestDedupHandlerErrorsBypass(t *testing.T) {
	var buf bytes.Buffer
	lg := slog.New(NewDedupHandler(slog.NewJSONHandler(&buf, nil), time.Minute, slog.LevelError))
	for i := 0; i < 5; i++ {
		lg.Error("disk on fire", "i", i)
	}
	if lines := logLines(t, &buf); len(lines) != 5 {
		t.Fatalf("got %d error lines, want 5 (errors never suppressed)", len(lines))
	}
}

func TestDedupHandlerEviction(t *testing.T) {
	var buf bytes.Buffer
	h := NewDedupHandler(slog.NewJSONHandler(&buf, nil), time.Minute, slog.LevelError)
	lg := slog.New(h)
	for i := 0; i < maxDedupKeys+100; i++ {
		lg.Info("unique message " + string(rune('a'+i%26)) + "-" + time.Duration(i).String())
	}
	h.mu.Lock()
	n := len(h.seen)
	h.mu.Unlock()
	if n > maxDedupKeys {
		t.Fatalf("dedup table grew to %d keys, cap %d", n, maxDedupKeys)
	}
}

func TestEventLoggerConcurrent(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	lg := NewEventLogger(w, slog.LevelInfo, time.Minute)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				lg.Info("hot event", "g", g, "i", i)
			}
		}(g)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if lines := logLines(t, &buf); len(lines) != 1 {
		t.Fatalf("got %d lines from 800 identical events, want 1", len(lines))
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestDedupHandlerEvictionBoundary pins the 1024-key table boundary:
// filling the table to exactly maxDedupKeys evicts nothing, the next
// distinct key triggers eviction, keys seen within the window survive
// it, and suppression state for surviving keys is preserved across the
// eviction.
func TestDedupHandlerEvictionBoundary(t *testing.T) {
	var buf bytes.Buffer
	h := NewDedupHandler(slog.NewJSONHandler(&buf, nil), time.Minute, slog.LevelError)
	now := time.Unix(0, 0)
	h.now = func() time.Time { return now }
	lg := slog.New(h)

	// A hot key with accumulated suppression state.
	lg.Info("hot key")
	for i := 0; i < 7; i++ {
		lg.Info("hot key")
	}

	// Stale vocabulary: filled early, never seen again.
	for i := 0; i < maxDedupKeys-1; i++ {
		lg.Info("stale-" + strconv.Itoa(i))
	}
	h.mu.Lock()
	n := len(h.seen)
	h.mu.Unlock()
	if n != maxDedupKeys {
		t.Fatalf("table holds %d keys after exactly %d distinct messages", n, maxDedupKeys)
	}

	// Advance past the window, refresh the hot key (suppressed=7
	// flushes; its state survives as the recently-seen entry), then one
	// more distinct key forces the eviction pass: every stale key is
	// outside the window and is dropped, the hot key is not.
	now = now.Add(2 * time.Minute)
	lg.Info("hot key")
	lg.Info("fresh key")
	h.mu.Lock()
	n = len(h.seen)
	_, hotSurvived := h.seen["INFO\x00hot key"]
	h.mu.Unlock()
	if n > maxDedupKeys {
		t.Fatalf("table grew past the cap: %d", n)
	}
	if n >= maxDedupKeys {
		t.Fatalf("eviction pass dropped nothing: %d keys", n)
	}
	if !hotSurvived {
		t.Fatal("recently-seen key evicted while stale keys were available")
	}

	lines := logLines(t, &buf)
	// 1 hot + 1023 stale + 1 hot flush + 1 fresh.
	if len(lines) != maxDedupKeys+2 {
		t.Fatalf("got %d lines, want %d", len(lines), maxDedupKeys+2)
	}
	flush := lines[maxDedupKeys]
	if flush["msg"] != "hot key" {
		t.Fatalf("line after the stale fill is %v, want the hot-key flush", flush["msg"])
	}
	if got, ok := flush["suppressed"].(float64); !ok || got != 7 {
		t.Fatalf("hot-key flush suppressed = %v, want 7 (state preserved across the full table)", flush["suppressed"])
	}
}
