package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// logLines decodes one JSON record per line.
func logLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad log line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

func TestDedupHandlerSuppresses(t *testing.T) {
	var buf bytes.Buffer
	h := NewDedupHandler(slog.NewJSONHandler(&buf, nil), time.Minute, slog.LevelError)
	now := time.Unix(0, 0)
	h.now = func() time.Time { return now }
	lg := slog.New(h)

	for i := 0; i < 10; i++ {
		lg.Info("follower reconnect", "attempt", i)
	}
	lines := logLines(t, &buf)
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1 (repeats suppressed)", len(lines))
	}

	// Past the window the next record flushes with the suppressed count.
	now = now.Add(2 * time.Minute)
	lg.Info("follower reconnect", "attempt", 10)
	lines = logLines(t, &buf)
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if got, ok := lines[1]["suppressed"].(float64); !ok || got != 9 {
		t.Fatalf("suppressed attr = %v, want 9", lines[1]["suppressed"])
	}
}

func TestDedupHandlerDistinctMessagesPass(t *testing.T) {
	var buf bytes.Buffer
	lg := slog.New(NewDedupHandler(slog.NewJSONHandler(&buf, nil), time.Minute, slog.LevelError))
	lg.Info("msg one")
	lg.Info("msg two")
	lg.Warn("msg one") // different level: distinct key
	if lines := logLines(t, &buf); len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
}

func TestDedupHandlerErrorsBypass(t *testing.T) {
	var buf bytes.Buffer
	lg := slog.New(NewDedupHandler(slog.NewJSONHandler(&buf, nil), time.Minute, slog.LevelError))
	for i := 0; i < 5; i++ {
		lg.Error("disk on fire", "i", i)
	}
	if lines := logLines(t, &buf); len(lines) != 5 {
		t.Fatalf("got %d error lines, want 5 (errors never suppressed)", len(lines))
	}
}

func TestDedupHandlerEviction(t *testing.T) {
	var buf bytes.Buffer
	h := NewDedupHandler(slog.NewJSONHandler(&buf, nil), time.Minute, slog.LevelError)
	lg := slog.New(h)
	for i := 0; i < maxDedupKeys+100; i++ {
		lg.Info("unique message " + string(rune('a'+i%26)) + "-" + time.Duration(i).String())
	}
	h.mu.Lock()
	n := len(h.seen)
	h.mu.Unlock()
	if n > maxDedupKeys {
		t.Fatalf("dedup table grew to %d keys, cap %d", n, maxDedupKeys)
	}
}

func TestEventLoggerConcurrent(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	lg := NewEventLogger(w, slog.LevelInfo, time.Minute)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				lg.Info("hot event", "g", g, "i", i)
			}
		}(g)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if lines := logLines(t, &buf); len(lines) != 1 {
		t.Fatalf("got %d lines from 800 identical events, want 1", len(lines))
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
