package obs

import (
	"math"
	"runtime"
	"testing"
	"time"
)

func TestRuntimeCollectorNilDisabled(t *testing.T) {
	var c *RuntimeCollector
	c.Poll()
	c.SetFlight(NewFlightRecorder(64), time.Millisecond)
	stop := c.Start(time.Millisecond)
	stop()
	if NewRuntimeCollector(nil, "x") != nil {
		t.Fatal("nil registry must yield the disabled collector")
	}
}

func TestRuntimeCollectorPoll(t *testing.T) {
	reg := NewRegistry()
	c := NewRuntimeCollector(reg, "rt")
	if c == nil {
		t.Fatal("collector nil despite registry")
	}

	// Force scheduler and GC activity so the histograms have deltas.
	sink := make([][]byte, 0, 256)
	for i := 0; i < 256; i++ {
		sink = append(sink, make([]byte, 4096))
	}
	_ = sink
	runtime.GC()
	runtime.GC()
	c.Poll()

	s := reg.Snapshot()
	if got := s.Gauge("rt_goroutines"); got < 1 {
		t.Errorf("goroutines gauge = %v", got)
	}
	if got := s.Gauge("rt_heap_live_bytes"); got <= 0 {
		t.Errorf("heap_live_bytes gauge = %v", got)
	}
	if got := s.Gauge("rt_heap_objects_bytes"); got <= 0 {
		t.Errorf("heap_objects_bytes gauge = %v", got)
	}
	if got := s.Gauge("rt_gc_cycles_total"); got < 2 {
		t.Errorf("gc_cycles_total gauge = %v, want >= 2 after two forced GCs", got)
	}
	if got := s.Quantile("rt_gc_pause_ns").Count; got == 0 {
		t.Error("gc_pause_ns histogram empty after forced GCs")
	}
	if got := s.Quantile("rt_sched_latency_ns").Count; got == 0 {
		t.Error("sched_latency_ns histogram empty")
	}

	// Second poll feeds only the delta: the cumulative count must not
	// double-count the first poll's observations.
	first := s.Quantile("rt_gc_pause_ns").Count
	c.Poll()
	second := reg.Snapshot().Quantile("rt_gc_pause_ns").Count
	if second < first {
		t.Errorf("gc pause count went backwards: %d -> %d", first, second)
	}
	runtime.GC()
	c.Poll()
	third := reg.Snapshot().Quantile("rt_gc_pause_ns").Count
	if third <= second {
		t.Errorf("gc pause count did not grow after a GC: %d -> %d", second, third)
	}
}

func TestRuntimeCollectorFlightStall(t *testing.T) {
	reg := NewRegistry()
	c := NewRuntimeCollector(reg, "rt")
	fr := NewFlightRecorder(256)
	c.SetFlight(fr, time.Nanosecond) // every observed pause "stalls"
	runtime.GC()
	c.Poll()
	found := false
	for _, ev := range fr.Dump().Events {
		if ev.Kind == "gc_pause" {
			found = true
			if ev.B != 1 {
				t.Errorf("gc_pause threshold field = %d, want 1ns", ev.B)
			}
		}
	}
	if !found {
		t.Error("no FlightGCPause event despite 1ns stall threshold")
	}
}

func TestBucketMidNs(t *testing.T) {
	bounds := []float64{0, 1e-6, 1e-3}
	if got := bucketMidNs(bounds, 0); got != 500 {
		t.Errorf("mid of [0,1µs) = %dns, want 500", got)
	}
	// ±Inf edges clamp rather than overflow.
	inf := []float64{math.Inf(-1), 1e-6, math.Inf(1)}
	if got := bucketMidNs(inf, 0); got != 500 {
		t.Errorf("mid of [-Inf,1µs) = %dns, want 500", got)
	}
	if got := bucketMidNs(inf, 1); got != 1000 {
		t.Errorf("mid of [1µs,+Inf) = %dns, want 1000 (clamped to lo)", got)
	}
}
