// SLO engine: declarative service-level objectives ("p99 push-to-ack
// below 10ms", "availability above 99.9%", "replication lag below
// 1000 records") evaluated continuously over windowed deltas of the
// registry's own instruments, with multi-window burn-rate states.
//
// Each objective is judged over two windows. The short window answers
// "are we burning error budget right now"; the long window answers
// "has this been going on". A short-window violation alone raises
// `warn` (early signal, self-clearing when the blip passes); short and
// long violating together raise `page` (sustained burn — the state
// that triggers incident capture). Latency objectives derive windowed
// quantiles via QuantileSnapshot.Sub, availability objectives from
// counter deltas, gauge objectives from the sampled history (latest
// for the short window, minimum over the long window, so a page means
// the gauge never once dipped below its bound).
package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SLOState is one objective's burn-rate state.
type SLOState int32

// Burn-rate states, in increasing severity.
const (
	SLOOK SLOState = iota
	SLOWarn
	SLOPage
)

// String names the state.
func (s SLOState) String() string {
	switch s {
	case SLOOK:
		return "ok"
	case SLOWarn:
		return "warn"
	case SLOPage:
		return "page"
	}
	return "invalid"
}

// ObjectiveKind selects how an objective is evaluated.
type ObjectiveKind int

// Objective kinds.
const (
	// ObjectiveLatency bounds a windowed quantile of a registry
	// QuantileHistogram: violated when quantile(Metric) > Bound ns.
	ObjectiveLatency ObjectiveKind = iota
	// ObjectiveErrorRatio bounds the windowed ratio of Bad counter
	// deltas to Total counter deltas: violated when bad/total > Bound.
	ObjectiveErrorRatio
	// ObjectiveGaugeMax bounds a gauge: violated when Metric > Bound.
	ObjectiveGaugeMax
)

// String names the kind.
func (k ObjectiveKind) String() string {
	switch k {
	case ObjectiveLatency:
		return "latency"
	case ObjectiveErrorRatio:
		return "error_ratio"
	case ObjectiveGaugeMax:
		return "gauge_max"
	}
	return "invalid"
}

// Objective is one declarative SLO.
type Objective struct {
	// Name labels the objective in metrics and /slo.json (must be a
	// valid metric-name fragment).
	Name string
	Kind ObjectiveKind
	// Metric is the quantile-histogram name (ObjectiveLatency) or
	// gauge name (ObjectiveGaugeMax) in the source registry.
	Metric string
	// Quantile is the latency quantile judged, e.g. 0.99.
	Quantile float64
	// Bound is the violation threshold: nanoseconds for latency, max
	// bad/total ratio for error-ratio, max value for gauges.
	Bound float64
	// Bad and Total are the counter names an error-ratio objective
	// sums windowed deltas of.
	Bad, Total []string
}

// SLOOptions parameterise NewSLOEngine.
type SLOOptions struct {
	// Source is the registry whose instruments the objectives judge.
	Source *Registry
	// Registry receives the bmwd_slo_* exposition metrics (may equal
	// Source; nil disables exposition).
	Registry *Registry
	// Prefix is the exposition metric prefix (default "slo").
	Prefix string
	// ShortWindow and LongWindow are the burn-rate windows (defaults
	// 10s and 60s; Short must not exceed Long).
	ShortWindow, LongWindow time.Duration
	// Objectives are the SLOs judged each tick.
	Objectives []Objective
	// OnChange observes every state transition, synchronously from
	// Tick — the incident-capture hook.
	OnChange func(o Objective, from, to SLOState, value float64)
	// Flight receives a FlightSLO event per state transition.
	Flight *FlightRecorder
}

// sloSample is one tick's source-registry view.
type sloSample struct {
	at   time.Time
	snap Snapshot
}

// objectiveState is one objective's evaluated state.
type objectiveState struct {
	o     Objective
	state atomic.Int32
	// short-window measured value, float64 bits, for the gauge.
	value atomic.Uint64
	warns *Counter
	pages *Counter
}

// SLOEngine evaluates objectives over a sliding snapshot history.
// Nil-disabled.
type SLOEngine struct {
	src      *Registry
	short    time.Duration
	long     time.Duration
	objs     []*objectiveState
	onChange func(o Objective, from, to SLOState, value float64)
	flight   *FlightRecorder

	mu   sync.Mutex
	hist []sloSample

	stopOnce sync.Once
	done     chan struct{}
}

// NewSLOEngine builds the engine (without starting its tick loop; see
// Start). Returns nil when there is no source or no objectives — the
// disabled engine.
func NewSLOEngine(opts SLOOptions) *SLOEngine {
	if opts.Source == nil || len(opts.Objectives) == 0 {
		return nil
	}
	if opts.ShortWindow <= 0 {
		opts.ShortWindow = 10 * time.Second
	}
	if opts.LongWindow <= 0 {
		opts.LongWindow = 60 * time.Second
	}
	if opts.ShortWindow > opts.LongWindow {
		opts.ShortWindow = opts.LongWindow
	}
	prefix := opts.Prefix
	if prefix == "" {
		prefix = "slo"
	}
	e := &SLOEngine{
		src:      opts.Source,
		short:    opts.ShortWindow,
		long:     opts.LongWindow,
		onChange: opts.OnChange,
		flight:   opts.Flight,
		done:     make(chan struct{}),
	}
	for _, o := range opts.Objectives {
		os := &objectiveState{o: o}
		if reg := opts.Registry; reg != nil {
			base := prefix + "_" + o.Name
			reg.Help(base+"_state", "SLO burn-rate state: 0 ok, 1 warn, 2 page")
			reg.GaugeFunc(base+"_state", func() float64 { return float64(os.state.Load()) })
			reg.Help(base+"_value", "short-window measured value the objective judged last tick")
			reg.GaugeFunc(base+"_value", func() float64 {
				return math.Float64frombits(os.value.Load())
			})
			reg.Help(base+"_bound", "objective violation threshold")
			reg.Gauge(base + "_bound").Set(o.Bound)
			reg.Help(base+"_warn_total", "transitions into the warn state")
			os.warns = reg.Counter(base + "_warn_total")
			reg.Help(base+"_page_total", "transitions into the page state")
			os.pages = reg.Counter(base + "_page_total")
		}
		e.objs = append(e.objs, os)
	}
	return e
}

// Tick evaluates every objective against the source registry at the
// given instant. Exported so tests (and the Start loop) drive it
// deterministically; no-op on nil.
func (e *SLOEngine) Tick(now time.Time) {
	if e == nil {
		return
	}
	cur := sloSample{at: now, snap: e.src.Snapshot()}

	e.mu.Lock()
	e.hist = append(e.hist, cur)
	// Keep one sample older than the long window as the delta base.
	for len(e.hist) > 1 && now.Sub(e.hist[1].at) >= e.long {
		e.hist = e.hist[1:]
	}
	hist := append([]sloSample(nil), e.hist...)
	e.mu.Unlock()

	shortBase := baseSample(hist, now, e.short)
	longBase := baseSample(hist, now, e.long)

	for _, os := range e.objs {
		shortV, shortViol, ok := evalObjective(os.o, cur, shortBase, hist, now, e.short, true)
		_, longViol, lok := evalObjective(os.o, cur, longBase, hist, now, e.long, false)
		if ok {
			os.value.Store(math.Float64bits(shortV))
		}
		next := SLOOK
		switch {
		case shortViol && longViol && lok:
			next = SLOPage
		case shortViol:
			next = SLOWarn
		}
		prev := SLOState(os.state.Swap(int32(next)))
		if prev == next {
			continue
		}
		switch next {
		case SLOWarn:
			os.warns.Inc()
		case SLOPage:
			os.pages.Inc()
		}
		e.flight.RecordMsg(FlightSLO, int32(next), os.o.Name,
			math.Float64bits(shortV), math.Float64bits(os.o.Bound), uint64(prev))
		if e.onChange != nil {
			e.onChange(os.o, prev, next, shortV)
		}
	}
}

// baseSample picks the newest history sample at least `window` older
// than now (falling back to the oldest available).
func baseSample(hist []sloSample, now time.Time, window time.Duration) sloSample {
	base := hist[0]
	for _, s := range hist {
		if now.Sub(s.at) >= window {
			base = s
		} else {
			break
		}
	}
	return base
}

// evalObjective returns (measured value, violated, measurable) for one
// objective over one window. An unmeasurable window (no traffic, no
// delta) never violates: no requests means no budget burned.
func evalObjective(o Objective, cur, base sloSample, hist []sloSample, now time.Time, window time.Duration, latest bool) (float64, bool, bool) {
	switch o.Kind {
	case ObjectiveLatency:
		w := cur.snap.Quantile(o.Metric).Sub(base.snap.Quantile(o.Metric))
		if w.Count == 0 {
			return 0, false, false
		}
		v := float64(w.Quantile(o.Quantile))
		return v, v > o.Bound, true
	case ObjectiveErrorRatio:
		var bad, total float64
		for _, n := range o.Bad {
			bad += float64(cur.snap.Counter(n)) - float64(base.snap.Counter(n))
		}
		for _, n := range o.Total {
			total += float64(cur.snap.Counter(n)) - float64(base.snap.Counter(n))
		}
		if total <= 0 {
			return 0, false, false
		}
		v := bad / total
		return v, v > o.Bound, true
	case ObjectiveGaugeMax:
		if latest {
			v := cur.snap.Gauge(o.Metric)
			return v, v > o.Bound, true
		}
		// Long window: the minimum over the window's samples — a page
		// requires the gauge to have stayed above the bound throughout.
		v := math.Inf(1)
		seen := false
		for _, s := range hist {
			if now.Sub(s.at) > window {
				continue
			}
			g := s.snap.Gauge(o.Metric)
			if !seen || g < v {
				v, seen = g, true
			}
		}
		if !seen {
			return 0, false, false
		}
		return v, v > o.Bound, true
	}
	return 0, false, false
}

// Start ticks the engine every interval (default 1s) until Stop. A
// nil engine is a no-op.
func (e *SLOEngine) Start(interval time.Duration) {
	if e == nil {
		return
	}
	if interval <= 0 {
		interval = time.Second
	}
	e.Tick(time.Now())
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-e.done:
				return
			case <-t.C:
				e.Tick(time.Now())
			}
		}
	}()
}

// Stop ends the tick loop; idempotent, nil-safe.
func (e *SLOEngine) Stop() {
	if e == nil {
		return
	}
	e.stopOnce.Do(func() { close(e.done) })
}

// ObjectiveStatus is one objective's state in the /slo.json document.
type ObjectiveStatus struct {
	Name     string  `json:"name"`
	Kind     string  `json:"kind"`
	Metric   string  `json:"metric,omitempty"`
	Quantile float64 `json:"quantile,omitempty"`
	Bound    float64 `json:"bound"`
	Value    float64 `json:"value"`
	State    string  `json:"state"`
}

// SLOStatus is the /slo.json document.
type SLOStatus struct {
	ShortWindowMS int64             `json:"short_window_ms"`
	LongWindowMS  int64             `json:"long_window_ms"`
	Worst         string            `json:"worst"`
	Objectives    []ObjectiveStatus `json:"objectives"`
}

// Status reports every objective's current state (worst first inside
// Worst; objectives keep declaration order). Nil-safe: a nil engine
// reports an empty document.
func (e *SLOEngine) Status() SLOStatus {
	st := SLOStatus{Worst: SLOOK.String()}
	if e == nil {
		return st
	}
	st.ShortWindowMS = e.short.Milliseconds()
	st.LongWindowMS = e.long.Milliseconds()
	worst := SLOOK
	for _, os := range e.objs {
		s := SLOState(os.state.Load())
		if s > worst {
			worst = s
		}
		st.Objectives = append(st.Objectives, ObjectiveStatus{
			Name:     os.o.Name,
			Kind:     os.o.Kind.String(),
			Metric:   os.o.Metric,
			Quantile: os.o.Quantile,
			Bound:    os.o.Bound,
			Value:    math.Float64frombits(os.value.Load()),
			State:    s.String(),
		})
	}
	st.Worst = worst.String()
	return st
}

// SLONames maps a daemon's metric vocabulary into ParseSLOSpec: which
// quantile histogram carries request latency, which counters count
// failed and total operations, which gauge carries replication lag.
type SLONames struct {
	LatencyMetric string
	BadCounters   []string
	TotalCounters []string
	LagGauge      string
}

// ParseSLOSpec parses a comma-separated objective spec into
// Objectives:
//
//	p99<10ms            latency: the p99 of names.LatencyMetric under 10ms
//	p50<500us           any pNN quantile works
//	availability>0.999  error ratio: 1-0.999 budget over Bad/Total counters
//	lag<5000            gauge bound on names.LagGauge
//
// Objective names are derived from the left-hand token.
func ParseSLOSpec(spec string, names SLONames) ([]Objective, error) {
	var out []Objective
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		switch {
		case strings.HasPrefix(part, "p") && strings.Contains(part, "<"):
			lhs, rhs, _ := strings.Cut(part, "<")
			pct, err := strconv.ParseFloat(lhs[1:], 64)
			if err != nil || pct <= 0 || pct >= 100 {
				return nil, fmt.Errorf("obs: bad SLO quantile %q", lhs)
			}
			d, err := time.ParseDuration(rhs)
			if err != nil {
				return nil, fmt.Errorf("obs: bad SLO latency bound %q: %v", rhs, err)
			}
			if names.LatencyMetric == "" {
				return nil, fmt.Errorf("obs: SLO %q needs a latency metric (is tracing enabled?)", part)
			}
			out = append(out, Objective{
				Name:     "p" + strings.ReplaceAll(lhs[1:], ".", "_"),
				Kind:     ObjectiveLatency,
				Metric:   names.LatencyMetric,
				Quantile: pct / 100,
				Bound:    float64(d.Nanoseconds()),
			})
		case strings.HasPrefix(part, "availability>"):
			rhs := strings.TrimPrefix(part, "availability>")
			target, err := strconv.ParseFloat(rhs, 64)
			if err != nil || target <= 0 || target >= 1 {
				return nil, fmt.Errorf("obs: bad SLO availability target %q", rhs)
			}
			out = append(out, Objective{
				Name:  "availability",
				Kind:  ObjectiveErrorRatio,
				Bound: 1 - target,
				Bad:   append([]string(nil), names.BadCounters...),
				Total: append([]string(nil), names.TotalCounters...),
			})
		case strings.HasPrefix(part, "lag<"):
			rhs := strings.TrimPrefix(part, "lag<")
			bound, err := strconv.ParseFloat(rhs, 64)
			if err != nil || bound < 0 {
				return nil, fmt.Errorf("obs: bad SLO lag bound %q", rhs)
			}
			if names.LagGauge == "" {
				return nil, fmt.Errorf("obs: SLO %q needs a lag gauge (is replication enabled?)", part)
			}
			out = append(out, Objective{
				Name:   "repl_lag",
				Kind:   ObjectiveGaugeMax,
				Metric: names.LagGauge,
				Bound:  bound,
			})
		default:
			return nil, fmt.Errorf("obs: unparseable SLO objective %q (want pNN<dur, availability>frac, lag<n)", part)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}
