// Package obs is the zero-dependency observability core shared by the
// cycle-accurate simulators, the software priority queues and the
// experiment commands: counters, gauges and fixed-bucket histograms
// collected in a Registry with a consistent Snapshot API, a Chrome
// Trace Event recorder that renders simulated pipelines as waveforms
// in ui.perfetto.dev (trace.go), and Prometheus-text / expvar / pprof
// HTTP sinks for the long-running commands (http.go).
//
// Design constraints, in order:
//
//  1. A disabled probe must be free. Every mutating method is a no-op
//     on a nil receiver, so an uninstrumented simulator pays exactly
//     one pointer-nil branch on its hot path and nothing else.
//  2. Owned instruments (Counter, Gauge, Histogram) are safe for
//     concurrent use: a producer loop can increment them while an HTTP
//     scrape reads a Snapshot. They are plain atomics — no locks on
//     the update path.
//  3. Callback instruments (CounterFunc, GaugeFunc) sample external
//     state at Snapshot time. They let existing structures (SRAM port
//     stats, tree occupancy, fault-plan totals) surface without any
//     hot-path bookkeeping, but the callbacks run unsynchronised with
//     the producer — register them only for state that is read when
//     the producer is paused, or that is itself race-safe.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric. The zero value
// is ready to use; all methods are atomic and no-ops on nil.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time float64 metric. The zero value is ready;
// all methods are atomic and no-ops on nil.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Max raises the gauge to v if v is larger — a high-watermark update.
func (g *Gauge) Max(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution of uint64 observations
// (cycle latencies, pipeline depths). Bucket i counts observations
// <= Bounds[i]; one extra overflow bucket counts the rest. All methods
// are atomic and no-ops on nil.
type Histogram struct {
	bounds  []uint64
	buckets []atomic.Uint64 // len(bounds)+1, last is overflow
	count   atomic.Uint64
	sum     atomic.Uint64
}

// NewHistogram builds a histogram with the given ascending upper
// bounds. It panics on empty or unsorted bounds.
func NewHistogram(bounds []uint64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending at %d", i))
		}
	}
	return &Histogram{
		bounds:  append([]uint64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// HistogramSnapshot is one histogram's state at Snapshot time. Counts
// has one entry per bound plus a final overflow bucket.
type HistogramSnapshot struct {
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Count  uint64   `json:"count"`
	Sum    uint64   `json:"sum"`
}

// Mean returns the average observation (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// snapshot captures the histogram.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// instrument is one named registry entry.
type instrument struct {
	name string
	help string
	c    *Counter
	g    *Gauge
	h    *Histogram
	q    *QuantileHistogram
	cf   func() uint64
	gf   func() float64
}

// Registry names and collects instruments. Registration takes a lock;
// the instruments themselves are lock-free. Registration methods are
// nil-safe: on a nil Registry they return nil instruments, whose
// methods are in turn no-ops — so a whole probe tree can be disabled
// by passing a nil registry.
type Registry struct {
	mu          sync.Mutex
	order       []*instrument
	index       map[string]*instrument
	pendingHelp map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*instrument)}
}

// validName enforces Prometheus-compatible metric names so the text
// exposition never needs escaping: [a-zA-Z_][a-zA-Z0-9_]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'):
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register adds (or finds) a named instrument, panicking on a name
// reused for a different kind — always a wiring bug.
func (r *Registry) register(name string, build func() *instrument) *instrument {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.index[name]; ok {
		return in
	}
	in := build()
	in.name = name
	if help, ok := r.pendingHelp[name]; ok {
		in.help = help
		delete(r.pendingHelp, name)
	}
	r.order = append(r.order, in)
	r.index[name] = in
	return in
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	in := r.register(name, func() *instrument { return &instrument{c: &Counter{}} })
	if in.c == nil {
		panic(fmt.Sprintf("obs: metric %q already registered with a different kind", name))
	}
	return in.c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	in := r.register(name, func() *instrument { return &instrument{g: &Gauge{}} })
	if in.g == nil {
		panic(fmt.Sprintf("obs: metric %q already registered with a different kind", name))
	}
	return in.g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	in := r.register(name, func() *instrument { return &instrument{h: NewHistogram(bounds)} })
	if in.h == nil {
		panic(fmt.Sprintf("obs: metric %q already registered with a different kind", name))
	}
	return in.h
}

// QuantileHistogram returns the named log-bucketed quantile histogram,
// creating it on first use.
func (r *Registry) QuantileHistogram(name string) *QuantileHistogram {
	if r == nil {
		return nil
	}
	in := r.register(name, func() *instrument { return &instrument{q: NewQuantileHistogram()} })
	if in.q == nil {
		panic(fmt.Sprintf("obs: metric %q already registered with a different kind", name))
	}
	return in.q
}

// Help attaches exposition help text to a named metric. It may be
// called before or after the metric is registered; help for a name
// that never registers is simply never emitted.
func (r *Registry) Help(name, text string) {
	if r == nil || !validName(name) {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.index[name]; ok {
		in.help = text
		return
	}
	if r.pendingHelp == nil {
		r.pendingHelp = make(map[string]string)
	}
	r.pendingHelp[name] = text
}

// CounterFunc registers a callback sampled at Snapshot time as a
// counter. See the package comment for the synchronisation contract.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	if r == nil {
		return
	}
	r.register(name, func() *instrument { return &instrument{cf: fn} })
}

// GaugeFunc registers a callback sampled at Snapshot time as a gauge.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, func() *instrument { return &instrument{gf: fn} })
}

// Snapshot is the full state of a registry at one instant, in the
// shape the -metrics-out JSON dumps use.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Quantiles  map[string]QuantileSnapshot  `json:"quantiles,omitempty"`
}

// Counter returns a snapshotted counter by name (0 when absent).
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Gauge returns a snapshotted gauge by name (0 when absent).
func (s Snapshot) Gauge(name string) float64 { return s.Gauges[name] }

// Quantile returns a snapshotted quantile histogram by name (the zero
// QuantileSnapshot when absent).
func (s Snapshot) Quantile(name string) QuantileSnapshot { return s.Quantiles[name] }

// Snapshot captures every instrument, running callback instruments in
// registration order. A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
		Quantiles:  map[string]QuantileSnapshot{},
	}
	if r == nil {
		return s
	}
	for _, in := range r.instruments() {
		switch {
		case in.c != nil:
			s.Counters[in.name] = in.c.Value()
		case in.cf != nil:
			s.Counters[in.name] = in.cf()
		case in.g != nil:
			s.Gauges[in.name] = in.g.Value()
		case in.gf != nil:
			s.Gauges[in.name] = in.gf()
		case in.h != nil:
			s.Histograms[in.name] = in.h.snapshot()
		case in.q != nil:
			s.Quantiles[in.name] = in.q.Snapshot()
		}
	}
	return s
}

// instruments returns a stable copy of the registration order.
func (r *Registry) instruments() []*instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*instrument(nil), r.order...)
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format: every metric gets a # HELP and # TYPE line
// (counters, gauges, histograms with cumulative _bucket series ending
// in le="+Inf" plus _sum/_count, quantile histograms as summaries with
// quantile-labelled series).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, in := range r.instruments() {
		if err := writePromHeader(w, in.name, in.help, promType(in)); err != nil {
			return err
		}
		var err error
		switch {
		case in.c != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", in.name, in.c.Value())
		case in.cf != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", in.name, in.cf())
		case in.g != nil:
			_, err = fmt.Fprintf(w, "%s %g\n", in.name, in.g.Value())
		case in.gf != nil:
			_, err = fmt.Fprintf(w, "%s %g\n", in.name, in.gf())
		case in.h != nil:
			err = writePromHistogram(w, in.name, in.h.snapshot())
		case in.q != nil:
			err = writePromSummary(w, in.name, in.q.Snapshot())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// promType maps an instrument to its exposition-format type keyword.
func promType(in *instrument) string {
	switch {
	case in.c != nil || in.cf != nil:
		return "counter"
	case in.g != nil || in.gf != nil:
		return "gauge"
	case in.h != nil:
		return "histogram"
	case in.q != nil:
		return "summary"
	}
	return "untyped"
}

// writePromHeader emits the # HELP and # TYPE comment lines. Help text
// defaults to the metric name; backslashes and newlines are escaped per
// the exposition format.
func writePromHeader(w io.Writer, name, help, typ string) error {
	if help == "" {
		help = name
	}
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
		name, escapeHelp(help), name, typ)
	return err
}

// escapeHelp applies the exposition-format escaping for HELP text.
func escapeHelp(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

// writePromHistogram renders one histogram with cumulative buckets.
func writePromHistogram(w io.Writer, name string, s HistogramSnapshot) error {
	cum := uint64(0)
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b, cum); err != nil {
			return err
		}
	}
	cum += s.Counts[len(s.Bounds)]
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
		name, cum, name, s.Sum, name, s.Count)
	return err
}

// writePromSummary renders a quantile histogram as a Prometheus
// summary: quantile-labelled series plus _sum and _count.
func writePromSummary(w io.Writer, name string, s QuantileSnapshot) error {
	for _, qv := range []struct {
		label string
		v     uint64
	}{
		{"0.5", s.P50}, {"0.9", s.P90}, {"0.99", s.P99}, {"0.999", s.P999},
	} {
		if _, err := fmt.Fprintf(w, "%s{quantile=\"%s\"} %d\n", name, qv.label, qv.v); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, s.Sum, name, s.Count)
	return err
}
