package obs

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promFamily is one parsed metric family from the text exposition.
type promFamily struct {
	name    string
	help    string
	typ     string
	samples []promSample
}

type promSample struct {
	name   string // full series name, e.g. foo_bucket
	labels map[string]string
	value  float64
}

var (
	promNameRe   = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)(?:\{([^}]*)\})? (\S+)$`)
	promLabelRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"$`)
)

// parsePromText parses Prometheus text exposition output strictly:
// every sample must belong to a family announced by # HELP and # TYPE
// lines, in that order, before its samples.
func parsePromText(t *testing.T, text string) []promFamily {
	t.Helper()
	var fams []promFamily
	var cur *promFamily
	sawHelp := map[string]string{}
	for lineNo, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || !promNameRe.MatchString(name) {
				t.Fatalf("line %d: malformed HELP: %q", lineNo+1, line)
			}
			sawHelp[name] = help
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", lineNo+1, line)
			}
			name, typ := fields[0], fields[1]
			if !promNameRe.MatchString(name) {
				t.Fatalf("line %d: bad family name %q", lineNo+1, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown type %q", lineNo+1, typ)
			}
			help, ok := sawHelp[name]
			if !ok {
				t.Fatalf("line %d: TYPE for %q without preceding HELP", lineNo+1, name)
			}
			fams = append(fams, promFamily{name: name, help: help, typ: typ})
			cur = &fams[len(fams)-1]
		case strings.HasPrefix(line, "#"):
			// comments are legal; ignore
		default:
			m := promSampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed sample: %q", lineNo+1, line)
			}
			s := promSample{name: m[1], labels: map[string]string{}}
			if m[2] != "" {
				for _, lp := range strings.Split(m[2], ",") {
					lm := promLabelRe.FindStringSubmatch(lp)
					if lm == nil {
						t.Fatalf("line %d: malformed label pair %q", lineNo+1, lp)
					}
					s.labels[lm[1]] = lm[2]
				}
			}
			v, err := strconv.ParseFloat(m[3], 64)
			if err != nil && m[3] != "+Inf" && m[3] != "-Inf" && m[3] != "NaN" {
				t.Fatalf("line %d: bad value %q", lineNo+1, m[3])
			}
			s.value = v
			if cur == nil {
				t.Fatalf("line %d: sample %q before any TYPE line", lineNo+1, s.name)
			}
			// A sample belongs to the current family if its series name
			// is the family name or family name + a histogram/summary
			// suffix.
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(
				s.name, "_bucket"), "_sum"), "_count")
			if s.name != cur.name && base != cur.name {
				t.Fatalf("line %d: sample %q under family %q", lineNo+1, s.name, cur.name)
			}
			cur.samples = append(cur.samples, s)
		}
	}
	return fams
}

// TestPrometheusExpositionConformance scrapes a representative registry
// and verifies exposition-format conformance: HELP+TYPE for every
// family, cumulative le-labelled histogram buckets ending in le="+Inf",
// consistent _sum/_count series, and quantile-labelled summaries.
func TestPrometheusExpositionConformance(t *testing.T) {
	r := NewRegistry()
	r.Help("pushes_total", "total push operations accepted")
	c := r.Counter("pushes_total")
	c.Add(41)
	g := r.Gauge("occupancy")
	g.Set(17)
	r.CounterFunc("sampled_total", func() uint64 { return 5 })
	r.GaugeFunc("depth", func() float64 { return 2.5 })
	h := r.Histogram("push_depth", []uint64{1, 2, 4, 8})
	for v := uint64(0); v <= 10; v++ {
		h.Observe(v)
	}
	r.Help("sojourn_cycles", "enqueue-to-dequeue latency with a\nnewline and back\\slash")
	q := r.QuantileHistogram("sojourn_cycles")
	for v := uint64(1); v <= 1000; v++ {
		q.Observe(v)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	fams := parsePromText(t, text)
	byName := map[string]promFamily{}
	for _, f := range fams {
		byName[f.name] = f
	}
	if len(byName) != 6 {
		t.Fatalf("got %d families, want 6:\n%s", len(byName), text)
	}

	// Registered help text is emitted, escaped.
	if f := byName["pushes_total"]; f.typ != "counter" || f.help != "total push operations accepted" {
		t.Fatalf("pushes_total family: %+v", f)
	}
	if f := byName["sojourn_cycles"]; !strings.Contains(f.help, `\n`) || !strings.Contains(f.help, `\\`) {
		t.Fatalf("help not escaped: %q", f.help)
	}

	// Histogram: cumulative buckets ending in le="+Inf", matching _count.
	hf := byName["push_depth"]
	if hf.typ != "histogram" {
		t.Fatalf("push_depth type %q", hf.typ)
	}
	var lastCum float64 = -1
	var sawInf bool
	var count, bucketMax float64
	for _, s := range hf.samples {
		switch s.name {
		case "push_depth_bucket":
			le, ok := s.labels["le"]
			if !ok {
				t.Fatalf("bucket without le label: %+v", s)
			}
			if s.value < lastCum {
				t.Fatalf("buckets not cumulative at le=%s: %v < %v", le, s.value, lastCum)
			}
			lastCum = s.value
			bucketMax = s.value
			if le == "+Inf" {
				sawInf = true
			} else if sawInf {
				t.Fatal("le=\"+Inf\" bucket is not last")
			}
		case "push_depth_count":
			count = s.value
		}
	}
	if !sawInf {
		t.Fatal("histogram missing le=\"+Inf\" bucket")
	}
	if count != 11 || bucketMax != count {
		t.Fatalf("count %v, +Inf cum %v, want both 11", count, bucketMax)
	}

	// Summary: the four standard quantiles plus _sum/_count.
	qf := byName["sojourn_cycles"]
	if qf.typ != "summary" {
		t.Fatalf("sojourn_cycles type %q", qf.typ)
	}
	quantiles := map[string]bool{}
	var qcount float64
	for _, s := range qf.samples {
		if s.name == "sojourn_cycles" {
			quantiles[s.labels["quantile"]] = true
		}
		if s.name == "sojourn_cycles_count" {
			qcount = s.value
		}
	}
	for _, want := range []string{"0.5", "0.9", "0.99", "0.999"} {
		if !quantiles[want] {
			t.Fatalf("summary missing quantile %q (have %v)", want, quantiles)
		}
	}
	if qcount != 1000 {
		t.Fatalf("summary count %v", qcount)
	}
}

// TestHistogramSnapshotMeanEmpty pins the empty-snapshot guard: Mean on
// a zero-observation histogram must be 0, not NaN, so JSON sinks never
// see an unencodable value.
func TestHistogramSnapshotMeanEmpty(t *testing.T) {
	h := NewHistogram([]uint64{1, 2, 4})
	s := h.snapshot()
	if m := s.Mean(); m != 0 {
		t.Fatalf("empty Mean = %v, want 0", m)
	}
	var zero HistogramSnapshot
	if m := zero.Mean(); m != 0 {
		t.Fatalf("zero-value Mean = %v, want 0", m)
	}
	h.Observe(4)
	if m := h.snapshot().Mean(); m != 4 {
		t.Fatalf("Mean after one observation = %v, want 4", m)
	}
}
