// Runtime telemetry: a runtime/metrics-based poller that surfaces the
// Go runtime's own health signals — GC pause quantiles, heap live
// bytes, goroutine count, scheduler latency, stop-the-world time —
// through the registry's ordinary gauge and quantile instruments, so
// the Prometheus/JSON sinks, bmwtop, and incident bundles can show GC
// interference next to the serving-path latencies it causes.
//
// The cumulative runtime histograms (/gc/pauses, /sched/latencies) are
// diffed between polls and the deltas fed into QuantileHistograms via
// bucket midpoints, which keeps them windowable with Sub() exactly
// like the serving-path histograms (at the cost of bucket-resolution
// error, which runtime/metrics imposes anyway).
package obs

import (
	"math"
	"runtime/metrics"
	"time"
)

// Runtime metric names polled, in the units the registry instruments
// carry (ns for durations, bytes for memory).
const (
	rmGoroutines = "/sched/goroutines:goroutines"
	rmHeapLive   = "/gc/heap/live:bytes"
	rmHeapObj    = "/memory/classes/heap/objects:bytes"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
	rmGCPause    = "/sched/pauses/total/gc:seconds"
	rmGCPauseOld = "/gc/pauses:seconds" // pre-1.22 name, kept as fallback
	rmSchedLat   = "/sched/latencies:seconds"
)

// RuntimeCollector polls runtime/metrics into a registry. Nil-disabled.
type RuntimeCollector struct {
	samples []metrics.Sample

	goroutines *Gauge
	heapLive   *Gauge
	heapObj    *Gauge
	gcCycles   *Gauge
	gcPauseQ   *QuantileHistogram
	schedLatQ  *QuantileHistogram

	// prev holds the previous poll's cumulative histogram state per
	// sampled histogram metric, for windowed deltas.
	prev map[string]*metrics.Float64Histogram

	flight  *FlightRecorder
	stallNs uint64
}

// NewRuntimeCollector registers the runtime gauges and quantile
// histograms under prefix (e.g. "bmwd_runtime") and returns a
// collector ready to Poll. A nil registry returns nil — the disabled
// collector, whose methods are no-ops.
func NewRuntimeCollector(reg *Registry, prefix string) *RuntimeCollector {
	if reg == nil {
		return nil
	}
	if prefix == "" {
		prefix = "runtime"
	}
	c := &RuntimeCollector{prev: make(map[string]*metrics.Float64Histogram)}

	known := make(map[string]bool)
	for _, d := range metrics.All() {
		known[d.Name] = true
	}
	want := []string{rmGoroutines, rmHeapLive, rmHeapObj, rmGCCycles, rmSchedLat}
	if known[rmGCPause] {
		want = append(want, rmGCPause)
	} else if known[rmGCPauseOld] {
		want = append(want, rmGCPauseOld)
	}
	for _, name := range want {
		if known[name] {
			c.samples = append(c.samples, metrics.Sample{Name: name})
		}
	}

	reg.Help(prefix+"_goroutines", "live goroutine count")
	c.goroutines = reg.Gauge(prefix + "_goroutines")
	reg.Help(prefix+"_heap_live_bytes", "heap bytes live after the last GC mark")
	c.heapLive = reg.Gauge(prefix + "_heap_live_bytes")
	reg.Help(prefix+"_heap_objects_bytes", "heap bytes occupied by live and dead objects")
	c.heapObj = reg.Gauge(prefix + "_heap_objects_bytes")
	reg.Help(prefix+"_gc_cycles_total", "completed GC cycles")
	c.gcCycles = reg.Gauge(prefix + "_gc_cycles_total")
	reg.Help(prefix+"_gc_pause_ns", "GC stop-the-world pause latency (windowed via runtime/metrics deltas)")
	c.gcPauseQ = reg.QuantileHistogram(prefix + "_gc_pause_ns")
	reg.Help(prefix+"_sched_latency_ns", "goroutine scheduling latency (windowed via runtime/metrics deltas)")
	c.schedLatQ = reg.QuantileHistogram(prefix + "_sched_latency_ns")
	return c
}

// SetFlight records a FlightGCPause event whenever a poll observes a
// GC pause at or above stall.
func (c *RuntimeCollector) SetFlight(fr *FlightRecorder, stall time.Duration) {
	if c == nil {
		return
	}
	c.flight = fr
	c.stallNs = uint64(stall)
}

// Poll samples runtime/metrics once, updating the gauges and feeding
// histogram deltas into the quantile instruments. Exported so tests
// and collection loops drive it deterministically; no-op on nil.
func (c *RuntimeCollector) Poll() {
	if c == nil || len(c.samples) == 0 {
		return
	}
	metrics.Read(c.samples)
	for _, s := range c.samples {
		switch s.Name {
		case rmGoroutines:
			c.goroutines.Set(float64(s.Value.Uint64()))
		case rmHeapLive:
			c.heapLive.Set(float64(s.Value.Uint64()))
		case rmHeapObj:
			c.heapObj.Set(float64(s.Value.Uint64()))
		case rmGCCycles:
			c.gcCycles.Set(float64(s.Value.Uint64()))
		case rmGCPause, rmGCPauseOld:
			c.diffHistogram(s.Name, s.Value.Float64Histogram(), c.gcPauseQ, true)
		case rmSchedLat:
			c.diffHistogram(s.Name, s.Value.Float64Histogram(), c.schedLatQ, false)
		}
	}
}

// diffHistogram feeds the per-bucket count deltas between the previous
// and current cumulative runtime histogram into q, valuing each bucket
// at its midpoint in nanoseconds.
func (c *RuntimeCollector) diffHistogram(name string, h *metrics.Float64Histogram, q *QuantileHistogram, stallCheck bool) {
	if h == nil {
		return
	}
	prev := c.prev[name]
	for i, n := range h.Counts {
		d := n
		if prev != nil && i < len(prev.Counts) {
			d = n - prev.Counts[i]
		}
		if d == 0 {
			continue
		}
		ns := bucketMidNs(h.Buckets, i)
		q.ObserveN(ns, d)
		if stallCheck && c.stallNs > 0 && ns >= c.stallNs {
			c.flight.Record(FlightGCPause, 0, ns, c.stallNs, d)
		}
	}
	// Keep a private copy: runtime/metrics may reuse the sample's
	// histogram storage across Read calls.
	cp := &metrics.Float64Histogram{
		Counts:  append([]uint64(nil), h.Counts...),
		Buckets: append([]float64(nil), h.Buckets...),
	}
	c.prev[name] = cp
}

// bucketMidNs converts runtime histogram bucket i (seconds boundaries,
// possibly ±Inf at the edges) to a midpoint in nanoseconds.
func bucketMidNs(bounds []float64, i int) uint64 {
	lo, hi := bounds[i], bounds[i+1]
	if math.IsInf(lo, -1) {
		lo = 0
	}
	if math.IsInf(hi, 1) {
		hi = lo
	}
	mid := (lo + hi) / 2
	if mid < 0 {
		mid = 0
	}
	return uint64(mid * 1e9)
}

// Start polls at the given interval (default 1s) until the returned
// stop function is called. A nil collector returns a no-op stop.
func (c *RuntimeCollector) Start(interval time.Duration) (stop func()) {
	if c == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = time.Second
	}
	c.Poll()
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				c.Poll()
			}
		}
	}()
	var once bool
	return func() {
		if !once {
			once = true
			close(done)
		}
	}
}
