package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestQuantileBucketIndexRoundTrip(t *testing.T) {
	// Every probe value must land in a bucket whose [Low, High] range
	// contains it, and bucket indexes must be monotone in the value.
	probes := []uint64{0, 1, 15, 16, 17, 31, 32, 33, 63, 64, 100, 1023, 1024,
		1 << 20, (1 << 20) + 12345, 1 << 40, math.MaxUint64 / 2, math.MaxUint64}
	for _, v := range probes {
		i := qhBucketIndex(v)
		if i < 0 || i >= qhBucketCount {
			t.Fatalf("value %d: bucket %d out of range", v, i)
		}
		if lo, hi := qhBucketLow(i), qhBucketHigh(i); v < lo || v > hi {
			t.Fatalf("value %d: bucket %d covers [%d,%d]", v, i, lo, hi)
		}
	}
	prev := -1
	for _, v := range probes {
		if i := qhBucketIndex(v); i < prev {
			t.Fatalf("bucket index not monotone at value %d", v)
		} else {
			prev = i
		}
	}
	// Values below 2^qhSubBits are recorded exactly.
	for v := uint64(0); v < qhSubCount; v++ {
		if i := qhBucketIndex(v); uint64(i) != v || qhBucketLow(i) != v || qhBucketHigh(i) != v {
			t.Fatalf("small value %d not exact (bucket %d)", v, i)
		}
	}
}

func TestQuantileHistogramEmptyAndNil(t *testing.T) {
	var q *QuantileHistogram
	q.Observe(42) // no-op
	s := q.Snapshot()
	if s.Count != 0 || s.P50 != 0 || s.P999 != 0 {
		t.Fatalf("nil snapshot not zero: %+v", s)
	}
	if m := s.Mean(); m != 0 || math.IsNaN(m) {
		t.Fatalf("empty Mean = %v, want 0", m)
	}
	if v := s.Quantile(0.99); v != 0 {
		t.Fatalf("empty Quantile = %d, want 0", v)
	}
	s2 := NewQuantileHistogram().Snapshot()
	if s2.Count != 0 || s2.Min != 0 || len(s2.Buckets) != 0 {
		t.Fatalf("fresh snapshot not zero: %+v", s2)
	}
}

func TestQuantileHistogramBasics(t *testing.T) {
	q := NewQuantileHistogram()
	for v := uint64(1); v <= 100; v++ {
		q.Observe(v)
	}
	s := q.Snapshot()
	if s.Count != 100 || s.Sum != 5050 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("totals wrong: %+v", s)
	}
	if s.Mean() != 50.5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	// p50 of 1..100 is 50; one log-bucket (6.25%) of slack.
	if s.P50 < 47 || s.P50 > 54 {
		t.Fatalf("p50 = %d, want ~50", s.P50)
	}
	if s.P999 > 100 || s.P999 < 94 {
		t.Fatalf("p999 = %d, want ~100 (clamped to max)", s.P999)
	}
}

// exactQuantile computes the reference quantile over sorted samples
// with the same nearest-rank definition the histogram uses.
func exactQuantile(sorted []uint64, p float64) uint64 {
	n := len(sorted)
	rank := int(math.Ceil(p * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// TestQuantileHistogramProperty checks the headline accuracy contract:
// for random sample sets, every estimated quantile lies within one
// log-bucket of the exact reference quantile — i.e. the estimate's
// bucket is the exact value's bucket or an adjacent occupied one, which
// bounds the relative error by the sub-bucket width.
func TestQuantileHistogramProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dists := []struct {
		name string
		gen  func() uint64
	}{
		{"uniform", func() uint64 { return uint64(rng.Intn(1_000_000)) }},
		{"exp", func() uint64 { return uint64(rng.ExpFloat64() * 5000) }},
		{"heavy_tail", func() uint64 {
			v := uint64(rng.Intn(100))
			if rng.Intn(100) == 0 {
				v = uint64(rng.Intn(1 << 30))
			}
			return v
		}},
		{"constant", func() uint64 { return 77 }},
		{"small", func() uint64 { return uint64(rng.Intn(16)) }},
	}
	quantiles := []float64{0.5, 0.9, 0.99, 0.999}
	for _, d := range dists {
		for trial := 0; trial < 4; trial++ {
			q := NewQuantileHistogram()
			samples := make([]uint64, 5000)
			for i := range samples {
				samples[i] = d.gen()
				q.Observe(samples[i])
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			s := q.Snapshot()
			for _, p := range quantiles {
				exact := exactQuantile(samples, p)
				est := s.Quantile(p)
				// Within one log-bucket: the estimate's bucket index is
				// at most one away from the exact value's bucket.
				bi, be := qhBucketIndex(exact), qhBucketIndex(est)
				if be < bi-1 || be > bi+1 {
					t.Errorf("%s trial %d p%.3f: est %d (bucket %d) vs exact %d (bucket %d)",
						d.name, trial, p, est, be, exact, bi)
				}
				// And never outside the observed range.
				if est < s.Min || est > s.Max {
					t.Errorf("%s p%.3f: est %d outside [%d,%d]", d.name, p, est, s.Min, s.Max)
				}
			}
		}
	}
}

func TestQuantileSnapshotSubWindow(t *testing.T) {
	q := NewQuantileHistogram()
	for i := 0; i < 1000; i++ {
		q.Observe(10)
	}
	first := q.Snapshot()
	for i := 0; i < 1000; i++ {
		q.Observe(1000)
	}
	second := q.Snapshot()
	w := second.Sub(first)
	if w.Count != 1000 || w.Sum != 1000*1000 {
		t.Fatalf("window totals: %+v", w)
	}
	// The window contains only the value 1000; p50 must be in its bucket.
	bi := qhBucketIndex(1000)
	if got := qhBucketIndex(w.P50); got != bi {
		t.Fatalf("window p50 = %d (bucket %d), want bucket %d", w.P50, got, bi)
	}
	// Sub with a mismatched (later) snapshot degrades gracefully.
	if bad := first.Sub(second); bad.Count != first.Count {
		t.Fatalf("reversed Sub should return the receiver, got %+v", bad)
	}
	// Empty window.
	if w0 := second.Sub(second); w0.Count != 0 || len(w0.Buckets) != 0 {
		t.Fatalf("self Sub not empty: %+v", w0)
	}
}

func TestRegistryQuantileHistogram(t *testing.T) {
	r := NewRegistry()
	q := r.QuantileHistogram("sojourn_cycles")
	if q == nil {
		t.Fatal("nil quantile histogram from live registry")
	}
	if r.QuantileHistogram("sojourn_cycles") != q {
		t.Fatal("re-registration returned a different instrument")
	}
	for i := uint64(1); i <= 64; i++ {
		q.Observe(i)
	}
	s := r.Snapshot()
	qs, ok := s.Quantiles["sojourn_cycles"]
	if !ok || qs.Count != 64 {
		t.Fatalf("snapshot missing quantiles: %+v", s.Quantiles)
	}
	if s.Quantile("sojourn_cycles").Count != 64 {
		t.Fatal("Snapshot.Quantile accessor")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash should panic")
		}
	}()
	r.Counter("sojourn_cycles")
}

func TestQuantileHistogramConcurrent(t *testing.T) {
	q := NewQuantileHistogram()
	done := make(chan struct{})
	go func() {
		for i := uint64(0); i < 10000; i++ {
			q.Observe(i % 997)
		}
		close(done)
	}()
	for i := 0; i < 100; i++ {
		_ = q.Snapshot()
	}
	<-done
	if got := q.Snapshot().Count; got != 10000 {
		t.Fatalf("count = %d", got)
	}
}

// TestQuantileHistogramConcurrentWindowedSub takes windowed Sub deltas
// while writers observe concurrently: every window must be internally
// consistent (non-negative deltas, bucket counts summing to Count, a
// quantile inside the window's value range) even though the snapshots
// race with the atomic update path.
func TestQuantileHistogramConcurrentWindowedSub(t *testing.T) {
	q := NewQuantileHistogram()
	const writers, perWriter = 4, 50_000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWriter; i++ {
				q.Observe(100 + uint64(rng.Intn(900))) // values in [100, 1000)
			}
		}(w)
	}
	go func() { wg.Wait(); close(stop) }()

	prev := q.Snapshot()
	windows := 0
	for done := false; !done; {
		select {
		case <-stop:
			done = true
		default:
		}
		cur := q.Snapshot()
		w := cur.Sub(prev)
		if w.Count == 0 {
			continue
		}
		windows++
		var bucketSum uint64
		for _, b := range w.Buckets {
			bucketSum += b.Count
		}
		// Count and the bucket array are separate atomics, so a racing
		// snapshot can catch one ahead of the other by at most the
		// in-flight observations; it must never invert the window.
		if bucketSum > w.Count+writers || w.Count > bucketSum+writers {
			t.Fatalf("window buckets sum %d vs count %d", bucketSum, w.Count)
		}
		if p := w.Quantile(0.5); p != 0 && (p < 90 || p > 1100) {
			t.Fatalf("window p50 = %d outside the observed value range", p)
		}
		prev = cur
	}
	if windows == 0 {
		t.Fatal("no non-empty windows observed")
	}
	// The final full-history window equals the total written.
	total := q.Snapshot()
	if total.Count != writers*perWriter {
		t.Fatalf("final count = %d, want %d", total.Count, writers*perWriter)
	}
}
