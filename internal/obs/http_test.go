package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total").Add(2)
	r.Gauge("occ").Set(4)
	h := Handler(r)

	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return sb.String(), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.Contains(body, "hits_total 2") || !strings.Contains(ctype, "text/plain") {
		t.Fatalf("/metrics body %q ctype %q", body, ctype)
	}

	body, ctype = get("/metrics.json")
	if !strings.Contains(ctype, "application/json") {
		t.Fatalf("/metrics.json ctype %q", ctype)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not JSON: %v\n%s", err, body)
	}
	if snap.Counter("hits_total") != 2 || snap.Gauge("occ") != 4 {
		t.Fatalf("/metrics.json snapshot wrong: %s", body)
	}

	body, _ = get("/debug/vars")
	if !strings.Contains(body, "memstats") {
		t.Fatal("/debug/vars missing memstats")
	}

	body, _ = get("/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Fatal("/debug/pprof/ index missing goroutine profile")
	}
}

// TestNewServerTimeouts pins the slow-client hardening: a registry
// server must never accept connections without header/read/idle
// budgets, or one stalled scraper pins a goroutine for the process
// lifetime. WriteTimeout is intentionally zero (pprof profile/trace
// stream for their full duration).
func TestNewServerTimeouts(t *testing.T) {
	srv := NewServer("127.0.0.1:0", NewRegistry())
	if srv.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout not set")
	}
	if srv.ReadTimeout <= 0 {
		t.Error("ReadTimeout not set")
	}
	if srv.IdleTimeout <= 0 {
		t.Error("IdleTimeout not set")
	}
}

// TestHealthEndpoints covers /healthz and /readyz: nil probes default
// to 200, a false ready() flips /readyz to 503 without touching
// /healthz, and a nil ready falls back to healthy.
func TestHealthEndpoints(t *testing.T) {
	status := func(t *testing.T, h *httptest.Server, path string) int {
		t.Helper()
		resp, err := h.Client().Get(h.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	r := NewRegistry()
	plain := httptest.NewServer(Handler(r))
	defer plain.Close()
	if s := status(t, plain, "/healthz"); s != 200 {
		t.Fatalf("nil-probe /healthz = %d", s)
	}
	if s := status(t, plain, "/readyz"); s != 200 {
		t.Fatalf("nil-probe /readyz = %d", s)
	}

	var ready atomic.Bool
	gated := httptest.NewServer(HandlerHealth(r, func() bool { return true }, ready.Load))
	defer gated.Close()
	if s := status(t, gated, "/healthz"); s != 200 {
		t.Fatalf("live /healthz = %d", s)
	}
	if s := status(t, gated, "/readyz"); s != 503 {
		t.Fatalf("not-ready /readyz = %d, want 503", s)
	}
	ready.Store(true)
	if s := status(t, gated, "/readyz"); s != 200 {
		t.Fatalf("ready /readyz = %d", s)
	}

	fallback := httptest.NewServer(HandlerHealth(r, func() bool { return false }, nil))
	defer fallback.Close()
	if s := status(t, fallback, "/healthz"); s != 503 {
		t.Fatalf("unhealthy /healthz = %d, want 503", s)
	}
	if s := status(t, fallback, "/readyz"); s != 503 {
		t.Fatalf("nil ready must fall back to healthy: /readyz = %d, want 503", s)
	}
}
