package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// newTestCapturer builds a capturer over t.TempDir with a flight
// recorder that already holds one event (so flight.json validates).
func newTestCapturer(t *testing.T, opts IncidentOptions) (*IncidentCapturer, string) {
	t.Helper()
	dir := t.TempDir()
	opts.Dir = dir
	if opts.Flight == nil {
		opts.Flight = NewFlightRecorder(64)
		opts.Flight.RecordMsg(FlightReplState, 0, "attached", 1, 0, 0)
	}
	if opts.Registry == nil {
		opts.Registry = NewRegistry()
		opts.Registry.Counter("test_ops_total").Add(7)
	}
	c, err := NewIncidentCapturer(opts)
	if err != nil {
		t.Fatal(err)
	}
	if c == nil {
		t.Fatal("capturer nil despite Dir")
	}
	return c, dir
}

func TestIncidentCaptureRoundtrip(t *testing.T) {
	c, dir := newTestCapturer(t, IncidentOptions{})
	bundle, err := c.Capture("overload", "shard 1 tripped")
	if err != nil {
		t.Fatal(err)
	}
	if bundle == "" {
		t.Fatal("capture suppressed unexpectedly")
	}
	if err := ValidateIncidentBundle(bundle); err != nil {
		t.Fatalf("fresh bundle invalid: %v", err)
	}

	raw, err := os.ReadFile(filepath.Join(bundle, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := ParseIncidentManifest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if m.Trigger != "overload" || m.Reason != "shard 1 tripped" {
		t.Fatalf("manifest identity: %+v", m)
	}
	for _, want := range []string{"manifest.json", "flight.json", "metrics.json", "goroutines.txt", "heap.pprof"} {
		if _, err := os.Stat(filepath.Join(bundle, want)); err != nil {
			t.Errorf("bundle missing %s: %v", want, err)
		}
	}
	// The flight dump must carry the pre-incident event.
	fb, err := os.ReadFile(filepath.Join(bundle, "flight.json"))
	if err != nil {
		t.Fatal(err)
	}
	d, err := ParseFlightDump(fb)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Events) == 0 || d.Events[0].Msg != "attached" {
		t.Fatalf("flight dump events: %+v", d.Events)
	}

	if got, err := ListIncidentBundles(dir); err != nil || len(got) != 1 || got[0] != bundle {
		t.Fatalf("ListIncidentBundles = %v, %v", got, err)
	}
}

func TestIncidentRateLimitAndForceTriggers(t *testing.T) {
	c, _ := newTestCapturer(t, IncidentOptions{MinInterval: time.Hour})
	reg := NewRegistry()
	c.Instrument(reg, "inc")

	if dir, err := c.Capture("overload", "first"); err != nil || dir == "" {
		t.Fatalf("first capture: %q, %v", dir, err)
	}
	// Inside the interval: suppressed, not an error.
	if dir, err := c.Capture("overload", "second"); err != nil || dir != "" {
		t.Fatalf("rate-limited capture: %q, %v", dir, err)
	}
	// Panic and operator triggers bypass the limit.
	for _, trig := range []string{"panic", "sigquit"} {
		if dir, err := c.Capture(trig, "forced"); err != nil || dir == "" {
			t.Fatalf("force trigger %s: %q, %v", trig, dir, err)
		}
	}
	s := reg.Snapshot()
	if got := s.Counter("inc_captures_total"); got != 3 {
		t.Errorf("captures_total = %d, want 3", got)
	}
	if got := s.Counter("inc_suppressed_total"); got != 1 {
		t.Errorf("suppressed_total = %d, want 1", got)
	}
}

func TestIncidentRetentionPrune(t *testing.T) {
	c, dir := newTestCapturer(t, IncidentOptions{MaxBundles: 3, MinInterval: time.Nanosecond})
	var first string
	for i := 0; i < 6; i++ {
		b, err := c.Capture("overload", "episode")
		if err != nil || b == "" {
			t.Fatalf("capture %d: %q, %v", i, b, err)
		}
		if i == 0 {
			first = b
		}
		time.Sleep(2 * time.Millisecond) // distinct timestamps, distinct names
	}
	bundles, err := ListIncidentBundles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 3 {
		t.Fatalf("retained %d bundles, cap 3: %v", len(bundles), bundles)
	}
	if _, err := os.Stat(first); !os.IsNotExist(err) {
		t.Fatalf("oldest bundle survived pruning: %v", err)
	}
	for _, b := range bundles {
		if err := ValidateIncidentBundle(b); err != nil {
			t.Errorf("retained bundle invalid: %v", err)
		}
	}
}

func TestIncidentTamperDetection(t *testing.T) {
	c, _ := newTestCapturer(t, IncidentOptions{})
	bundle, err := c.Capture("sigquit", "freeze")
	if err != nil || bundle == "" {
		t.Fatal(err)
	}

	// Flip a byte in a captured artifact: the per-file sha256 must trip.
	mpath := filepath.Join(bundle, "metrics.json")
	b, _ := os.ReadFile(mpath)
	tampered := append([]byte(nil), b...)
	tampered[len(tampered)/2] ^= 0x20
	if err := os.WriteFile(mpath, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := ValidateIncidentBundle(bundle); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("tampered artifact passed validation: %v", err)
	}
	os.WriteFile(mpath, b, 0o644)
	if err := ValidateIncidentBundle(bundle); err != nil {
		t.Fatalf("restored bundle invalid: %v", err)
	}

	// Editing the manifest itself trips the self-checksum.
	manPath := filepath.Join(bundle, "manifest.json")
	raw, _ := os.ReadFile(manPath)
	var m IncidentManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	m.Trigger = "benign"
	forged, _ := json.Marshal(m)
	if _, err := ParseIncidentManifest(forged); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("forged manifest accepted: %v", err)
	}

	// Deleting a listed file is detected.
	os.Remove(mpath)
	if err := ValidateIncidentBundle(bundle); err == nil {
		t.Fatal("bundle with a missing artifact passed validation")
	}
}

func TestIncidentManifestRejectsEscapes(t *testing.T) {
	dir := t.TempDir()
	// A well-formed metrics.json so only the escaping entry can fail.
	metrics := []byte(`{}`)
	os.WriteFile(filepath.Join(dir, "metrics.json"), metrics, 0o644)
	msum := sha256.Sum256(metrics)
	gor := []byte("goroutine 1 [running]:\n")
	os.WriteFile(filepath.Join(dir, "goroutines.txt"), gor, 0o644)
	gsum := sha256.Sum256(gor)
	man := IncidentManifest{
		Schema:     IncidentSchema,
		Trigger:    "overload",
		CapturedAt: time.Now(),
		Files: map[string]string{
			"metrics.json":   hex.EncodeToString(msum[:]),
			"goroutines.txt": hex.EncodeToString(gsum[:]),
			"../outside.txt": strings.Repeat("0", 64),
		},
	}
	sum, err := manifestChecksum(man)
	if err != nil {
		t.Fatal(err)
	}
	man.Checksum = sum
	b, _ := json.MarshalIndent(man, "", " ")
	os.WriteFile(filepath.Join(dir, "manifest.json"), b, 0o644)
	if err := ValidateIncidentBundle(dir); err == nil || !strings.Contains(err.Error(), "escapes") {
		t.Fatalf("path-escaping manifest accepted: %v", err)
	}
}

func TestIncidentNilDisabled(t *testing.T) {
	c, err := NewIncidentCapturer(IncidentOptions{})
	if err != nil || c != nil {
		t.Fatalf("empty Dir: %v, %v", c, err)
	}
	if dir, err := c.Capture("overload", "x"); dir != "" || err != nil {
		t.Fatalf("nil Capture: %q, %v", dir, err)
	}
	c.CaptureAsync("overload", "x")
	c.Instrument(NewRegistry(), "inc")
	// Nil-safe PanicCapture still re-panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("PanicCapture swallowed the panic")
			}
		}()
		defer c.PanicCapture()
		panic("boom")
	}()
}

func TestIncidentPanicCaptureWritesBundle(t *testing.T) {
	c, dir := newTestCapturer(t, IncidentOptions{MinInterval: time.Hour})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic not re-raised")
			}
		}()
		defer c.PanicCapture()
		panic("shard exploded")
	}()
	bundles, err := ListIncidentBundles(dir)
	if err != nil || len(bundles) != 1 {
		t.Fatalf("bundles after panic: %v, %v", bundles, err)
	}
	raw, _ := os.ReadFile(filepath.Join(bundles[0], "manifest.json"))
	m, err := ParseIncidentManifest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if m.Trigger != "panic" || !strings.Contains(m.Reason, "shard exploded") {
		t.Fatalf("panic manifest: %+v", m)
	}
}

// FuzzIncidentManifest asserts the manifest parser never panics and
// never accepts a document whose self-checksum does not bind its
// contents.
func FuzzIncidentManifest(f *testing.F) {
	man := IncidentManifest{
		Schema:     IncidentSchema,
		Trigger:    "overload",
		Reason:     "seed",
		CapturedAt: time.Unix(1700000000, 0).UTC(),
		Commit:     "deadbeef",
		GoVersion:  "go1.24",
		Files:      map[string]string{"metrics.json": strings.Repeat("a", 64)},
	}
	sum, err := manifestChecksum(man)
	if err != nil {
		f.Fatal(err)
	}
	man.Checksum = sum
	valid, _ := json.Marshal(man)
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"schema":"bmwincident/v1"}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"schema":"bmwincident/v1","trigger":"x","captured_at":"2024-01-01T00:00:00Z","files":{"a":"b"},"checksum":"00"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseIncidentManifest(data)
		if err != nil {
			return
		}
		// Accepted manifests must be internally consistent: schema,
		// identity fields, and a checksum that re-verifies.
		if m.Schema != IncidentSchema || m.Trigger == "" || m.CapturedAt.IsZero() || len(m.Files) == 0 {
			t.Fatalf("parser accepted inconsistent manifest: %+v", m)
		}
		want, err := manifestChecksum(m)
		if err != nil {
			t.Fatal(err)
		}
		if m.Checksum != want {
			t.Fatalf("parser accepted checksum %q, recomputed %q", m.Checksum, want)
		}
	})
}
