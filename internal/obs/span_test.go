package obs

import (
	"bytes"
	"sync"
	"testing"
)

func TestStageNames(t *testing.T) {
	want := []string{"issue", "decode", "enqueue", "dequeue", "apply", "commit", "ack", "write"}
	for st := Stage(0); st < NumStages; st++ {
		if st.String() != want[st] {
			t.Errorf("stage %d = %q, want %q", st, st.String(), want[st])
		}
	}
	if Stage(200).String() != "invalid" {
		t.Errorf("out-of-range stage name = %q", Stage(200).String())
	}
}

func TestStageMetricNames(t *testing.T) {
	names := StageMetricNames("x")
	if len(names) != int(NumStages) {
		t.Fatalf("got %d names, want %d", len(names), NumStages)
	}
	if names[0] != "x_stage_total_ns" {
		t.Errorf("total metric = %q", names[0])
	}
	if names[StageWrite] != "x_stage_write_ns" {
		t.Errorf("write metric = %q", names[StageWrite])
	}
}

func TestNilTracerAndSpan(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin(1, 0)
	if sp != nil {
		t.Fatal("nil tracer minted a span")
	}
	// All nil-receiver paths must be no-ops.
	sp.Stamp(StageDecode)
	sp.StampAt(StageApply, 5)
	if sp.Track() != 0 {
		t.Error("nil span track")
	}
	if ts := sp.Stages(); ts != ([NumStages]int64{}) {
		t.Error("nil span stages non-zero")
	}
	tr.Finish(sp)
	tr.NameTrack(1, "x")
	if NewTracer(TracerOptions{}) != nil {
		t.Error("NewTracer with no sinks should return nil")
	}
}

func TestSpanStampFirstWins(t *testing.T) {
	sp := new(Span)
	sp.StampAt(StageDecode, 100)
	sp.StampAt(StageDecode, 50)
	sp.Stamp(StageDecode)
	if got := sp.Stages()[StageDecode]; got != 100 {
		t.Fatalf("first-wins violated: got %d, want 100", got)
	}
	// StampAt with 0 must not "stamp" (0 means unstamped).
	sp.StampAt(StageApply, 0)
	if got := sp.Stages()[StageApply]; got != 0 {
		t.Fatalf("StampAt(0) stamped: %d", got)
	}
}

func TestTracerAggregates(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(TracerOptions{Registry: reg, Prefix: "t"})
	if tr == nil {
		t.Fatal("tracer disabled with a registry")
	}
	for i := 0; i < 10; i++ {
		sp := tr.Begin(1, int64(1000*(i+1)))
		base := sp.Stages()[StageIssue]
		for st := StageDecode; st < NumStages; st++ {
			sp.StampAt(st, base+int64(st)*10)
		}
		tr.Finish(sp)
	}
	for st := Stage(0); st < NumStages; st++ {
		snap := reg.QuantileHistogram(StageMetricName("t", st)).Snapshot()
		if snap.Count != 10 {
			t.Errorf("stage %v: count %d, want 10", st, snap.Count)
		}
		want := uint64(10)
		if st == StageIssue {
			want = uint64(NumStages-1) * 10 // whole span: issue → write
		}
		if snap.Min != want || snap.Max != want {
			t.Errorf("stage %v: min/max %d/%d, want %d", st, snap.Min, snap.Max, want)
		}
	}
}

func TestTracerSkippedStages(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(TracerOptions{Registry: reg, Prefix: "t"})
	sp := tr.Begin(1, 100)
	// Only decode and write stamped: write's segment spans from decode.
	sp.StampAt(StageDecode, 150)
	sp.StampAt(StageWrite, 400)
	tr.Finish(sp)
	if snap := reg.QuantileHistogram(StageMetricName("t", StageWrite)).Snapshot(); snap.Max != 250 {
		t.Errorf("write segment %d, want 250 (decode→write)", snap.Max)
	}
	if snap := reg.QuantileHistogram(StageMetricName("t", StageApply)).Snapshot(); snap.Count != 0 {
		t.Errorf("apply observed %d segments for an unstamped stage", snap.Count)
	}
	if snap := reg.QuantileHistogram(StageMetricName("t", StageIssue)).Snapshot(); snap.Max != 300 {
		t.Errorf("total %d, want 300", snap.Max)
	}
}

func TestTracerSampling(t *testing.T) {
	reg := NewRegistry()
	rec := NewTraceRecorder()
	tr := NewTracer(TracerOptions{Registry: reg, Prefix: "t", Recorder: rec, SampleEvery: 4})
	tr.NameTrack(7, "conn 7")
	for i := 0; i < 16; i++ {
		sp := tr.Begin(7, 0)
		sp.Stamp(StageDecode)
		sp.Stamp(StageWrite)
		tr.Finish(sp)
	}
	if got := reg.Counter("t_spans_total").Value(); got != 16 {
		t.Errorf("spans_total %d, want 16", got)
	}
	if got := reg.Counter("t_spans_sampled_total").Value(); got != 4 {
		t.Errorf("spans_sampled_total %d, want 4", got)
	}
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	tr2, err := ParseTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(tr2); err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	slices := 0
	for _, ev := range tr2.TraceEvents {
		if ev.Phase == "X" {
			slices++
		}
	}
	// 4 sampled spans × 2 stamped segments each.
	if slices != 8 {
		t.Errorf("exported %d slices, want 8", slices)
	}
}

func TestTracerConcurrentStampMonotonic(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(TracerOptions{Registry: reg, Prefix: "t"})
	var bad int
	tr.OnFinish = func(track int64, ts [NumStages]int64) {
		prev := int64(0)
		for st := Stage(0); st < NumStages; st++ {
			if ts[st] == 0 {
				continue
			}
			if ts[st] < prev {
				bad++
			}
			prev = ts[st]
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		sp := tr.Begin(int64(i), 0)
		sp.Stamp(StageDecode)
		sp.Stamp(StageEnqueue)
		wg.Add(2)
		// Racing stampers, as shard goroutines would be.
		go func() { defer wg.Done(); sp.Stamp(StageDequeue); sp.Stamp(StageApply) }()
		go func() { defer wg.Done(); sp.Stamp(StageDequeue); sp.Stamp(StageApply) }()
		wg.Wait()
		sp.Stamp(StageWrite)
		tr.Finish(sp)
	}
	if bad != 0 {
		t.Fatalf("%d non-monotonic stage sequences", bad)
	}
}

func TestSpanPoolReuse(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(TracerOptions{Registry: reg, Prefix: "t"})
	sp := tr.Begin(3, 0)
	sp.Stamp(StageDecode)
	tr.Finish(sp)
	sp2 := tr.Begin(9, 0)
	if got := sp2.Stages()[StageDecode]; got != 0 {
		t.Fatalf("pooled span kept stale decode stamp %d", got)
	}
	if sp2.Track() != 9 {
		t.Fatalf("pooled span track %d, want 9", sp2.Track())
	}
	tr.Finish(sp2)
}
