package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// QuantileHistogram is an HDR-style log-linear histogram of uint64
// observations (sojourn cycles, packet latencies in ns) built for
// quantile estimation without storing raw samples. Values are bucketed
// by a power-of-two major bucket split into 2^qhSubBits linear
// sub-buckets, so every estimate carries at most ~6.25% relative error
// (one log-bucket). Values below 2^qhSubBits are recorded exactly.
//
// Like the other obs instruments it is lock-free (plain atomics on the
// update path) and every method is a no-op on a nil receiver, so an
// uninstrumented pipeline pays only the enclosing nil branch.
type QuantileHistogram struct {
	buckets []atomic.Uint64 // qhBucketCount fixed log-linear buckets
	count   atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Uint64 // initialised to MaxUint64
	max     atomic.Uint64
}

const (
	// qhSubBits is the number of linear sub-bucket bits per power-of-two
	// major bucket: 16 sub-buckets, 1/16 = 6.25% max relative error.
	qhSubBits  = 4
	qhSubCount = 1 << qhSubBits
	// qhBucketCount covers the full uint64 range: values 0..15 map to
	// buckets 0..15 exactly; every further power of two contributes 16
	// sub-buckets, the last major bucket holding the top bit 63.
	qhBucketCount = (64 - qhSubBits + 1) << qhSubBits
)

// NewQuantileHistogram returns an empty histogram ready for use.
func NewQuantileHistogram() *QuantileHistogram {
	q := &QuantileHistogram{buckets: make([]atomic.Uint64, qhBucketCount)}
	q.min.Store(math.MaxUint64)
	return q
}

// qhBucketIndex maps a value to its log-linear bucket.
func qhBucketIndex(v uint64) int {
	if v < qhSubCount {
		return int(v)
	}
	k := bits.Len64(v) - 1 // position of the leading bit, >= qhSubBits
	sub := (v >> (uint(k) - qhSubBits)) - qhSubCount
	return ((k - qhSubBits + 1) << qhSubBits) + int(sub)
}

// qhBucketLow returns the smallest value mapping to bucket i.
func qhBucketLow(i int) uint64 {
	if i < qhSubCount {
		return uint64(i)
	}
	e := uint(i >> qhSubBits) // >= 1
	sub := uint64(i & (qhSubCount - 1))
	return (qhSubCount + sub) << (e - 1)
}

// qhBucketHigh returns the largest value mapping to bucket i.
func qhBucketHigh(i int) uint64 {
	if i < qhSubCount {
		return uint64(i)
	}
	if i+1 >= qhBucketCount {
		return math.MaxUint64
	}
	return qhBucketLow(i+1) - 1
}

// Observe records one value.
func (q *QuantileHistogram) Observe(v uint64) {
	if q == nil {
		return
	}
	q.buckets[qhBucketIndex(v)].Add(1)
	q.count.Add(1)
	q.sum.Add(v)
	for {
		old := q.min.Load()
		if old <= v || q.min.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := q.max.Load()
		if old >= v || q.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// ObserveN records a value n times with one update per field — the
// bulk form the runtime-telemetry collector uses to replay histogram
// deltas without a per-count loop.
func (q *QuantileHistogram) ObserveN(v, n uint64) {
	if q == nil || n == 0 {
		return
	}
	q.buckets[qhBucketIndex(v)].Add(n)
	q.count.Add(n)
	q.sum.Add(v * n)
	for {
		old := q.min.Load()
		if old <= v || q.min.CompareAndSwap(old, v) {
			break
		}
	}
	for {
		old := q.max.Load()
		if old >= v || q.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// Count returns the number of observations (0 on nil).
func (q *QuantileHistogram) Count() uint64 {
	if q == nil {
		return 0
	}
	return q.count.Load()
}

// QuantileBucket is one occupied log-linear bucket in a snapshot.
// Low/High are the inclusive value range the bucket covers.
type QuantileBucket struct {
	Index int    `json:"index"`
	Low   uint64 `json:"low"`
	High  uint64 `json:"high"`
	Count uint64 `json:"count"`
}

// QuantileSnapshot is a QuantileHistogram's state at snapshot time:
// totals, extremes, the standard latency quantiles precomputed, and the
// occupied buckets (sparse) so windowed deltas and custom quantiles can
// be derived later.
type QuantileSnapshot struct {
	Count   uint64           `json:"count"`
	Sum     uint64           `json:"sum"`
	Min     uint64           `json:"min"`
	Max     uint64           `json:"max"`
	P50     uint64           `json:"p50"`
	P90     uint64           `json:"p90"`
	P99     uint64           `json:"p99"`
	P999    uint64           `json:"p999"`
	Buckets []QuantileBucket `json:"buckets,omitempty"`
}

// Snapshot captures the histogram. A nil or empty histogram yields a
// zero snapshot (all quantiles 0 — never NaN).
func (q *QuantileHistogram) Snapshot() QuantileSnapshot {
	var s QuantileSnapshot
	if q == nil {
		return s
	}
	s.Count = q.count.Load()
	s.Sum = q.sum.Load()
	for i := range q.buckets {
		if n := q.buckets[i].Load(); n != 0 {
			s.Buckets = append(s.Buckets, QuantileBucket{
				Index: i, Low: qhBucketLow(i), High: qhBucketHigh(i), Count: n,
			})
		}
	}
	if s.Count == 0 {
		return s
	}
	s.Min = q.min.Load()
	s.Max = q.max.Load()
	s.fillQuantiles()
	return s
}

// fillQuantiles recomputes P50/P90/P99/P999 from Buckets.
func (s *QuantileSnapshot) fillQuantiles() {
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	s.P999 = s.Quantile(0.999)
}

// Quantile estimates the p-quantile (0 < p <= 1) from the bucketed
// counts: the representative value of the bucket holding the ceil(p*N)th
// smallest observation, clamped to the observed [Min, Max] range.
// Returns 0 on an empty snapshot.
func (s QuantileSnapshot) Quantile(p float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(p * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	if target > s.Count {
		target = s.Count
	}
	cum := uint64(0)
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= target {
			est := b.Low + (b.High-b.Low)/2 // bucket midpoint
			if est < s.Min {
				est = s.Min
			}
			if s.Max != 0 && est > s.Max {
				est = s.Max
			}
			return est
		}
	}
	return s.Max
}

// Mean returns the average observation (0 when empty — never NaN).
func (s QuantileSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Sub returns the windowed snapshot covering the observations recorded
// between prev and s (prev must be an earlier snapshot of the same
// histogram). Quantiles are recomputed over the window; Min/Max are
// bounded by the window's occupied buckets since exact extremes of a
// window are not tracked.
func (s QuantileSnapshot) Sub(prev QuantileSnapshot) QuantileSnapshot {
	var w QuantileSnapshot
	if s.Count < prev.Count || s.Sum < prev.Sum {
		// Not actually an earlier snapshot of the same histogram;
		// return the later one unchanged rather than underflowing.
		return s
	}
	w.Count = s.Count - prev.Count
	w.Sum = s.Sum - prev.Sum
	prevAt := make(map[int]uint64, len(prev.Buckets))
	for _, b := range prev.Buckets {
		prevAt[b.Index] = b.Count
	}
	for _, b := range s.Buckets {
		if d := b.Count - prevAt[b.Index]; d != 0 {
			w.Buckets = append(w.Buckets, QuantileBucket{
				Index: b.Index, Low: b.Low, High: b.High, Count: d,
			})
		}
	}
	if w.Count == 0 || len(w.Buckets) == 0 {
		return w
	}
	w.Min = w.Buckets[0].Low
	w.Max = w.Buckets[len(w.Buckets)-1].High
	w.fillQuantiles()
	return w
}
