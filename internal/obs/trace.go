package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// TraceEvent is one Chrome Trace Event (the JSON array format read by
// chrome://tracing and ui.perfetto.dev). Ts and Dur are in
// microseconds; the simulators map 1 cycle = 1 µs so Perfetto's
// timeline reads directly in cycles.
type TraceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	Pid   int64          `json:"pid"`
	Tid   int64          `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// Trace is a complete Chrome Trace Event file: the JSON object format
// with a traceEvents array, which both viewers accept.
type Trace struct {
	TraceEvents []TraceEvent `json:"traceEvents"`
}

// maxTraceEvents caps recorder memory; past it, events are counted as
// dropped instead of stored so a long soak cannot OOM.
const maxTraceEvents = 1 << 20

// TraceRecorder accumulates trace events. All methods are safe for
// concurrent use and no-ops on a nil recorder, mirroring the metrics
// instruments: a simulator holds one pointer and pays one nil branch
// when tracing is off.
type TraceRecorder struct {
	mu      sync.Mutex
	events  []TraceEvent
	dropped uint64
}

// NewTraceRecorder returns an empty recorder.
func NewTraceRecorder() *TraceRecorder {
	return &TraceRecorder{}
}

func (t *TraceRecorder) add(ev TraceEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) >= maxTraceEvents {
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

// ProcessName labels a pid track group (metadata event).
func (t *TraceRecorder) ProcessName(pid int64, name string) {
	t.add(TraceEvent{Name: "process_name", Phase: "M", Pid: pid,
		Args: map[string]any{"name": name}})
}

// ThreadName labels a tid track within a pid (metadata event).
func (t *TraceRecorder) ThreadName(pid, tid int64, name string) {
	t.add(TraceEvent{Name: "thread_name", Phase: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name}})
}

// Slice records a complete duration event ("X"): name on track
// (pid, tid) from cycle ts lasting dur cycles.
func (t *TraceRecorder) Slice(pid, tid, ts, dur int64, name string, args map[string]any) {
	if dur <= 0 {
		dur = 1
	}
	t.add(TraceEvent{Name: name, Phase: "X", Ts: ts, Dur: dur, Pid: pid, Tid: tid, Args: args})
}

// Begin opens a duration event ("B") to be closed by End on the same
// track. Used for spans whose length isn't known up front (refill
// strands, lift waits).
func (t *TraceRecorder) Begin(pid, tid, ts int64, name string, args map[string]any) {
	t.add(TraceEvent{Name: name, Phase: "B", Ts: ts, Pid: pid, Tid: tid, Args: args})
}

// End closes the most recent Begin on the track ("E").
func (t *TraceRecorder) End(pid, tid, ts int64) {
	t.add(TraceEvent{Name: "", Phase: "E", Ts: ts, Pid: pid, Tid: tid})
}

// Instant records a zero-duration marker ("i") with thread scope.
func (t *TraceRecorder) Instant(pid, tid, ts int64, name string, args map[string]any) {
	t.add(TraceEvent{Name: name, Phase: "i", Ts: ts, Pid: pid, Tid: tid, Scope: "t", Args: args})
}

// Counter records a counter sample ("C"); Perfetto renders each key in
// args as a stacked area series on its own track.
func (t *TraceRecorder) Counter(pid, ts int64, name string, values map[string]any) {
	t.add(TraceEvent{Name: name, Phase: "C", Ts: ts, Pid: pid, Args: values})
}

// QuantileCounter records the standard latency quantiles of a snapshot
// as one counter sample, so sojourn percentiles render as stacked
// series alongside the cycle waveform.
func (t *TraceRecorder) QuantileCounter(pid, ts int64, name string, s QuantileSnapshot) {
	if t == nil || s.Count == 0 {
		return
	}
	t.Counter(pid, ts, name, map[string]any{
		"p50": s.P50, "p90": s.P90, "p99": s.P99, "p999": s.P999,
	})
}

// Len returns the number of recorded events.
func (t *TraceRecorder) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns the number of events discarded after the cap.
func (t *TraceRecorder) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns a copy of the recorded events in arrival order.
func (t *TraceRecorder) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// WriteTo emits the trace as Chrome Trace Event JSON, loadable in
// ui.perfetto.dev or chrome://tracing.
func (t *TraceRecorder) WriteTo(w io.Writer) (int64, error) {
	tr := Trace{TraceEvents: t.Events()}
	if tr.TraceEvents == nil {
		tr.TraceEvents = []TraceEvent{}
	}
	b, err := json.Marshal(tr)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(b)
	return int64(n), err
}

// ParseTrace decodes Chrome Trace Event JSON (object-with-traceEvents
// format) — the inverse of WriteTo, used by tests and tools.
func ParseTrace(b []byte) (Trace, error) {
	var tr Trace
	if err := json.Unmarshal(b, &tr); err != nil {
		return Trace{}, err
	}
	return tr, nil
}

// validPhases are the Trace Event phases this package emits.
var validPhases = map[string]bool{
	"X": true, "B": true, "E": true, "i": true, "C": true, "M": true,
}

// ValidateTrace checks structural conformance with the Chrome Trace
// Event schema as this package uses it: known phases, non-negative
// timestamps, named non-E events, positive durations on X slices, and
// balanced B/E pairs per (pid, tid) track.
func ValidateTrace(tr Trace) error {
	open := map[[2]int64]int{}
	for i, ev := range tr.TraceEvents {
		if !validPhases[ev.Phase] {
			return fmt.Errorf("event %d: unknown phase %q", i, ev.Phase)
		}
		if ev.Ts < 0 {
			return fmt.Errorf("event %d (%s): negative ts %d", i, ev.Name, ev.Ts)
		}
		switch ev.Phase {
		case "X":
			if ev.Dur <= 0 {
				return fmt.Errorf("event %d (%s): X slice with dur %d", i, ev.Name, ev.Dur)
			}
		case "B":
			open[[2]int64{ev.Pid, ev.Tid}]++
		case "E":
			k := [2]int64{ev.Pid, ev.Tid}
			if open[k] == 0 {
				return fmt.Errorf("event %d: E without matching B on pid=%d tid=%d", i, ev.Pid, ev.Tid)
			}
			open[k]--
		}
		if ev.Name == "" && ev.Phase != "E" {
			return fmt.Errorf("event %d: empty name on phase %q", i, ev.Phase)
		}
	}
	for k, n := range open {
		if n != 0 {
			return fmt.Errorf("pid=%d tid=%d: %d unclosed B events", k[0], k[1], n)
		}
	}
	return nil
}
