package obs

import (
	"testing"
	"time"
)

// sloHarness drives an SLOEngine with a fake clock and a scripted
// source registry, recording every OnChange transition.
type sloHarness struct {
	src   *Registry
	exp   *Registry
	eng   *SLOEngine
	now   time.Time
	trans []string // "name:from->to"
}

func newSLOHarness(t *testing.T, objs []Objective, fl *FlightRecorder) *sloHarness {
	t.Helper()
	h := &sloHarness{src: NewRegistry(), exp: NewRegistry(), now: time.Unix(1000, 0)}
	h.eng = NewSLOEngine(SLOOptions{
		Source:      h.src,
		Registry:    h.exp,
		Prefix:      "slo",
		ShortWindow: 10 * time.Second,
		LongWindow:  60 * time.Second,
		Objectives:  objs,
		Flight:      fl,
		OnChange: func(o Objective, from, to SLOState, _ float64) {
			h.trans = append(h.trans, o.Name+":"+from.String()+"->"+to.String())
		},
	})
	if h.eng == nil {
		t.Fatal("engine nil despite objectives")
	}
	return h
}

// tick advances the fake clock and evaluates.
func (h *sloHarness) tick(d time.Duration) {
	h.now = h.now.Add(d)
	h.eng.Tick(h.now)
}

func (h *sloHarness) state(t *testing.T, name string) string {
	t.Helper()
	for _, o := range h.eng.Status().Objectives {
		if o.Name == name {
			return o.State
		}
	}
	t.Fatalf("objective %q missing from status", name)
	return ""
}

func TestSLOLatencyBurnRateTransitions(t *testing.T) {
	fl := NewFlightRecorder(64)
	h := newSLOHarness(t, []Objective{{
		Name: "p99", Kind: ObjectiveLatency, Metric: "lat",
		Quantile: 0.99, Bound: 1000,
	}}, fl)
	q := h.src.QuantileHistogram("lat")

	h.tick(0) // baseline sample
	if got := h.state(t, "p99"); got != "ok" {
		t.Fatalf("initial state %q", got)
	}

	// Healthy traffic: fast observations, short window measurable, ok.
	for i := 0; i < 10000; i++ {
		q.Observe(100)
	}
	h.tick(10 * time.Second)
	if got := h.state(t, "p99"); got != "ok" {
		t.Fatalf("healthy state %q", got)
	}

	// A short burst of slow requests: the short window violates but the
	// long window (dominated by the 10k fast obs) does not — warn.
	for i := 0; i < 50; i++ {
		q.Observe(50_000)
	}
	h.tick(10 * time.Second)
	if got := h.state(t, "p99"); got != "warn" {
		t.Fatalf("burst state %q, want warn", got)
	}

	// Sustained slowness: both windows violate — page.
	for i := 0; i < 20000; i++ {
		q.Observe(50_000)
	}
	h.tick(10 * time.Second)
	if got := h.state(t, "p99"); got != "page" {
		t.Fatalf("sustained state %q, want page", got)
	}

	// Recovery: the short window sees only fast traffic again — ok,
	// even while the long window still remembers the incident.
	for i := 0; i < 1000; i++ {
		q.Observe(100)
	}
	h.tick(10 * time.Second)
	if got := h.state(t, "p99"); got != "ok" {
		t.Fatalf("recovered state %q, want ok", got)
	}

	want := []string{"p99:ok->warn", "p99:warn->page", "p99:page->ok"}
	if len(h.trans) != len(want) {
		t.Fatalf("transitions %v, want %v", h.trans, want)
	}
	for i := range want {
		if h.trans[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q", i, h.trans[i], want[i])
		}
	}

	// Exposition: counters count entries into each state, the flight
	// recorder holds one FlightSLO event per transition.
	s := h.exp.Snapshot()
	if got := s.Counter("slo_p99_warn_total"); got != 1 {
		t.Errorf("warn_total = %d", got)
	}
	if got := s.Counter("slo_p99_page_total"); got != 1 {
		t.Errorf("page_total = %d", got)
	}
	if got := s.Gauge("slo_p99_bound"); got != 1000 {
		t.Errorf("bound gauge = %v", got)
	}
	slo := 0
	for _, ev := range fl.Dump().Events {
		if ev.Kind == "slo" {
			slo++
		}
	}
	if slo != len(want) {
		t.Errorf("flight recorded %d slo events, want %d", slo, len(want))
	}
}

func TestSLOUnmeasurableWindowNeverViolates(t *testing.T) {
	h := newSLOHarness(t, []Objective{{
		Name: "p99", Kind: ObjectiveLatency, Metric: "lat",
		Quantile: 0.99, Bound: 1,
	}}, nil)
	h.src.QuantileHistogram("lat") // registered, never observed
	h.tick(0)
	for i := 0; i < 10; i++ {
		h.tick(10 * time.Second)
	}
	if got := h.state(t, "p99"); got != "ok" {
		t.Fatalf("idle state %q, want ok (no traffic burns no budget)", got)
	}
	if len(h.trans) != 0 {
		t.Fatalf("idle transitions: %v", h.trans)
	}
}

func TestSLOErrorRatio(t *testing.T) {
	h := newSLOHarness(t, []Objective{{
		Name: "availability", Kind: ObjectiveErrorRatio, Bound: 0.01,
		Bad: []string{"shed"}, Total: []string{"shed", "ok"},
	}}, nil)
	bad, good := h.src.Counter("shed"), h.src.Counter("ok")

	h.tick(0)
	good.Add(1000)
	h.tick(10 * time.Second)
	if got := h.state(t, "availability"); got != "ok" {
		t.Fatalf("clean state %q", got)
	}

	// 10% shed in the short window: warn (the long window is still
	// diluted by the clean first interval... with 100/2100 ≈ 4.8% it
	// violates too once sheds dominate, so drive only a single bad
	// interval first).
	bad.Add(100)
	good.Add(900)
	h.tick(10 * time.Second)
	if got := h.state(t, "availability"); got == "ok" {
		t.Fatalf("10%% shed state %q, want warn or page", got)
	}

	// Fully clean again: ok.
	good.Add(10_000)
	h.tick(10 * time.Second)
	if got := h.state(t, "availability"); got != "ok" {
		t.Fatalf("recovered state %q", got)
	}
}

func TestSLOGaugeLongWindowUsesMinimum(t *testing.T) {
	h := newSLOHarness(t, []Objective{{
		Name: "repl_lag", Kind: ObjectiveGaugeMax, Metric: "lag", Bound: 1000,
	}}, nil)
	lag := h.src.Gauge("lag")

	h.tick(0)
	lag.Set(50)
	h.tick(10 * time.Second)
	if got := h.state(t, "repl_lag"); got != "ok" {
		t.Fatalf("low lag state %q", got)
	}

	// Lag spikes: the latest sample violates (warn) but the long-window
	// minimum still includes the low samples, so no page yet.
	lag.Set(5000)
	h.tick(10 * time.Second)
	if got := h.state(t, "repl_lag"); got != "warn" {
		t.Fatalf("spike state %q, want warn", got)
	}

	// Keep it high until every sample inside the long window is above
	// the bound: page. 7 more ticks pushes the low samples out of the
	// 60s window.
	for i := 0; i < 7; i++ {
		h.tick(10 * time.Second)
	}
	if got := h.state(t, "repl_lag"); got != "page" {
		t.Fatalf("sustained lag state %q, want page", got)
	}

	lag.Set(10)
	h.tick(10 * time.Second)
	if got := h.state(t, "repl_lag"); got != "ok" {
		t.Fatalf("drained lag state %q", got)
	}
}

func TestSLOEngineNilAndDisabled(t *testing.T) {
	var e *SLOEngine
	e.Tick(time.Now())
	e.Start(time.Millisecond)
	e.Stop()
	st := e.Status()
	if st.Worst != "ok" || len(st.Objectives) != 0 {
		t.Fatalf("nil status: %+v", st)
	}
	if NewSLOEngine(SLOOptions{}) != nil {
		t.Fatal("engine without source must be nil")
	}
	if NewSLOEngine(SLOOptions{Source: NewRegistry()}) != nil {
		t.Fatal("engine without objectives must be nil")
	}
}

func TestSLOStatusWorst(t *testing.T) {
	h := newSLOHarness(t, []Objective{
		{Name: "a", Kind: ObjectiveGaugeMax, Metric: "g1", Bound: 10},
		{Name: "b", Kind: ObjectiveGaugeMax, Metric: "g2", Bound: 10},
	}, nil)
	h.src.Gauge("g1").Set(1)
	h.src.Gauge("g2").Set(1)
	h.tick(0) // baseline: both healthy, so the long-window minimum stays low
	h.src.Gauge("g2").Set(100)
	h.tick(10 * time.Second)
	st := h.eng.Status()
	if st.Worst != "warn" {
		t.Fatalf("worst = %q, want warn (b violating short only)", st.Worst)
	}
	if st.ShortWindowMS != 10_000 || st.LongWindowMS != 60_000 {
		t.Fatalf("windows: %+v", st)
	}
}

func TestParseSLOSpec(t *testing.T) {
	names := SLONames{
		LatencyMetric: "lat",
		BadCounters:   []string{"bad"},
		TotalCounters: []string{"bad", "good"},
		LagGauge:      "lag",
	}
	objs, err := ParseSLOSpec("p99<10ms, availability>0.999, lag<5000, p50<500us", names)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 4 {
		t.Fatalf("got %d objectives: %+v", len(objs), objs)
	}
	byName := map[string]Objective{}
	for _, o := range objs {
		byName[o.Name] = o
	}
	if o := byName["p99"]; o.Kind != ObjectiveLatency || o.Quantile != 0.99 || o.Bound != 10e6 || o.Metric != "lat" {
		t.Fatalf("p99: %+v", o)
	}
	if o := byName["p50"]; o.Bound != 500e3 {
		t.Fatalf("p50: %+v", o)
	}
	if o := byName["availability"]; o.Kind != ObjectiveErrorRatio || o.Bound < 0.000999 || o.Bound > 0.001001 {
		t.Fatalf("availability: %+v", o)
	}
	if o := byName["repl_lag"]; o.Kind != ObjectiveGaugeMax || o.Bound != 5000 || o.Metric != "lag" {
		t.Fatalf("lag: %+v", o)
	}

	if objs, err := ParseSLOSpec("  ,, ", names); err != nil || len(objs) != 0 {
		t.Fatalf("blank spec: %v %v", objs, err)
	}
	for _, bad := range []string{
		"p999<10ms",       // quantile >= 100
		"p99<fast",        // unparseable duration
		"availability>2",  // target out of range
		"lag<-3",          // negative bound
		"throughput>1000", // unknown objective form
	} {
		if _, err := ParseSLOSpec(bad, names); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	// Latency and lag objectives require the daemon to supply metrics.
	if _, err := ParseSLOSpec("p99<10ms", SLONames{}); err == nil {
		t.Error("latency objective without a latency metric accepted")
	}
	if _, err := ParseSLOSpec("lag<10", SLONames{}); err == nil {
		t.Error("lag objective without a lag gauge accepted")
	}
}
