// Package wire is the dependency-free binary protocol that serves the
// sharded scheduling engine over a byte stream: length-prefixed,
// CRC-checked, versioned frames carrying pipelined, batched queue
// operations. cmd/bmwd serves it; cmd/bmwload and the Client here speak
// it.
//
// Frame layout (all integers little-endian):
//
//	offset size
//	0      4    magic "BMW1"
//	4      1    protocol version (2)
//	5      1    frame type
//	6      2    flags (must be zero in version 2)
//	8      8    request id (echoed verbatim in the response)
//	16     4    payload length (0 .. MaxPayload)
//	20     4    CRC-32C over bytes [0,20)
//	24     n    payload
//	24+n   4    CRC-32C over the payload bytes
//
// The header CRC makes framing self-validating: a reader that lands
// mid-stream, or receives a torn prefix, detects it instead of
// misparsing garbage lengths. The payload CRC (version 2) extends that
// to the body: a bit flipped anywhere in a frame — header or payload —
// fails a checksum instead of being delivered as data, which is what
// lets the chaos harness inject byte corruption and demand detection.
// The decoder's contract — enforced by FuzzFrameDecode — is that
// arbitrary input never panics, a torn frame is reported as
// ErrTruncated (needs more bytes) and never surfaced as data, and
// structurally invalid bytes are ErrBadFrame.
//
// Request ids are assigned by the client and echoed by the server, so
// many requests can be in flight on one connection (pipelining);
// responses are matched by id, not position.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Protocol constants.
const (
	// Magic starts every frame: "BMW1" in stream order.
	Magic = uint32('B') | uint32('M')<<8 | uint32('W')<<16 | uint32('1')<<24
	// Version is the protocol version this package speaks. Version 2
	// appended the payload CRC trailer and the replication/admin frame
	// types; version-1 peers are refused at the handshake.
	Version = 2
	// HeaderSize is the fixed frame-header length in bytes.
	HeaderSize = 24
	// TrailerSize is the payload-CRC trailer length in bytes.
	TrailerSize = 4
	// MaxPayload bounds a frame's payload so a corrupt or hostile
	// length field cannot trigger an unbounded allocation.
	MaxPayload = 1 << 20
)

// Type identifies a frame's meaning.
type Type uint8

// Frame types.
const (
	// THello opens a connection: payload is the client's u32 version.
	THello Type = 1
	// THelloOK accepts: payload is u32 version, u32 shards, u64 capacity.
	THelloOK Type = 2
	// TBatch carries a batch of queue operations (see AppendOps).
	TBatch Type = 3
	// TBatchOK carries the batch's results (see AppendResults).
	TBatchOK Type = 4
	// TError reports a connection-fatal protocol error: payload is a
	// u8 status code followed by a UTF-8 message.
	TError Type = 5
	// TReplHello opens a replication stream: a follower's manifest
	// (engine geometry) plus the stream sequence to resume from. The
	// payload codec lives in internal/replic.
	TReplHello Type = 6
	// TReplOK accepts a replication stream: payload is the primary's
	// current log tip sequence.
	TReplOK Type = 7
	// TReplRecords carries a batch of replication log records
	// (per-shard WAL ops and dedup entries), LSN-ordered per shard.
	TReplRecords Type = 8
	// TReplAck reports the follower's contiguous applied stream
	// position back to the primary (u64 sequence).
	TReplAck Type = 9
	// TAdmin carries an administrative command: payload is a u8 command
	// (status, promote).
	TAdmin Type = 10
	// TAdminOK answers TAdmin: payload is an encoded AdminInfo.
	TAdminOK Type = 11
	// TReplFetch asks a peer for a piece of its durable state during
	// anti-entropy repair: an engine or shard manifest, a WAL LSN range,
	// or Merkle-proof-carrying snapshot chunks. The payload codec lives
	// in internal/replic.
	TReplFetch Type = 12
	// TReplChunk answers TReplFetch with the requested bytes (plus
	// proofs, for snapshot chunks).
	TReplChunk Type = 13
	// TClusterHello asks a node for its cluster map: payload is the
	// sender's current map version (u64), so an up-to-date peer answers
	// with an empty TClusterMap instead of re-sending the whole map.
	TClusterHello Type = 14
	// TClusterMap carries an encoded cluster map — the answer to
	// TClusterHello, or an unsolicited anti-entropy push between nodes.
	// An empty payload means "nothing newer than the version you sent".
	// The payload codec lives in internal/cluster.
	TClusterMap Type = 15
)

// valid reports whether t is a defined frame type.
func (t Type) valid() bool { return t >= THello && t <= TClusterMap }

// Decoder errors.
var (
	// ErrTruncated reports that the input ends mid-frame: the bytes so
	// far are a valid prefix, and more input is needed. Torn frames are
	// never returned as data.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrBadFrame reports structurally invalid bytes: wrong magic,
	// unsupported version, unknown type, oversized payload, nonzero
	// flags, or a header CRC mismatch.
	ErrBadFrame = errors.New("wire: bad frame")
)

// castagnoli is the CRC-32C table (same polynomial the persist WAL
// uses).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Frame is one decoded frame.
type Frame struct {
	Type    Type
	ID      uint64
	Payload []byte
}

// AppendFrame appends the encoding of one frame to dst and returns the
// extended slice. It panics if the payload exceeds MaxPayload — that is
// a caller bug, not an input condition.
func AppendFrame(dst []byte, typ Type, id uint64, payload []byte) []byte {
	if len(payload) > MaxPayload {
		panic(fmt.Sprintf("wire: payload %d exceeds MaxPayload %d", len(payload), MaxPayload))
	}
	off := len(dst)
	dst = append(dst, make([]byte, HeaderSize)...)
	h := dst[off:]
	binary.LittleEndian.PutUint32(h[0:4], Magic)
	h[4] = Version
	h[5] = byte(typ)
	// h[6:8] flags stay zero.
	binary.LittleEndian.PutUint64(h[8:16], id)
	binary.LittleEndian.PutUint32(h[16:20], uint32(len(payload)))
	binary.LittleEndian.PutUint32(h[20:24], crc32.Checksum(h[0:20], castagnoli))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
}

// DecodeFrame decodes the first frame in b. It returns the frame, the
// number of bytes consumed, and an error: ErrTruncated when b is a
// valid prefix needing more bytes, ErrBadFrame (wrapped with detail)
// when the bytes cannot be a frame. The returned payload aliases b.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < HeaderSize {
		return Frame{}, 0, ErrTruncated
	}
	h := b[:HeaderSize]
	if got := binary.LittleEndian.Uint32(h[0:4]); got != Magic {
		return Frame{}, 0, fmt.Errorf("%w: magic %#x", ErrBadFrame, got)
	}
	if crc := binary.LittleEndian.Uint32(h[20:24]); crc != crc32.Checksum(h[0:20], castagnoli) {
		return Frame{}, 0, fmt.Errorf("%w: header CRC mismatch", ErrBadFrame)
	}
	if h[4] != Version {
		return Frame{}, 0, fmt.Errorf("%w: version %d", ErrBadFrame, h[4])
	}
	typ := Type(h[5])
	if !typ.valid() {
		return Frame{}, 0, fmt.Errorf("%w: type %d", ErrBadFrame, h[5])
	}
	if h[6] != 0 || h[7] != 0 {
		return Frame{}, 0, fmt.Errorf("%w: nonzero flags", ErrBadFrame)
	}
	n := binary.LittleEndian.Uint32(h[16:20])
	if n > MaxPayload {
		return Frame{}, 0, fmt.Errorf("%w: payload length %d", ErrBadFrame, n)
	}
	total := HeaderSize + int(n) + TrailerSize
	if len(b) < total {
		return Frame{}, 0, ErrTruncated
	}
	payload := b[HeaderSize : HeaderSize+int(n)]
	if crc := binary.LittleEndian.Uint32(b[total-TrailerSize : total]); crc != crc32.Checksum(payload, castagnoli) {
		return Frame{}, 0, fmt.Errorf("%w: payload CRC mismatch", ErrBadFrame)
	}
	return Frame{
		Type:    typ,
		ID:      binary.LittleEndian.Uint64(h[8:16]),
		Payload: payload,
	}, total, nil
}

// ReadFrame reads exactly one frame from r. A clean EOF before any
// byte is io.EOF; a stream ending mid-frame is io.ErrUnexpectedEOF —
// the torn bytes are never returned as a frame.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	// Validate the header before reading the payload so a corrupt
	// length cannot force a huge blocking read. A bare header always
	// decodes ErrTruncated (the trailer is still missing); anything
	// else is a structural error.
	if _, _, err := DecodeFrame(hdr[:]); !errors.Is(err, ErrTruncated) {
		return Frame{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[16:20])
	rest := make([]byte, int(n)+TrailerSize)
	if _, err := io.ReadFull(r, rest); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	buf := append(hdr[:], rest...)
	f, _, err := DecodeFrame(buf)
	return f, err
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, typ Type, id uint64, payload []byte) error {
	buf := AppendFrame(make([]byte, 0, HeaderSize+len(payload)), typ, id, payload)
	_, err := w.Write(buf)
	return err
}
