package wire

import (
	"context"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
)

// Proxy modes.
const (
	proxyPass      = iota // relay faithfully
	proxyReset            // swallow the next server bytes, then reset the connection
	proxyBlackhole        // discard server bytes silently, connection stays up
)

// flakyProxy relays TCP to upstream, consulting mode on every chunk of
// the server→client direction, so a live connection can be made to
// lose or stall responses mid-stream.
type flakyProxy struct {
	ln   net.Listener
	mode atomic.Int32
}

func startFlakyProxy(t *testing.T, upstream string) *flakyProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flakyProxy{ln: ln}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", upstream)
			if err != nil {
				c.Close()
				continue
			}
			go func() {
				io.Copy(up, c)
				c.Close()
				up.Close()
			}()
			go func() {
				defer c.Close()
				defer up.Close()
				buf := make([]byte, 32<<10)
				for {
					n, err := up.Read(buf)
					if n > 0 {
						switch p.mode.Load() {
						case proxyReset:
							return // swallow and cut: client sees a reset
						case proxyBlackhole:
							continue // swallow silently: client sees a stall
						}
						if _, werr := c.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}()
		}
	}()
	return p
}

// TestResilientRetryDedup loses a response in flight: the push applies
// server-side but its ack dies in the proxy, and the client's retry of
// the same request id must be answered from the server's dedup cache —
// applied exactly once, never doubled.
func TestResilientRetryDedup(t *testing.T) {
	addr, stop := startServer(t, engine.Config{Shards: 2, Order: 2, Levels: 8})
	defer stop()
	proxy := startFlakyProxy(t, addr)
	defer proxy.ln.Close()

	rc, err := NewResilientClient(ResilientOptions{
		Addrs:          []string{proxy.ln.Addr().String()},
		RequestTimeout: 2 * time.Second,
		BaseDelay:      time.Millisecond,
		MaxDelay:       10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	// Warm the connection in pass mode.
	if _, err := rc.Do([]Op{{Kind: OpPush, Value: 1, Meta: 1}}); err != nil {
		t.Fatal(err)
	}

	proxy.mode.Store(proxyReset)
	done := make(chan error, 1)
	go func() {
		res, err := rc.Do([]Op{{Kind: OpPush, Value: 2, Meta: 2}})
		if err == nil && res[0].Status != StatusOK {
			err = errors.New("push status " + res[0].Status.String())
		}
		done <- err
	}()
	time.Sleep(150 * time.Millisecond) // let the doomed attempt land and die
	proxy.mode.Store(proxyPass)
	if err := <-done; err != nil {
		t.Fatalf("retried push: %v", err)
	}
	if s := rc.Stats(); s.Retries == 0 {
		t.Fatal("lost response produced no retry")
	}

	// Drain: exactly the two pushes, each applied once.
	var got []uint64
	for {
		res, err := rc.Do([]Op{{Kind: OpPop}})
		if err != nil {
			t.Fatal(err)
		}
		if res[0].Status == StatusEmpty {
			break
		}
		got = append(got, res[0].Value)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("drained %v, want [1 2] — lost or duplicated apply", got)
	}
}

// TestClientReadTimeoutOnDeadPeer stalls the server→client direction
// after the handshake: the pipelined read must fail within the read
// timeout instead of hanging forever (the pre-timeout client hung
// until the TCP stack gave up, if ever).
func TestClientReadTimeoutOnDeadPeer(t *testing.T) {
	addr, stop := startServer(t, engine.Config{Shards: 1, Order: 2, Levels: 8})
	defer stop()
	proxy := startFlakyProxy(t, addr)
	defer proxy.ln.Close()

	c, err := DialOptions(proxy.ln.Addr().String(), ClientOptions{
		ReadTimeout:  200 * time.Millisecond,
		WriteTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	proxy.mode.Store(proxyBlackhole)
	start := time.Now()
	_, err = c.Do([]Op{{Kind: OpPush, Value: 9, Meta: 9}})
	if err == nil {
		t.Fatal("dead peer answered")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("dead-peer read hung %v", d)
	}
}

// TestPerRequestTimeout bounds one attempt with DoID's timeout against
// a stalled peer.
func TestPerRequestTimeout(t *testing.T) {
	addr, stop := startServer(t, engine.Config{Shards: 1, Order: 2, Levels: 8})
	defer stop()
	proxy := startFlakyProxy(t, addr)
	defer proxy.ln.Close()

	c, err := Dial(proxy.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	proxy.mode.Store(proxyBlackhole)
	_, err = c.DoID(1, []Op{{Kind: OpPop}}, 100*time.Millisecond)
	if !errors.Is(err, ErrRequestTimeout) {
		t.Fatalf("err = %v, want ErrRequestTimeout", err)
	}
}

// killableServer is startServer with an abrupt stop: a short grace
// then force-closed connections, errors ignored — for tests that kill
// a server out from under live clients.
func killableServer(t *testing.T, cfg engine.Config) (string, func()) {
	t.Helper()
	e, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(e)
	go srv.Serve(ln)
	var once atomic.Bool
	return ln.Addr().String(), func() {
		if !once.CompareAndSwap(false, true) {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		_ = srv.Shutdown(ctx)
		e.Close()
	}
}

// TestResilientFailover rotates to the standby address when the
// primary address stops accepting.
func TestResilientFailover(t *testing.T) {
	addr1, stop1 := killableServer(t, engine.Config{Shards: 1, Order: 2, Levels: 8})
	addr2, stop2 := killableServer(t, engine.Config{Shards: 1, Order: 2, Levels: 8})
	defer stop2()

	rc, err := NewResilientClient(ResilientOptions{
		Addrs:          []string{addr1, addr2},
		RequestTimeout: time.Second,
		BaseDelay:      time.Millisecond,
		MaxDelay:       10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	if _, err := rc.Do([]Op{{Kind: OpPush, Value: 1, Meta: 1}}); err != nil {
		t.Fatal(err)
	}
	stop1() // primary gone
	if _, err := rc.Do([]Op{{Kind: OpPush, Value: 2, Meta: 2}}); err != nil {
		t.Fatalf("post-failover push: %v", err)
	}
	if s := rc.Stats(); s.Failovers == 0 {
		t.Fatalf("no failover recorded: %+v", s)
	}
	if rc.Addr() != addr2 {
		t.Fatalf("client on %s, want standby %s", rc.Addr(), addr2)
	}
}

// TestDedupWindowMiss retries an id the server has already evicted
// from its replay window: the server must answer StatusDedupMiss and
// the client must surface it as the typed permanent error rather than
// silently re-executing.
func TestDedupWindowMiss(t *testing.T) {
	e, err := engine.New(engine.Config{Shards: 1, Order: 2, Levels: 8})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerConfig(e, ServerConfig{DedupWindow: 2})
	go srv.Serve(ln)
	defer func() { e.Close() }()
	defer proxyShutdown(t, srv)

	const session = 0xD00D
	c, err := DialOptions(ln.Addr().String(), ClientOptions{Session: session})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for id := uint64(1); id <= 4; id++ { // window 2: ids 1,2 evicted
		if _, err := c.DoID(id, []Op{{Kind: OpPop}}, 0); err != nil {
			t.Fatal(err)
		}
	}
	_, err = c.DoID(1, []Op{{Kind: OpPop}}, 0)
	var se *ServerError
	if !errors.As(err, &se) || se.Code != StatusDedupMiss {
		t.Fatalf("evicted-id retry: %v, want StatusDedupMiss", err)
	}
}

func proxyShutdown(t *testing.T, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
}
