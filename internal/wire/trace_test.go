package wire

import (
	"context"
	"encoding/json"
	"net"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// startTracedServer is startServer with a request tracer installed.
func startTracedServer(t *testing.T, cfg engine.Config, topts obs.TracerOptions) (string, *obs.Tracer, func()) {
	t.Helper()
	e, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer(topts)
	if tracer == nil {
		t.Fatal("tracer disabled")
	}
	srv := NewServerConfig(e, ServerConfig{Tracer: tracer})
	done := make(chan struct{})
	go func() {
		srv.Serve(ln)
		close(done)
	}()
	return ln.Addr().String(), tracer, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		<-done
		e.Close()
	}
}

// TestSpanStageMonotonic drives traffic through a traced server and
// asserts every finished span's stamped stages are non-decreasing and
// consistent with its outcome: decode and write always stamped, and the
// engine stages present exactly when the request reached the engine.
func TestSpanStageMonotonic(t *testing.T) {
	reg := obs.NewRegistry()
	var (
		mu    sync.Mutex
		spans [][obs.NumStages]int64
	)
	addr, tracer, stop := startTracedServer(t,
		engine.Config{Shards: 4, Order: 2, Levels: 6},
		obs.TracerOptions{Registry: reg, Prefix: "t"})
	tracer.OnFinish = func(track int64, ts [obs.NumStages]int64) {
		mu.Lock()
		spans = append(spans, ts)
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			ops := make([]Op, 16)
			for i := range ops {
				if i%2 == 0 {
					ops[i] = Op{Kind: OpPush, Value: uint64(i), Meta: uint64(c*1000 + i)}
				} else {
					ops[i] = Op{Kind: OpPop}
				}
			}
			for n := 0; n < 50; n++ {
				if _, err := cl.Do(ops); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	stop()

	mu.Lock()
	defer mu.Unlock()
	if len(spans) != 4*50 {
		t.Fatalf("finished %d spans, want %d", len(spans), 4*50)
	}
	for i, ts := range spans {
		prev := int64(0)
		for st := obs.Stage(0); st < obs.NumStages; st++ {
			v := ts[st]
			if v == 0 {
				t.Errorf("span %d: stage %v unstamped", i, st)
				continue
			}
			if v < prev {
				t.Fatalf("span %d: stage %v at %d before previous stamp %d", i, st, v, prev)
			}
			prev = v
		}
	}
	// Every executed batch fed all eight stage histograms.
	for st := obs.Stage(0); st < obs.NumStages; st++ {
		name := obs.StageMetricName("t", st)
		if n := reg.Snapshot().Quantile(name).Count; n != 4*50 {
			t.Errorf("%s: %d observations, want %d", name, n, 4*50)
		}
	}
}

// TestMetricsScrapeUnderLoad hammers /metrics.json (and the Prometheus
// text endpoint) from several goroutines while traced traffic is in
// flight — the race detector is the assertion, plus each scrape must
// decode as a valid snapshot.
func TestMetricsScrapeUnderLoad(t *testing.T) {
	reg := obs.NewRegistry()
	rec := obs.NewTraceRecorder()
	addr, _, stop := startTracedServer(t,
		engine.Config{Shards: 2, Order: 2, Levels: 6},
		obs.TracerOptions{Registry: reg, Prefix: "t", Recorder: rec, SampleEvery: 8})
	defer stop()

	hs := httptest.NewServer(obs.HandlerOpts(reg, obs.HandlerOptions{Trace: rec}))
	defer hs.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			ops := []Op{{Kind: OpPush, Value: 1, Meta: uint64(c)}, {Kind: OpPop}}
			for ctx.Err() == nil {
				if _, err := cl.Do(ops); err != nil {
					return
				}
			}
		}(c)
	}

	var scrapes atomic.Int64
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				for _, path := range []string{"/metrics.json", "/metrics", "/trace.json"} {
					resp, err := hs.Client().Get(hs.URL + path)
					if err != nil {
						t.Errorf("%s: %v", path, err)
						return
					}
					if path == "/metrics.json" {
						var snap obs.Snapshot
						if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
							t.Errorf("decode snapshot: %v", err)
						}
					}
					resp.Body.Close()
					scrapes.Add(1)
				}
			}
		}()
	}

	// Let load and scrapes overlap, then stop the load.
	time.Sleep(300 * time.Millisecond)
	cancel()
	wg.Wait()
	if scrapes.Load() != 4*25*3 {
		t.Fatalf("completed %d scrapes, want %d", scrapes.Load(), 4*25*3)
	}
	if reg.Snapshot().Quantile(obs.StageMetricName("t", obs.StageIssue)).Count == 0 {
		t.Fatal("no spans aggregated during load")
	}
}
