package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Client errors beyond the frame-level ones.
var (
	// ErrRequestTimeout reports that a DoID deadline expired before the
	// response arrived. The connection is closed (poisoned): the server
	// may still execute the request, so the op's fate is unknown until a
	// retry with the same id is answered — from the server's dedup cache
	// if the original did execute.
	ErrRequestTimeout = errors.New("wire: request timed out")
	// ErrConnClosed reports a Do against a client whose connection has
	// been torn down.
	ErrConnClosed = errors.New("wire: connection closed")
)

// ServerError is a TError frame surfaced as a typed error, so callers
// can branch on the status code (StatusNotPrimary → fail over,
// StatusDedupMiss → the op's fate is indeterminate). A TError is always
// connection-fatal: the server closes after sending it.
type ServerError struct {
	Code Status
	Msg  string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("wire: server error %s: %s", e.Code, e.Msg)
}

// ClientOptions tunes a Client's liveness and retry-dedup behavior. The
// zero value matches the pre-deadline behavior: no timeouts, no
// session.
type ClientOptions struct {
	// Session, when nonzero, enrolls the connection in the server's
	// retry-dedup cache: a request id retried under the same session —
	// typically on a new connection after a failure — is answered from
	// the cached response instead of re-executed. Ids must be assigned
	// once per logical request and never reused for different payloads.
	Session uint64
	// ReadTimeout bounds how long the client waits for bytes from the
	// server while requests are in flight. It is a progress deadline,
	// re-armed on every write and every received frame, so a slow but
	// live server does not trip it; a dead peer does. Zero disables.
	ReadTimeout time.Duration
	// WriteTimeout bounds each frame write. Zero disables.
	WriteTimeout time.Duration
	// IdleTimeout, when nonzero, closes the connection after this long
	// with no requests in flight and no server traffic.
	IdleTimeout time.Duration
}

// respMsg is one request's terminal outcome inside the client.
type respMsg struct {
	results []Result
	err     error
}

// Client is a pipelined wire-protocol client: any number of goroutines
// may call Do concurrently; each call gets a fresh request id, the
// frames interleave on the connection, and responses are matched back
// by id. The write path batches at two levels — many queue operations
// per frame, and the kernel's socket buffering across frames — so the
// per-operation syscall cost shrinks with both the batch size and the
// number of concurrent callers.
type Client struct {
	conn net.Conn
	info HelloInfo
	opts ClientOptions

	wmu sync.Mutex // serialises frame writes

	nextID  atomic.Uint64
	pmu     sync.Mutex
	pending map[uint64]chan respMsg
	readErr error
	done    chan struct{}
}

// Dial connects, performs the Hello handshake, and starts the response
// reader.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, ClientOptions{})
}

// DialOptions is Dial with explicit options.
func DialOptions(addr string, opts ClientOptions) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClientOptions(conn, opts)
}

// NewClient performs the handshake over an established connection
// (net.Pipe in tests, TCP in production) and starts the reader.
func NewClient(conn net.Conn) (*Client, error) {
	return NewClientOptions(conn, ClientOptions{})
}

// NewClientOptions is NewClient with explicit options.
func NewClientOptions(conn net.Conn, opts ClientOptions) (*Client, error) {
	c := &Client{
		conn:    conn,
		opts:    opts,
		pending: map[uint64]chan respMsg{},
		done:    make(chan struct{}),
	}
	// The handshake runs under the read/write deadlines too: a dead or
	// wedged server fails the dial instead of hanging it.
	if opts.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(opts.WriteTimeout))
	}
	if opts.ReadTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(opts.ReadTimeout))
	}
	if err := WriteFrame(conn, THello, 0, AppendHello(nil, opts.Session)); err != nil {
		conn.Close()
		return nil, err
	}
	f, err := ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	switch f.Type {
	case THelloOK:
	case TError:
		conn.Close()
		return nil, parseServerError(f.Payload)
	default:
		conn.Close()
		return nil, fmt.Errorf("wire: handshake got frame type %d", f.Type)
	}
	if c.info, err = ParseHelloOK(f.Payload); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetWriteDeadline(time.Time{})
	c.armIdleDeadline()
	go c.readLoop()
	return c, nil
}

// Info returns the server's handshake summary (shards, capacity).
func (c *Client) Info() HelloInfo { return c.info }

// Close tears the connection down; in-flight Do calls fail.
func (c *Client) Close() error { return c.conn.Close() }

// Do submits one batch of operations and blocks for its results (one
// per op, in order). Concurrent Do calls pipeline on the connection.
func (c *Client) Do(ops []Op) ([]Result, error) {
	return c.DoID(c.nextID.Add(1), ops, 0)
}

// DoID is Do with a caller-assigned request id and an optional
// per-request timeout. Explicit ids are the retry handle: a request
// that failed with an ambiguous outcome (timeout, dead connection) can
// be reissued on a new connection under the same session and id, and
// the server's dedup cache guarantees at-most-once execution. Ids must
// be unique per logical request within a session. On timeout the
// connection is closed — a late response can no longer be matched
// safely, so the conn is poisoned rather than left live.
func (c *Client) DoID(id uint64, ops []Op, timeout time.Duration) ([]Result, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	if len(ops) > MaxBatchOps {
		return nil, fmt.Errorf("wire: batch of %d exceeds MaxBatchOps %d", len(ops), MaxBatchOps)
	}
	ch := make(chan respMsg, 1)

	c.pmu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.pmu.Unlock()
		return nil, err
	}
	if _, dup := c.pending[id]; dup {
		c.pmu.Unlock()
		return nil, fmt.Errorf("wire: request id %d already in flight", id)
	}
	c.pending[id] = ch
	c.pmu.Unlock()

	payload := AppendOps(make([]byte, 0, 4+len(ops)*opPushSize), ops)
	buf := AppendFrame(make([]byte, 0, HeaderSize+len(payload)+TrailerSize), TBatch, id, payload)
	c.wmu.Lock()
	if c.opts.WriteTimeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(c.opts.WriteTimeout))
	}
	_, err := c.conn.Write(buf)
	if err == nil && c.opts.ReadTimeout > 0 {
		// Arm the progress deadline: a response (any response — the
		// reader re-arms on each frame) must arrive within ReadTimeout.
		// SetReadDeadline is safe against a concurrently blocked read.
		c.conn.SetReadDeadline(time.Now().Add(c.opts.ReadTimeout))
	}
	c.wmu.Unlock()
	if err != nil {
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		return nil, err
	}

	var timer *time.Timer
	var expired <-chan time.Time
	if timeout > 0 {
		timer = time.NewTimer(timeout)
		expired = timer.C
		defer timer.Stop()
	}
	select {
	case m := <-ch:
		if m.err != nil {
			return nil, m.err
		}
		if len(m.results) != len(ops) {
			return m.results, fmt.Errorf("wire: %d results for %d ops", len(m.results), len(ops))
		}
		return m.results, nil
	case <-expired:
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		c.conn.Close()
		return nil, ErrRequestTimeout
	case <-c.done:
		c.pmu.Lock()
		err := c.readErr
		c.pmu.Unlock()
		if err == nil {
			err = ErrConnClosed
		}
		return nil, err
	}
}

// armIdleDeadline sets the read deadline for a connection with nothing
// in flight.
func (c *Client) armIdleDeadline() {
	if c.opts.IdleTimeout > 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.opts.IdleTimeout))
	} else {
		c.conn.SetReadDeadline(time.Time{})
	}
}

// readLoop dispatches responses to their waiting Do calls.
func (c *Client) readLoop() {
	var fatal error
	for {
		f, err := ReadFrame(c.conn)
		if err != nil {
			fatal = err
			break
		}
		switch f.Type {
		case TBatchOK:
			results, err := ParseResults(f.Payload)
			if err != nil {
				fatal = err
				break
			}
			c.pmu.Lock()
			ch := c.pending[f.ID]
			delete(c.pending, f.ID)
			inflight := len(c.pending)
			c.pmu.Unlock()
			if ch != nil {
				ch <- respMsg{results: results}
			}
			// Re-arm the progress deadline: each delivered response is
			// proof of life, so a pipelined burst answered slowly but
			// steadily never trips ReadTimeout.
			if inflight > 0 {
				if c.opts.ReadTimeout > 0 {
					c.conn.SetReadDeadline(time.Now().Add(c.opts.ReadTimeout))
				}
			} else {
				c.armIdleDeadline()
			}
		case TError:
			serr := parseServerError(f.Payload)
			c.pmu.Lock()
			ch := c.pending[f.ID]
			delete(c.pending, f.ID)
			c.pmu.Unlock()
			// TError is connection-fatal by contract; any other pending
			// requests fail with the same error via done.
			if ch != nil {
				ch <- respMsg{err: serr}
				fatal = serr
			} else {
				// No addressee: the server could not attribute the fault
				// to a request (e.g. a frame that failed its CRC arrives
				// with an untrustworthy id). That is transport corruption,
				// not a semantic rejection — surface it as a plain
				// connection error so retry layers reconnect and retry
				// instead of giving up.
				fatal = fmt.Errorf("wire: connection failed: %v", serr)
			}
		default:
			fatal = fmt.Errorf("wire: unexpected frame type %d", f.Type)
		}
		if fatal != nil {
			break
		}
	}
	c.pmu.Lock()
	c.readErr = fatal
	c.pmu.Unlock()
	close(c.done)
	c.conn.Close()
}

// parseServerError decodes a TError payload (u8 status + message).
func parseServerError(p []byte) error {
	if len(p) == 0 {
		return &ServerError{Code: StatusInvalid, Msg: "server error"}
	}
	return &ServerError{Code: Status(p[0]), Msg: string(p[1:])}
}
