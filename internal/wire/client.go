package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// Client is a pipelined wire-protocol client: any number of goroutines
// may call Do concurrently; each call gets a fresh request id, the
// frames interleave on the connection, and responses are matched back
// by id. The write path batches at two levels — many queue operations
// per frame, and the kernel's socket buffering across frames — so the
// per-operation syscall cost shrinks with both the batch size and the
// number of concurrent callers.
type Client struct {
	conn net.Conn
	info HelloInfo

	wmu sync.Mutex // serialises frame writes

	nextID  atomic.Uint64
	pmu     sync.Mutex
	pending map[uint64]chan []Result
	readErr error
	done    chan struct{}
}

// Dial connects, performs the Hello handshake, and starts the response
// reader.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn)
}

// NewClient performs the handshake over an established connection
// (net.Pipe in tests, TCP in production) and starts the reader.
func NewClient(conn net.Conn) (*Client, error) {
	c := &Client{
		conn:    conn,
		pending: map[uint64]chan []Result{},
		done:    make(chan struct{}),
	}
	if err := WriteFrame(conn, THello, 0, AppendHello(nil)); err != nil {
		conn.Close()
		return nil, err
	}
	f, err := ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if f.Type != THelloOK {
		conn.Close()
		return nil, fmt.Errorf("wire: handshake got frame type %d", f.Type)
	}
	if c.info, err = ParseHelloOK(f.Payload); err != nil {
		conn.Close()
		return nil, err
	}
	go c.readLoop()
	return c, nil
}

// Info returns the server's handshake summary (shards, capacity).
func (c *Client) Info() HelloInfo { return c.info }

// Close tears the connection down; in-flight Do calls fail.
func (c *Client) Close() error { return c.conn.Close() }

// Do submits one batch of operations and blocks for its results (one
// per op, in order). Concurrent Do calls pipeline on the connection.
func (c *Client) Do(ops []Op) ([]Result, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	if len(ops) > MaxBatchOps {
		return nil, fmt.Errorf("wire: batch of %d exceeds MaxBatchOps %d", len(ops), MaxBatchOps)
	}
	id := c.nextID.Add(1)
	ch := make(chan []Result, 1)

	c.pmu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.pmu.Unlock()
		return nil, err
	}
	c.pending[id] = ch
	c.pmu.Unlock()

	payload := AppendOps(make([]byte, 0, 4+len(ops)*opPushSize), ops)
	buf := AppendFrame(make([]byte, 0, HeaderSize+len(payload)), TBatch, id, payload)
	c.wmu.Lock()
	_, err := c.conn.Write(buf)
	c.wmu.Unlock()
	if err != nil {
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		return nil, err
	}

	select {
	case results := <-ch:
		if len(results) != len(ops) {
			return results, fmt.Errorf("wire: %d results for %d ops", len(results), len(ops))
		}
		return results, nil
	case <-c.done:
		c.pmu.Lock()
		err := c.readErr
		c.pmu.Unlock()
		if err == nil {
			err = errors.New("wire: connection closed")
		}
		return nil, err
	}
}

// readLoop dispatches responses to their waiting Do calls.
func (c *Client) readLoop() {
	var fatal error
	for {
		f, err := ReadFrame(c.conn)
		if err != nil {
			fatal = err
			break
		}
		switch f.Type {
		case TBatchOK:
			results, err := ParseResults(f.Payload)
			if err != nil {
				fatal = err
				break
			}
			c.pmu.Lock()
			ch := c.pending[f.ID]
			delete(c.pending, f.ID)
			c.pmu.Unlock()
			if ch != nil {
				ch <- results
			}
		case TError:
			msg := "server error"
			if len(f.Payload) > 1 {
				msg = string(f.Payload[1:])
			}
			fatal = fmt.Errorf("wire: server: %s", msg)
		default:
			fatal = fmt.Errorf("wire: unexpected frame type %d", f.Type)
		}
		if fatal != nil {
			break
		}
	}
	c.pmu.Lock()
	c.readErr = fatal
	c.pmu.Unlock()
	close(c.done)
	c.conn.Close()
}
