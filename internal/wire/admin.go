package wire

import (
	"encoding/binary"
	"fmt"
	"net"
	"time"
)

// AdminCmd is the command byte of a TAdmin frame.
type AdminCmd uint8

// Admin commands.
const (
	// AdminStatus asks for the node's replication/serving state.
	AdminStatus AdminCmd = 1
	// AdminPromote promotes a replication follower to primary after it
	// has applied everything received — the wire-side twin of SIGUSR1
	// on bmwd. A no-op on a node that is already primary.
	AdminPromote AdminCmd = 2
)

// Node roles reported in AdminInfo.
const (
	RolePrimary  uint8 = 0
	RoleFollower uint8 = 1
)

// AdminInfo is a node's replication and serving state, carried in a
// TAdminOK payload.
type AdminInfo struct {
	// Role is RolePrimary or RoleFollower.
	Role uint8
	// Serving reports whether TBatch traffic is accepted (followers
	// refuse it until promoted).
	Serving bool
	// Degraded reports that a synchronous-replication ack wait timed
	// out at least once, so some acknowledged ops may not have reached
	// the follower.
	Degraded bool
	// LogSeq is the replication log tip (records appended); AckSeq is
	// the attached follower's contiguous applied position (0 when no
	// follower is attached). On a follower, LogSeq is its own rebuilt
	// log tip and AckSeq its applied position in the primary's stream.
	LogSeq uint64
	AckSeq uint64
	// Followers is the number of attached replication followers.
	Followers uint32
	// ShardLSNs are the per-shard applied-operation counts.
	ShardLSNs []uint64
}

// AppendAdmin appends a TAdmin payload.
func AppendAdmin(dst []byte, cmd AdminCmd) []byte {
	return append(dst, byte(cmd))
}

// ParseAdmin decodes a TAdmin payload.
func ParseAdmin(p []byte) (AdminCmd, error) {
	if len(p) != 1 {
		return 0, fmt.Errorf("%w: admin payload %d bytes", ErrBadFrame, len(p))
	}
	cmd := AdminCmd(p[0])
	if cmd != AdminStatus && cmd != AdminPromote {
		return 0, fmt.Errorf("%w: admin command %d", ErrBadFrame, p[0])
	}
	return cmd, nil
}

// adminInfoFixed is the fixed prefix of an encoded AdminInfo: role,
// serving, degraded, follower count, log/ack seqs, shard count.
const adminInfoFixed = 1 + 1 + 1 + 4 + 8 + 8 + 4

// AppendAdminInfo appends a TAdminOK payload.
func AppendAdminInfo(dst []byte, info AdminInfo) []byte {
	dst = append(dst, info.Role, b2u8(info.Serving), b2u8(info.Degraded))
	dst = binary.LittleEndian.AppendUint32(dst, info.Followers)
	dst = binary.LittleEndian.AppendUint64(dst, info.LogSeq)
	dst = binary.LittleEndian.AppendUint64(dst, info.AckSeq)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(info.ShardLSNs)))
	for _, l := range info.ShardLSNs {
		dst = binary.LittleEndian.AppendUint64(dst, l)
	}
	return dst
}

// ParseAdminInfo decodes a TAdminOK payload.
func ParseAdminInfo(p []byte) (AdminInfo, error) {
	if len(p) < adminInfoFixed {
		return AdminInfo{}, fmt.Errorf("%w: admin info payload %d bytes", ErrBadFrame, len(p))
	}
	if p[0] != RolePrimary && p[0] != RoleFollower {
		return AdminInfo{}, fmt.Errorf("%w: admin role %d", ErrBadFrame, p[0])
	}
	if p[1] > 1 || p[2] > 1 {
		return AdminInfo{}, fmt.Errorf("%w: admin bool out of range", ErrBadFrame)
	}
	info := AdminInfo{
		Role:      p[0],
		Serving:   p[1] == 1,
		Degraded:  p[2] == 1,
		Followers: binary.LittleEndian.Uint32(p[3:7]),
		LogSeq:    binary.LittleEndian.Uint64(p[7:15]),
		AckSeq:    binary.LittleEndian.Uint64(p[15:23]),
	}
	n := binary.LittleEndian.Uint32(p[23:27])
	if len(p) != adminInfoFixed+int(n)*8 {
		return AdminInfo{}, fmt.Errorf("%w: admin info %d bytes for %d shards", ErrBadFrame, len(p), n)
	}
	if n > 0 {
		info.ShardLSNs = make([]uint64, n)
		for i := range info.ShardLSNs {
			info.ShardLSNs[i] = binary.LittleEndian.Uint64(p[adminInfoFixed+i*8:])
		}
	}
	return info, nil
}

// AdminRequest dials addr, issues one TAdmin command on a fresh
// connection, and returns the node's answer. Admin traffic is rare
// enough that a throwaway connection is simpler than threading admin
// responses through the pipelined client.
func AdminRequest(addr string, cmd AdminCmd, timeout time.Duration) (AdminInfo, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return AdminInfo{}, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if err := WriteFrame(conn, TAdmin, 1, AppendAdmin(nil, cmd)); err != nil {
		return AdminInfo{}, err
	}
	f, err := ReadFrame(conn)
	if err != nil {
		return AdminInfo{}, err
	}
	switch f.Type {
	case TAdminOK:
		return ParseAdminInfo(f.Payload)
	case TError:
		return AdminInfo{}, parseServerError(f.Payload)
	default:
		return AdminInfo{}, fmt.Errorf("wire: admin got frame type %d", f.Type)
	}
}

func b2u8(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
