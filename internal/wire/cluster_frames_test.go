package wire

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
)

// startClusterTestServer boots a server with the given cluster hooks on
// a loopback port; nil hooks model a bmwd running without -cluster-map.
func startClusterTestServer(t *testing.T, hello ClusterHello, sink ClusterSink, gate OwnerGate) string {
	t.Helper()
	eng, err := engine.New(engine.Config{Shards: 2, Order: 2, Levels: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng)
	if hello != nil || sink != nil {
		srv.SetClusterHandlers(hello, sink)
	}
	if gate != nil {
		srv.SetOwnerGate(gate)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		eng.Close()
	})
	return ln.Addr().String()
}

// rawExchange writes one frame and reads one reply on a throwaway
// connection — the cluster control plane's one-shot exchange shape.
func rawExchange(t *testing.T, addr string, typ Type, payload []byte) Frame {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := WriteFrame(conn, typ, 1, payload); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestClusterFramesDisabled: a server without cluster handlers answers
// both cluster frame types with a typed error instead of dying or
// hanging — a plain bmwd is a safe gossip target.
func TestClusterFramesDisabled(t *testing.T) {
	addr := startClusterTestServer(t, nil, nil, nil)
	for _, typ := range []Type{TClusterHello, TClusterMap} {
		payload := []byte("junk-map")
		if typ == TClusterHello {
			payload = AppendClusterHello(nil, 0)
		}
		f := rawExchange(t, addr, typ, payload)
		if f.Type != TError {
			t.Fatalf("frame %d: answered type %d, want TError", typ, f.Type)
		}
		if len(f.Payload) == 0 || Status(f.Payload[0]) != StatusInvalid {
			t.Fatalf("frame %d: error status %v", typ, f.Payload)
		}
	}
}

// TestClusterHelloFrame: the hello handler sees the requester's version
// and its nil/non-nil answer maps to an empty/full TClusterMap reply.
func TestClusterHelloFrame(t *testing.T) {
	local := []byte("encoded-map-v7")
	var lastSince atomic.Uint64
	addr := startClusterTestServer(t, func(since uint64) []byte {
		lastSince.Store(since)
		if since >= 7 {
			return nil
		}
		return local
	}, func(p []byte) []byte { return nil }, nil)

	f := rawExchange(t, addr, TClusterHello, AppendClusterHello(nil, 3))
	if f.Type != TClusterMap || string(f.Payload) != string(local) {
		t.Fatalf("stale hello: type %d payload %q", f.Type, f.Payload)
	}
	if lastSince.Load() != 3 {
		t.Fatalf("handler saw since=%d", lastSince.Load())
	}
	f = rawExchange(t, addr, TClusterHello, AppendClusterHello(nil, 7))
	if f.Type != TClusterMap || len(f.Payload) != 0 {
		t.Fatalf("current hello: type %d payload %q, want empty map frame", f.Type, f.Payload)
	}
	// A malformed hello payload is a frame error, not a crash.
	f = rawExchange(t, addr, TClusterHello, []byte{1, 2, 3})
	if f.Type != TError {
		t.Fatalf("short hello answered type %d", f.Type)
	}
}

// TestClusterSinkFrame: a gossiped map reaches the sink verbatim and
// the sink's reply (or lack of one) flows back as a TClusterMap.
func TestClusterSinkFrame(t *testing.T) {
	reply := []byte("newer-local-map")
	var got atomic.Value
	addr := startClusterTestServer(t, func(uint64) []byte { return nil }, func(p []byte) []byte {
		got.Store(append([]byte{}, p...))
		if string(p) == "older" {
			return reply
		}
		return nil
	}, nil)

	f := rawExchange(t, addr, TClusterMap, []byte("newest"))
	if f.Type != TClusterMap || len(f.Payload) != 0 {
		t.Fatalf("adopted offer: type %d payload %q", f.Type, f.Payload)
	}
	if string(got.Load().([]byte)) != "newest" {
		t.Fatalf("sink saw %q", got.Load())
	}
	f = rawExchange(t, addr, TClusterMap, []byte("older"))
	if f.Type != TClusterMap || string(f.Payload) != string(reply) {
		t.Fatalf("refused offer: type %d payload %q", f.Type, f.Payload)
	}
}

// TestOwnerGatePushesOnly: the gate refuses pushes with StatusNotOwner
// carrying the map version, and is never consulted for pops or peeks.
func TestOwnerGatePushesOnly(t *testing.T) {
	var gated atomic.Uint64
	addr := startClusterTestServer(t, nil, nil, func(op Op) (bool, uint64) {
		gated.Add(1)
		return false, 42 // owns nothing
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := c.Do([]Op{
		{Kind: OpPush, Value: 9, Meta: 1},
		{Kind: OpPop},
		{Kind: OpPeek},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Status != StatusNotOwner || res[0].Value != 42 {
		t.Fatalf("gated push: %+v", res[0])
	}
	if res[1].Status != StatusEmpty || res[2].Status != StatusEmpty {
		t.Fatalf("ungated pop/peek on empty engine: %+v %+v", res[1], res[2])
	}
	if gated.Load() != 1 {
		t.Fatalf("gate consulted %d times, want 1 (push only)", gated.Load())
	}
}

// TestPeekOpRoundTrip: OpPeek over the wire is non-destructive and
// reads the post-batch head — the [pop, peek] piggyback contract the
// cluster client's head cache depends on.
func TestPeekOpRoundTrip(t *testing.T) {
	addr := startClusterTestServer(t, nil, nil, nil)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if res, err := c.Do([]Op{{Kind: OpPush, Value: 31, Meta: 5}, {Kind: OpPush, Value: 8, Meta: 6}}); err != nil ||
		res[0].Status != StatusOK || res[1].Status != StatusOK {
		t.Fatalf("pushes: %+v %v", res, err)
	}
	for i := 0; i < 2; i++ {
		res, err := c.Do([]Op{{Kind: OpPeek}})
		if err != nil || res[0].Status != StatusOK || res[0].Value != 8 {
			t.Fatalf("peek %d: %+v %v", i, res, err)
		}
	}
	// The piggyback: one batch pops the head and peeks the successor.
	res, err := c.Do([]Op{{Kind: OpPop}, {Kind: OpPeek}})
	if err != nil || res[0].Value != 8 || res[1].Value != 31 {
		t.Fatalf("[pop, peek]: %+v %v", res, err)
	}
	res, err = c.Do([]Op{{Kind: OpPop}, {Kind: OpPeek}})
	if err != nil || res[0].Value != 31 || res[1].Status != StatusEmpty {
		t.Fatalf("draining [pop, peek]: %+v %v", res, err)
	}
}
