package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
)

// ServerConfig tunes a Server's liveness, overload, and retry-dedup
// behavior. The zero value disables all of it (no deadlines, no
// shedding, dedup with default window for enrolled sessions).
type ServerConfig struct {
	// IdleTimeout bounds how long a connection may sit between frames;
	// a dead peer is reaped instead of holding a reader goroutine
	// forever. Zero disables. Replication streams are exempt once
	// handed off.
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write. Zero disables.
	WriteTimeout time.Duration
	// MaxInflight caps the responses queued (unwritten) per connection;
	// past it, batches are shed with StatusOverloaded instead of
	// executed — a slow-reading client cannot pin server memory. Zero
	// disables.
	MaxInflight int
	// DedupWindow is how many responses the server caches per enrolled
	// session for retry dedup (default 4096). A retried id older than
	// the window gets StatusDedupMiss.
	DedupWindow int
	// DedupTTL is how long an idle session's cache is kept (default
	// 5m).
	DedupTTL time.Duration
	// Tracer, when non-nil, traces every TBatch request's lifecycle:
	// the server stamps issue/decode/commit/ack/write, the engine
	// stamps enqueue/dequeue/apply, and the writer finishes the span
	// (histogram aggregation plus sampled Chrome-trace export, one
	// track per connection). Nil disables tracing at one branch per
	// frame.
	Tracer *obs.Tracer
}

// withDefaults fills the zero values that have defaults.
func (c ServerConfig) withDefaults() ServerConfig {
	if c.DedupWindow <= 0 {
		c.DedupWindow = 4096
	}
	if c.DedupTTL <= 0 {
		c.DedupTTL = 5 * time.Minute
	}
	return c
}

// BatchHook observes every executed batch before its response is sent:
// the decoded engine ops, their results (carrying Shard/LSN for
// successful mutations), the dedup identity (session is 0 for
// unenrolled connections), and the already-encoded TBatchOK payload.
// It is the replication tap — the node layer turns each call into an
// atomic log group. The ops/results slices are reused across requests;
// implementations must copy what they keep. A non-nil returned func is
// awaited before the response is released to the client (synchronous
// replication gating).
type BatchHook func(session, reqID uint64, ops []engine.Op, results []engine.Result, resp []byte) func()

// AdminHandler answers TAdmin frames. ReplHandler takes ownership of a
// connection that opened a replication stream (TReplHello): the server
// has stopped its reader and writer for that conn; the handler runs the
// replication protocol and returns when the stream ends.
type (
	AdminHandler func(cmd AdminCmd) (AdminInfo, error)
	ReplHandler  func(conn net.Conn, hello Frame)
	// FetchHandler answers TReplFetch frames (anti-entropy repair
	// reads): it receives the request payload and returns the TReplChunk
	// payload. The codec is internal/replic's; wire treats both as
	// opaque. An error answers the request with TError without killing
	// the connection — one unservable range must not abort a repair
	// session fetching many.
	FetchHandler func(payload []byte) ([]byte, error)
	// OwnerGate vets each push against the node's owned slice of the
	// cluster key space, before the op reaches the engine. A refused
	// push gets a per-op StatusNotOwner result whose Value is the
	// returned map version — the redirect a routing client acts on.
	// Pops and peeks are never gated: cross-node strict-merge PopMin
	// reads every node's minimum regardless of who owns which band.
	// Called from connection goroutines; must be safe for concurrent
	// use and cheap (it sits on the hot path).
	OwnerGate func(op Op) (owned bool, mapVersion uint64)
	// ClusterHello answers TClusterHello: it receives the requester's
	// map version and returns the encoded local map when newer, or nil
	// (sent as an empty TClusterMap) when the requester is current.
	ClusterHello func(sinceVersion uint64) []byte
	// ClusterSink ingests an unsolicited TClusterMap push (gossip):
	// it may adopt the offered map and returns an optional reply
	// payload — the local map when it is the newer one, nil otherwise —
	// so one exchange converges both peers. The codec is
	// internal/cluster's; wire treats the payloads as opaque.
	ClusterSink func(payload []byte) []byte
)

// Server serves an engine over the wire protocol. Each accepted
// connection gets a reader goroutine (decode, execute against the
// engine, hand the response to the writer) and a writer goroutine that
// coalesces responses: it collects every response already queued before
// flushing, so a pipelined client costs one syscall per pipeline
// window, not one per response.
type Server struct {
	eng *engine.Engine
	cfg ServerConfig

	// serving gates TBatch traffic: a replication follower keeps it
	// false until promoted, answering queue traffic with
	// StatusNotPrimary so clients fail over.
	serving atomic.Bool

	onBatch BatchHook
	onAdmin AdminHandler
	onRepl  ReplHandler
	onFetch FetchHandler

	onOwner        OwnerGate
	onClusterHello ClusterHello
	onClusterSink  ClusterSink

	dedup dedupTable

	// connSeq numbers accepted connections; the id doubles as the
	// request-trace track so sampled spans from one connection share a
	// lane in the viewer.
	connSeq atomic.Int64

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps an engine with a zero config; call Serve to accept
// connections.
func NewServer(e *engine.Engine) *Server {
	return NewServerConfig(e, ServerConfig{})
}

// NewServerConfig is NewServer with explicit config.
func NewServerConfig(e *engine.Engine, cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	s := &Server{eng: e, cfg: cfg, conns: map[net.Conn]struct{}{}}
	s.serving.Store(true)
	s.dedup.init(cfg.DedupWindow, cfg.DedupTTL)
	return s
}

// SetServing flips the TBatch gate: false answers queue traffic with
// StatusNotPrimary (follower mode), true serves it (primary mode).
func (s *Server) SetServing(v bool) { s.serving.Store(v) }

// Serving reports the current gate state.
func (s *Server) Serving() bool { return s.serving.Load() }

// SetBatchHook installs the batch tap. Call before Serve.
func (s *Server) SetBatchHook(h BatchHook) { s.onBatch = h }

// SetAdminHandler installs the TAdmin responder. Call before Serve.
func (s *Server) SetAdminHandler(h AdminHandler) { s.onAdmin = h }

// SetReplHandler installs the replication-stream acceptor. Call before
// Serve.
func (s *Server) SetReplHandler(h ReplHandler) { s.onRepl = h }

// SetFetchHandler installs the anti-entropy fetch responder. Call
// before Serve.
func (s *Server) SetFetchHandler(h FetchHandler) { s.onFetch = h }

// SetOwnerGate installs the cluster push-ownership check. Call before
// Serve.
func (s *Server) SetOwnerGate(g OwnerGate) { s.onOwner = g }

// SetClusterHandlers installs the cluster-map exchange responders
// (TClusterHello and gossiped TClusterMap). Call before Serve.
func (s *Server) SetClusterHandlers(hello ClusterHello, sink ClusterSink) {
	s.onClusterHello = hello
	s.onClusterSink = sink
}

// InstallDedup inserts a cached response into a session's dedup cache —
// the follower's side of replicated dedup state, so a client retrying
// against a freshly promoted primary still gets the original answer.
func (s *Server) InstallDedup(session, reqID uint64, resp []byte) {
	if session == 0 {
		return
	}
	sess := s.dedup.get(session)
	sess.mu.Lock()
	sess.put(reqID, resp, s.cfg.DedupWindow)
	sess.mu.Unlock()
}

// Serve accepts connections on ln until Shutdown (which returns
// net.ErrClosed here) or a fatal accept error.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Shutdown stops accepting, then waits for every connection to drain
// (clients closing after their final response) until ctx expires, at
// which point remaining connections are closed forcibly. The engine is
// not touched — the caller owns its Close/Checkpoint sequence.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// response is one encoded frame headed for a connection's writer. sp,
// when non-nil, is the request's trace span: the writer stamps
// StageWrite once the bytes hit the socket and finishes the span.
type response struct {
	typ     Type
	id      uint64
	payload []byte
	sp      *obs.Span
}

// serveConn runs one connection's read-execute loop plus its coalescing
// writer.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	outCap := 128
	if s.cfg.MaxInflight >= outCap {
		outCap = s.cfg.MaxInflight + 8
	}
	tracer := s.cfg.Tracer
	connID := s.connSeq.Add(1)
	tracer.NameTrack(connID, "conn "+conn.RemoteAddr().String())

	out := make(chan response, outCap)
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		writeLoop(conn, out, s.cfg.WriteTimeout, tracer)
	}()
	writerStopped := false
	stopWriter := func() {
		if !writerStopped {
			writerStopped = true
			close(out)
			wwg.Wait()
		}
	}
	defer stopWriter()

	var (
		ops     []engine.Op
		results []engine.Result
		wres    []Result
		engIdx  []int
		peeks   []int
		session uint64
		sess    *sessionState
	)
	for {
		// The span origin: when the server turned to this request. Under
		// a loaded pipeline this is the moment the previous frame's
		// execution finished, so the decode segment covers socket wait +
		// read + parse.
		var issueNs int64
		if tracer != nil {
			issueNs = obs.SpanNow()
		}
		if s.cfg.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		f, err := ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				sendErr(out, 0, StatusInvalid, err)
			}
			return
		}
		switch f.Type {
		case THello:
			v, sid, err := ParseHello(f.Payload)
			if err != nil || v != Version {
				sendErr(out, f.ID, StatusInvalid, fmt.Errorf("unsupported version %d", v))
				return
			}
			session = sid
			if session != 0 {
				sess = s.dedup.get(session)
			}
			out <- response{THelloOK, f.ID, AppendHelloOK(nil, HelloInfo{
				Version:  Version,
				Shards:   uint32(s.eng.Shards()),
				Capacity: uint64(s.eng.Cap()),
			}), nil}
		case TBatch:
			if !s.serving.Load() {
				sendErr(out, f.ID, StatusNotPrimary, errors.New("replication follower: not serving queue traffic"))
				return
			}
			wireOps, err := ParseOps(f.Payload)
			if err != nil {
				sendErr(out, f.ID, StatusInvalid, err)
				return
			}
			sp := tracer.Begin(connID, issueNs)
			sp.Stamp(obs.StageDecode)
			// At-most-once comes before load shedding: a retried id
			// whose original already executed must get its cached
			// response verbatim — a fabricated overload refusal would
			// send the client back to re-issue ops that already
			// applied. Serving the cache is cheap and executes nothing.
			if sess != nil {
				sess.mu.Lock()
				if resp, ok := sess.cache[f.ID]; ok {
					sess.mu.Unlock()
					out <- response{TBatchOK, f.ID, resp, sp}
					continue
				}
				if f.ID <= sess.evictedMax {
					sess.mu.Unlock()
					sendErr(out, f.ID, StatusDedupMiss, fmt.Errorf("request id %d outside dedup window", f.ID))
					return
				}
			}
			// Per-connection overload shed: queued-but-unwritten
			// responses past the cap mean the client is not keeping up
			// with its own pipeline; refuse cheaply instead of
			// executing into a backlog. Shed batches are never cached —
			// a retry may execute.
			if s.cfg.MaxInflight > 0 && len(out) >= s.cfg.MaxInflight {
				if sess != nil {
					sess.mu.Unlock()
				}
				out <- response{TBatchOK, f.ID, appendShedResults(nil, len(wireOps)), sp}
				continue
			}
			// Front-door triage: ownership-refused pushes and peeks are
			// answered here without touching the engine; everything else
			// becomes an engine op, with engIdx mapping each engine
			// result back to its slot in the wire batch.
			ops = ops[:0]
			engIdx = engIdx[:0]
			peeks = peeks[:0]
			if cap(wres) < len(wireOps) {
				wres = make([]Result, len(wireOps))
			}
			wres = wres[:len(wireOps)]
			for wi, op := range wireOps {
				switch op.Kind {
				case OpPush:
					if s.onOwner != nil {
						if owned, ver := s.onOwner(op); !owned {
							wres[wi] = Result{Status: StatusNotOwner, Value: ver}
							continue
						}
					}
					ops = append(ops, engine.PushOp(core.Element{Value: op.Value, Meta: op.Meta}))
					engIdx = append(engIdx, wi)
				case OpPeek:
					peeks = append(peeks, wi)
				default:
					ops = append(ops, engine.PopOp())
					engIdx = append(engIdx, wi)
				}
			}
			if cap(results) < len(ops) {
				results = make([]engine.Result, len(ops))
			}
			results = results[:len(ops)]
			s.eng.SubmitTraced(ops, results, sp)
			if sp != nil {
				for i := range results {
					if results[i].Err != nil {
						// Errored spans are admitted to the flight
						// recorder unconditionally.
						sp.MarkError()
						break
					}
				}
			}
			for i, r := range results {
				wres[engIdx[i]] = Result{Status: statusOf(r.Err), Value: r.Elem.Value, Meta: r.Elem.Meta}
			}
			// Peeks read the published heads after the batch's accepted
			// ops have applied, so a [pop, peek] pair returns the popped
			// element and the node's next head in one round trip — the
			// cluster client's head-cache refresh piggyback.
			for _, wi := range peeks {
				if el, ok := s.eng.PeekMin(); ok {
					wres[wi] = Result{Status: StatusOK, Value: el.Value, Meta: el.Meta}
				} else {
					wres[wi] = Result{Status: StatusEmpty}
				}
			}
			payload := make([]byte, 0, 4+len(wres)*resultSize)
			payload = AppendResults(payload, wres)
			var wait func()
			if s.onBatch != nil {
				wait = s.onBatch(session, f.ID, ops, results, payload)
			}
			// Commit and ack are stamped unconditionally: without a
			// replication/WAL hook (or without sync mode) they are
			// zero-width segments, keeping all eight stage histograms
			// populated so dashboards need no per-mode special cases.
			sp.Stamp(obs.StageCommit)
			if sess != nil {
				sess.put(f.ID, payload, s.cfg.DedupWindow)
				sess.mu.Unlock()
			}
			if wait != nil {
				wait()
			}
			sp.Stamp(obs.StageAck)
			out <- response{TBatchOK, f.ID, payload, sp}
		case TAdmin:
			cmd, err := ParseAdmin(f.Payload)
			if err != nil {
				sendErr(out, f.ID, StatusInvalid, err)
				return
			}
			info, err := s.adminInfo(cmd)
			if err != nil {
				sendErr(out, f.ID, StatusInvalid, err)
				return
			}
			out <- response{TAdminOK, f.ID, AppendAdminInfo(nil, info), nil}
		case TClusterHello:
			if s.onClusterHello == nil {
				sendErr(out, f.ID, StatusInvalid, errors.New("cluster serving not enabled"))
				return
			}
			since, err := ParseClusterHello(f.Payload)
			if err != nil {
				sendErr(out, f.ID, StatusInvalid, err)
				return
			}
			out <- response{TClusterMap, f.ID, s.onClusterHello(since), nil}
		case TClusterMap:
			if s.onClusterSink == nil {
				sendErr(out, f.ID, StatusInvalid, errors.New("cluster serving not enabled"))
				return
			}
			// The sink decides adoption; the reply (possibly empty)
			// carries the local map back when it is the newer one, so a
			// single gossip exchange converges both peers.
			out <- response{TClusterMap, f.ID, s.onClusterSink(f.Payload), nil}
		case TReplFetch:
			if s.onFetch == nil {
				sendErr(out, f.ID, StatusInvalid, errors.New("anti-entropy fetch not enabled"))
				return
			}
			resp, err := s.onFetch(f.Payload)
			if err != nil {
				sendErr(out, f.ID, StatusInvalid, err)
				continue
			}
			out <- response{TReplChunk, f.ID, resp, nil}
		case TReplHello:
			if s.onRepl == nil {
				sendErr(out, f.ID, StatusInvalid, errors.New("replication not enabled"))
				return
			}
			// Hand the raw connection to the replication layer: stop
			// our writer first so frames cannot interleave, clear the
			// idle deadline (the stream manages its own liveness), and
			// run the stream to completion in this goroutine so
			// Shutdown still accounts for it.
			stopWriter()
			conn.SetReadDeadline(time.Time{})
			s.onRepl(conn, f)
			return
		default:
			sendErr(out, f.ID, StatusInvalid, fmt.Errorf("unexpected frame type %d", f.Type))
			return
		}
	}
}

// adminInfo answers a TAdmin command, via the installed handler or with
// the bare serving state when standalone.
func (s *Server) adminInfo(cmd AdminCmd) (AdminInfo, error) {
	if s.onAdmin != nil {
		return s.onAdmin(cmd)
	}
	if cmd == AdminPromote {
		return AdminInfo{}, errors.New("not a replication node")
	}
	info := AdminInfo{Role: RolePrimary, Serving: s.serving.Load()}
	for i := 0; i < s.eng.Shards(); i++ {
		info.ShardLSNs = append(info.ShardLSNs, s.eng.ShardLSN(i))
	}
	return info, nil
}

// appendShedResults encodes a TBatchOK payload of n StatusOverloaded
// results.
func appendShedResults(dst []byte, n int) []byte {
	shed := make([]Result, n)
	for i := range shed {
		shed[i] = Result{Status: StatusOverloaded}
	}
	return AppendResults(dst, shed)
}

// statusOf maps an engine error to its wire status.
func statusOf(err error) Status {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, core.ErrEmpty):
		return StatusEmpty
	case errors.Is(err, core.ErrFull):
		return StatusFull
	case errors.Is(err, engine.ErrOverloaded):
		return StatusOverloaded
	case errors.Is(err, engine.ErrBackpressure):
		return StatusBackpressure
	case errors.Is(err, engine.ErrClosed):
		return StatusClosed
	default:
		return StatusInvalid
	}
}

// sendErr queues a TError frame; best-effort if the writer is gone.
func sendErr(out chan<- response, id uint64, code Status, err error) {
	payload := append([]byte{byte(code)}, err.Error()...)
	select {
	case out <- response{TError, id, payload, nil}:
	default:
	}
}

// writeLoop is the per-connection coalescing writer: take one
// response, then opportunistically drain everything else already
// queued into the same buffer, write once. Each flushed response's
// span gets its StageWrite stamp after the socket write and is
// finished (aggregated, sampled, pooled) here.
func writeLoop(conn net.Conn, out <-chan response, writeTimeout time.Duration, tracer *obs.Tracer) {
	buf := make([]byte, 0, 64<<10)
	var spans []*obs.Span
	for r := range out {
		buf = AppendFrame(buf[:0], r.typ, r.id, r.payload)
		spans = spans[:0]
		if r.sp != nil {
			spans = append(spans, r.sp)
		}
	coalesce:
		for {
			select {
			case more, ok := <-out:
				if !ok {
					break coalesce
				}
				buf = AppendFrame(buf, more.typ, more.id, more.payload)
				if more.sp != nil {
					spans = append(spans, more.sp)
				}
			default:
				break coalesce
			}
		}
		if writeTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(writeTimeout))
		}
		if _, err := conn.Write(buf); err != nil {
			// Reader will notice the dead conn; just stop writing.
			// Finish pending spans unstamped — their last stage stays
			// wherever execution got to.
			for _, sp := range spans {
				tracer.Finish(sp)
			}
			for r := range out {
				tracer.Finish(r.sp)
			}
			return
		}
		for _, sp := range spans {
			sp.Stamp(obs.StageWrite)
			tracer.Finish(sp)
		}
	}
}

// sessionState is one session's retry-dedup cache: responses by request
// id, insertion-ordered for eviction, plus the high-water mark of
// evicted ids — a retried id at or below it is a dedup miss (the server
// cannot prove the original did not execute). The mutex also serializes
// the session's check-execute-store sequence, which is what makes a
// retry racing its original safe.
type sessionState struct {
	mu         sync.Mutex
	cache      map[uint64][]byte
	order      []uint64
	evictedMax uint64
	lastSeen   atomic.Int64 // unix nanos
}

// put caches a response, evicting the oldest entries past the window.
// Callers hold mu.
func (ss *sessionState) put(id uint64, resp []byte, window int) {
	if _, ok := ss.cache[id]; ok {
		return
	}
	ss.cache[id] = resp
	ss.order = append(ss.order, id)
	for len(ss.cache) > window {
		old := ss.order[0]
		ss.order = ss.order[1:]
		delete(ss.cache, old)
		if old > ss.evictedMax {
			ss.evictedMax = old
		}
	}
}

// dedupTable maps sessions to their caches, with TTL-based reaping of
// idle sessions.
type dedupTable struct {
	mu       sync.Mutex
	sessions map[uint64]*sessionState
	window   int
	ttl      time.Duration
}

func (t *dedupTable) init(window int, ttl time.Duration) {
	t.sessions = map[uint64]*sessionState{}
	t.window = window
	t.ttl = ttl
}

// get returns (creating if needed) the session's state and refreshes
// its TTL, sweeping expired sessions on creation.
func (t *dedupTable) get(session uint64) *sessionState {
	now := time.Now().UnixNano()
	t.mu.Lock()
	ss := t.sessions[session]
	if ss == nil {
		for id, other := range t.sessions {
			if now-other.lastSeen.Load() > int64(t.ttl) {
				delete(t.sessions, id)
			}
		}
		ss = &sessionState{cache: map[uint64][]byte{}}
		t.sessions[session] = ss
	}
	t.mu.Unlock()
	ss.lastSeen.Store(now)
	return ss
}
