package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
)

// Server serves an engine over the wire protocol. Each accepted
// connection gets a reader goroutine (decode, execute against the
// engine, hand the response to the writer) and a writer goroutine that
// coalesces responses: it collects every response already queued before
// flushing, so a pipelined client costs one syscall per pipeline
// window, not one per response.
type Server struct {
	eng *engine.Engine

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps an engine; call Serve to accept connections.
func NewServer(e *engine.Engine) *Server {
	return &Server{eng: e, conns: map[net.Conn]struct{}{}}
}

// Serve accepts connections on ln until Shutdown (which returns
// net.ErrClosed here) or a fatal accept error.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Shutdown stops accepting, then waits for every connection to drain
// (clients closing after their final response) until ctx expires, at
// which point remaining connections are closed forcibly. The engine is
// not touched — the caller owns its Close/Checkpoint sequence.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// response is one encoded frame headed for a connection's writer.
type response struct {
	typ     Type
	id      uint64
	payload []byte
}

// serveConn runs one connection's read-execute loop plus its coalescing
// writer.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()

	out := make(chan response, 128)
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		writeLoop(conn, out)
	}()
	defer func() {
		close(out)
		wwg.Wait()
	}()

	var (
		ops     []engine.Op
		results []engine.Result
	)
	for {
		f, err := ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				sendErr(out, 0, StatusInvalid, err)
			}
			return
		}
		switch f.Type {
		case THello:
			v, err := ParseHello(f.Payload)
			if err != nil || v != Version {
				sendErr(out, f.ID, StatusInvalid, fmt.Errorf("unsupported version %d", v))
				return
			}
			out <- response{THelloOK, f.ID, AppendHelloOK(nil, HelloInfo{
				Version:  Version,
				Shards:   uint32(s.eng.Shards()),
				Capacity: uint64(s.eng.Cap()),
			})}
		case TBatch:
			wireOps, err := ParseOps(f.Payload)
			if err != nil {
				sendErr(out, f.ID, StatusInvalid, err)
				return
			}
			ops = ops[:0]
			for _, op := range wireOps {
				switch op.Kind {
				case OpPush:
					ops = append(ops, engine.PushOp(core.Element{Value: op.Value, Meta: op.Meta}))
				default:
					ops = append(ops, engine.PopOp())
				}
			}
			if cap(results) < len(ops) {
				results = make([]engine.Result, len(ops))
			}
			results = results[:len(ops)]
			s.eng.SubmitInto(ops, results)
			payload := make([]byte, 0, 4+len(results)*resultSize)
			payload = appendEngineResults(payload, results)
			out <- response{TBatchOK, f.ID, payload}
		default:
			sendErr(out, f.ID, StatusInvalid, fmt.Errorf("unexpected frame type %d", f.Type))
			return
		}
	}
}

// appendEngineResults encodes engine results as a TBatchOK payload.
func appendEngineResults(dst []byte, results []engine.Result) []byte {
	wr := make([]Result, len(results))
	for i, r := range results {
		wr[i] = Result{Status: statusOf(r.Err), Value: r.Elem.Value, Meta: r.Elem.Meta}
	}
	return AppendResults(dst, wr)
}

// statusOf maps an engine error to its wire status.
func statusOf(err error) Status {
	switch {
	case err == nil:
		return StatusOK
	case errors.Is(err, core.ErrEmpty):
		return StatusEmpty
	case errors.Is(err, core.ErrFull):
		return StatusFull
	case errors.Is(err, engine.ErrBackpressure):
		return StatusBackpressure
	case errors.Is(err, engine.ErrClosed):
		return StatusClosed
	default:
		return StatusInvalid
	}
}

// sendErr queues a TError frame; best-effort if the writer is gone.
func sendErr(out chan<- response, id uint64, code Status, err error) {
	payload := append([]byte{byte(code)}, err.Error()...)
	select {
	case out <- response{TError, id, payload}:
	default:
	}
}

// writeLoop is the per-connection coalescing writer: take one
// response, then opportunistically drain everything else already
// queued into the same buffer, write once.
func writeLoop(conn net.Conn, out <-chan response) {
	buf := make([]byte, 0, 64<<10)
	for r := range out {
		buf = AppendFrame(buf[:0], r.typ, r.id, r.payload)
	coalesce:
		for {
			select {
			case more, ok := <-out:
				if !ok {
					break coalesce
				}
				buf = AppendFrame(buf, more.typ, more.id, more.payload)
			default:
				break coalesce
			}
		}
		if _, err := conn.Write(buf); err != nil {
			// Reader will notice the dead conn; just stop writing.
			for range out {
			}
			return
		}
	}
}
