package wire

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzFrameDecode holds the decoder to its contract on arbitrary
// bytes, mirroring FuzzWALReplay's torn-input discipline: never panic,
// never return a frame from input that fails validation, classify
// every failure as either ErrTruncated (valid prefix, needs more) or
// ErrBadFrame (structurally invalid), and stay consistent with the
// stream reader. Any frame that does decode must re-encode to exactly
// the consumed bytes, and its payload codecs must not panic either.
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendFrame(nil, THello, 1, AppendHello(nil, 0xFEED)))
	f.Add(AppendFrame(nil, TBatch, 2, AppendOps(nil, []Op{
		{Kind: OpPush, Value: 7, Meta: 9}, {Kind: OpPop},
	})))
	f.Add(AppendFrame(nil, TBatchOK, 3, AppendResults(nil, []Result{{Status: StatusOK, Value: 1, Meta: 2}})))
	f.Add(AppendFrame(nil, TAdmin, 6, AppendAdmin(nil, AdminPromote)))
	f.Add(AppendFrame(nil, TAdminOK, 7, AppendAdminInfo(nil, AdminInfo{
		Role: RoleFollower, Serving: false, LogSeq: 12, AckSeq: 11, ShardLSNs: []uint64{5, 6},
	})))
	f.Add(AppendFrame(nil, TReplHello, 8, []byte{1, 2, 3, 4}))
	f.Add(AppendFrame(nil, TReplOK, 9, make([]byte, 8)))
	f.Add(AppendFrame(nil, TReplRecords, 10, make([]byte, 20)))
	f.Add(AppendFrame(nil, TReplAck, 11, make([]byte, 8)))
	full := AppendFrame(nil, TBatch, 4, AppendOps(nil, []Op{{Kind: OpPop}}))
	f.Add(full[:len(full)-3]) // torn tail
	mangled := append([]byte(nil), full...)
	mangled[21] ^= 0x40 // header CRC corruption
	f.Add(mangled)
	flipped := append([]byte(nil), full...)
	flipped[HeaderSize] ^= 0x01 // payload corruption, caught by the trailer CRC
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, n, err := DecodeFrame(b)
		switch {
		case err == nil:
			if n < HeaderSize+TrailerSize || n > len(b) {
				t.Fatalf("consumed %d of %d", n, len(b))
			}
			if len(fr.Payload) != n-HeaderSize-TrailerSize {
				t.Fatalf("payload %d bytes, frame %d", len(fr.Payload), n)
			}
			// Re-encoding must reproduce the consumed bytes exactly:
			// the decoder accepted nothing it could not have written.
			re := AppendFrame(nil, fr.Type, fr.ID, fr.Payload)
			if !bytes.Equal(re, b[:n]) {
				t.Fatalf("re-encode mismatch:\n got %x\nwant %x", re, b[:n])
			}
			// Payload codecs must be panic-free on whatever arrived.
			switch fr.Type {
			case TBatch:
				_, _ = ParseOps(fr.Payload)
			case TBatchOK:
				_, _ = ParseResults(fr.Payload)
			case THello:
				_, _, _ = ParseHello(fr.Payload)
			case THelloOK:
				_, _ = ParseHelloOK(fr.Payload)
			case TAdmin:
				_, _ = ParseAdmin(fr.Payload)
			case TAdminOK:
				_, _ = ParseAdminInfo(fr.Payload)
			}
		case errors.Is(err, ErrTruncated):
			// A truncated verdict promises completability: appending
			// bytes may eventually produce a frame. It must never fire
			// on input that already holds a full invalid header.
			if n != 0 {
				t.Fatalf("truncated but consumed %d", n)
			}
		case errors.Is(err, ErrBadFrame):
			if n != 0 {
				t.Fatalf("bad frame but consumed %d", n)
			}
		default:
			t.Fatalf("unclassified decode error: %v", err)
		}

		// The stream reader must agree with the flat decoder: it
		// returns a frame only when DecodeFrame would.
		rf, rerr := ReadFrame(bytes.NewReader(b))
		if (rerr == nil) != (err == nil) {
			t.Fatalf("ReadFrame err=%v vs DecodeFrame err=%v", rerr, err)
		}
		if rerr == nil && (rf.Type != fr.Type || rf.ID != fr.ID || !bytes.Equal(rf.Payload, fr.Payload)) {
			t.Fatalf("ReadFrame %+v != DecodeFrame %+v", rf, fr)
		}
	})
}

// FuzzBatchCodecs holds ParseOps/ParseResults to panic-freedom and
// round-trip identity on arbitrary payload bytes.
func FuzzBatchCodecs(f *testing.F) {
	f.Add(AppendOps(nil, []Op{{Kind: OpPush, Value: 3, Meta: 4}, {Kind: OpPop}}))
	f.Add(AppendResults(nil, []Result{{Status: StatusEmpty}}))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, b []byte) {
		if ops, err := ParseOps(b); err == nil {
			if !bytes.Equal(AppendOps(nil, ops), b) {
				t.Fatal("ops re-encode mismatch")
			}
		}
		if res, err := ParseResults(b); err == nil {
			if !bytes.Equal(AppendResults(nil, res), b) {
				t.Fatal("results re-encode mismatch")
			}
		}
	})
}
