package wire

import (
	"encoding/binary"
	"fmt"
)

// MaxBatchOps bounds the operations in one TBatch frame; it keeps the
// frame far under MaxPayload and bounds per-request server work.
const MaxBatchOps = 4096

// OpKind is a wire operation kind.
type OpKind uint8

// Wire operation kinds.
const (
	OpPush OpKind = 1
	OpPop  OpKind = 2
	// OpPeek returns the server's current global minimum (StatusOK with
	// the element, or StatusEmpty) without removing it. It is the
	// cluster client's head probe: cross-node strict-merge PopMin keeps
	// a per-node head cache and drains from the globally minimal head,
	// so a cheap non-mutating read of each node's minimum is what makes
	// the merge affordable. Peeks mutate nothing and are never
	// replicated.
	OpPeek OpKind = 3
)

// Op is one queue operation in a TBatch payload.
type Op struct {
	Kind  OpKind
	Value uint64
	Meta  uint64
}

// Status is one operation's outcome in a TBatchOK payload.
type Status uint8

// Operation statuses.
const (
	// StatusOK: the operation succeeded; a pop carries its element.
	StatusOK Status = 0
	// StatusEmpty: pop against an empty engine.
	StatusEmpty Status = 1
	// StatusFull: push against a full shard queue.
	StatusFull Status = 2
	// StatusBackpressure: push refused at admission (ring full or
	// shard almost-full); the client should back off and retry.
	StatusBackpressure Status = 3
	// StatusClosed: the engine is shutting down.
	StatusClosed Status = 4
	// StatusInvalid: the operation was malformed or unsupported.
	StatusInvalid Status = 5
	// StatusOverloaded: the server shed the operation at admission —
	// sustained queue-depth or drain-latency overload, or the per-
	// connection in-flight cap. Back off harder than for
	// StatusBackpressure; the server is protecting itself.
	StatusOverloaded Status = 6
	// StatusNotPrimary: this server is a replication follower and does
	// not accept queue operations; fail over to the primary (or the
	// promoted standby). Sent in TError frames, never per-op.
	StatusNotPrimary Status = 7
	// StatusDedupMiss: a retried request id fell outside the server's
	// dedup window, so the server cannot tell whether the original
	// executed. Sent in TError frames; the client must treat the
	// operation's fate as indeterminate. With a sane window this only
	// fires on protocol misuse.
	StatusDedupMiss Status = 8
	// StatusNotOwner: this node does not own the cluster key-space slice
	// the push routes to. Per-op, never connection-fatal; the result's
	// Value carries the node's current cluster-map version, so a client
	// holding an older map knows a refresh will re-route the op and a
	// client already at that version knows the disagreement is real.
	StatusNotOwner Status = 9
)

// maxStatus is the largest defined status, for decode validation.
const maxStatus = StatusNotOwner

// String names the status for logs.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusEmpty:
		return "empty"
	case StatusFull:
		return "full"
	case StatusBackpressure:
		return "backpressure"
	case StatusClosed:
		return "closed"
	case StatusInvalid:
		return "invalid"
	case StatusOverloaded:
		return "overloaded"
	case StatusNotPrimary:
		return "not-primary"
	case StatusDedupMiss:
		return "dedup-miss"
	case StatusNotOwner:
		return "not-owner"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Result is one operation's outcome. Value/Meta are meaningful for a
// StatusOK pop.
type Result struct {
	Status Status
	Value  uint64
	Meta   uint64
}

// Payload sizes: an op is 1 byte of kind plus 16 bytes of element for
// pushes; pops and peeks are the bare kind byte; a result is a fixed
// 17 bytes so decoding needs no knowledge of the originating ops.
const (
	opPopSize  = 1
	opPushSize = 1 + 16
	resultSize = 1 + 16
)

// AppendOps appends the TBatch payload encoding of ops to dst.
func AppendOps(dst []byte, ops []Op) []byte {
	if len(ops) > MaxBatchOps {
		panic(fmt.Sprintf("wire: batch of %d exceeds MaxBatchOps %d", len(ops), MaxBatchOps))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ops)))
	for _, op := range ops {
		dst = append(dst, byte(op.Kind))
		if op.Kind == OpPush {
			dst = binary.LittleEndian.AppendUint64(dst, op.Value)
			dst = binary.LittleEndian.AppendUint64(dst, op.Meta)
		}
	}
	return dst
}

// ParseOps decodes a TBatch payload. Arbitrary input never panics;
// malformed payloads return ErrBadFrame-wrapped errors.
func ParseOps(p []byte) ([]Op, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("%w: batch payload %d bytes", ErrBadFrame, len(p))
	}
	count := binary.LittleEndian.Uint32(p[:4])
	if count > MaxBatchOps {
		return nil, fmt.Errorf("%w: batch count %d", ErrBadFrame, count)
	}
	p = p[4:]
	ops := make([]Op, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(p) < 1 {
			return nil, fmt.Errorf("%w: batch truncated at op %d", ErrBadFrame, i)
		}
		kind := OpKind(p[0])
		switch kind {
		case OpPop, OpPeek:
			ops = append(ops, Op{Kind: kind})
			p = p[opPopSize:]
		case OpPush:
			if len(p) < opPushSize {
				return nil, fmt.Errorf("%w: push op truncated at %d", ErrBadFrame, i)
			}
			ops = append(ops, Op{
				Kind:  OpPush,
				Value: binary.LittleEndian.Uint64(p[1:9]),
				Meta:  binary.LittleEndian.Uint64(p[9:17]),
			})
			p = p[opPushSize:]
		default:
			return nil, fmt.Errorf("%w: op kind %d", ErrBadFrame, kind)
		}
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after batch", ErrBadFrame, len(p))
	}
	return ops, nil
}

// AppendResults appends the TBatchOK payload encoding of results.
func AppendResults(dst []byte, results []Result) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(results)))
	for _, r := range results {
		dst = append(dst, byte(r.Status))
		dst = binary.LittleEndian.AppendUint64(dst, r.Value)
		dst = binary.LittleEndian.AppendUint64(dst, r.Meta)
	}
	return dst
}

// ParseResults decodes a TBatchOK payload.
func ParseResults(p []byte) ([]Result, error) {
	if len(p) < 4 {
		return nil, fmt.Errorf("%w: results payload %d bytes", ErrBadFrame, len(p))
	}
	count := binary.LittleEndian.Uint32(p[:4])
	if count > MaxBatchOps {
		return nil, fmt.Errorf("%w: results count %d", ErrBadFrame, count)
	}
	p = p[4:]
	if len(p) != int(count)*resultSize {
		return nil, fmt.Errorf("%w: results payload %d bytes for count %d", ErrBadFrame, len(p), count)
	}
	results := make([]Result, count)
	for i := range results {
		e := p[i*resultSize : (i+1)*resultSize]
		s := Status(e[0])
		if s > maxStatus {
			return nil, fmt.Errorf("%w: status %d", ErrBadFrame, e[0])
		}
		results[i] = Result{
			Status: s,
			Value:  binary.LittleEndian.Uint64(e[1:9]),
			Meta:   binary.LittleEndian.Uint64(e[9:17]),
		}
	}
	return results, nil
}

// Hello payload helpers.

// AppendHello appends the THello payload: the client's protocol
// version plus its session id. A nonzero session id enrolls the
// connection in the server's retry-dedup cache, so a request id
// retried after a reconnect (same session) is answered from cache
// instead of re-executed. Session 0 opts out.
func AppendHello(dst []byte, session uint64) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, Version)
	return binary.LittleEndian.AppendUint64(dst, session)
}

// ParseHello decodes a THello payload.
func ParseHello(p []byte) (version uint32, session uint64, err error) {
	if len(p) != 12 {
		return 0, 0, fmt.Errorf("%w: hello payload %d bytes", ErrBadFrame, len(p))
	}
	return binary.LittleEndian.Uint32(p), binary.LittleEndian.Uint64(p[4:]), nil
}

// AppendClusterHello appends the TClusterHello payload: the sender's
// current cluster-map version. The TClusterMap answer's payload is
// encoded by internal/cluster; wire carries it as opaque bytes.
func AppendClusterHello(dst []byte, version uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, version)
}

// ParseClusterHello decodes a TClusterHello payload.
func ParseClusterHello(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("%w: cluster hello payload %d bytes", ErrBadFrame, len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}

// HelloInfo is the server's THelloOK body.
type HelloInfo struct {
	Version  uint32
	Shards   uint32
	Capacity uint64
}

// AppendHelloOK appends the THelloOK payload.
func AppendHelloOK(dst []byte, info HelloInfo) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, info.Version)
	dst = binary.LittleEndian.AppendUint32(dst, info.Shards)
	return binary.LittleEndian.AppendUint64(dst, info.Capacity)
}

// ParseHelloOK decodes a THelloOK payload.
func ParseHelloOK(p []byte) (HelloInfo, error) {
	if len(p) != 16 {
		return HelloInfo{}, fmt.Errorf("%w: hello-ok payload %d bytes", ErrBadFrame, len(p))
	}
	return HelloInfo{
		Version:  binary.LittleEndian.Uint32(p[0:4]),
		Shards:   binary.LittleEndian.Uint32(p[4:8]),
		Capacity: binary.LittleEndian.Uint64(p[8:16]),
	}, nil
}
