package wire

import (
	"context"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
)

// startServer spins up an engine + wire server on a loopback listener
// and returns the dial address plus a shutdown func.
func startServer(t *testing.T, cfg engine.Config) (string, func()) {
	t.Helper()
	e, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(e)
	done := make(chan struct{})
	go func() {
		srv.Serve(ln)
		close(done)
	}()
	return ln.Addr().String(), func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		<-done
		e.Close()
	}
}

// TestClientServerRoundTrip pushes and pops over a real TCP loopback
// connection and checks ranks come back in merged sorted order.
func TestClientServerRoundTrip(t *testing.T) {
	addr, stop := startServer(t, engine.Config{
		Shards: 4, Order: 2, Levels: 6, Routing: engine.RouteRank,
	})
	defer stop()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Info().Shards != 4 {
		t.Fatalf("handshake shards = %d", c.Info().Shards)
	}

	ops := make([]Op, 0, 64)
	for i := 0; i < 64; i++ {
		ops = append(ops, Op{Kind: OpPush, Value: uint64(64 - i), Meta: uint64(i)})
	}
	res, err := c.Do(ops)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Status != StatusOK {
			t.Fatalf("push %d: status %v", i, r.Status)
		}
	}

	pops := make([]Op, 64)
	for i := range pops {
		pops[i] = Op{Kind: OpPop}
	}
	res, err = c.Do(pops)
	if err != nil {
		t.Fatal(err)
	}
	values := []uint64{}
	for i, r := range res {
		if r.Status != StatusOK {
			t.Fatalf("pop %d: status %v", i, r.Status)
		}
		values = append(values, r.Value)
	}
	if !sort.SliceIsSorted(values, func(i, j int) bool { return values[i] < values[j] }) {
		t.Fatalf("pops not sorted: %v", values)
	}

	// Pop on empty: typed status, not an error.
	res, err = c.Do([]Op{{Kind: OpPop}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Status != StatusEmpty {
		t.Fatalf("pop on empty: status %v", res[0].Status)
	}
}

// TestPipelinedClients runs concurrent goroutines over one connection
// plus a second connection, exercising id-matched pipelining and the
// server's coalescing writer.
func TestPipelinedClients(t *testing.T) {
	addr, stop := startServer(t, engine.Config{
		Shards: 2, Order: 2, Levels: 8, Routing: engine.RouteHash,
	})
	defer stop()

	clients := make([]*Client, 2)
	for i := range clients {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}

	var wg sync.WaitGroup
	var pushed, popped sync.Map
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := clients[w%len(clients)]
			for i := 0; i < 30; i++ {
				ops := []Op{
					{Kind: OpPush, Value: uint64(w*1000 + i), Meta: uint64(w)<<32 | uint64(i)},
					{Kind: OpPop},
				}
				res, err := c.Do(ops)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if res[0].Status == StatusOK {
					pushed.Store(ops[0].Meta, ops[0].Value)
				}
				if res[1].Status == StatusOK {
					popped.Store(res[1].Meta, res[1].Value)
				}
			}
		}(w)
	}
	wg.Wait()

	// Every popped element must have been pushed with the same rank.
	popped.Range(func(k, v any) bool {
		want, ok := pushed.Load(k)
		if !ok {
			t.Errorf("popped element meta %v never pushed", k)
			return false
		}
		if want != v {
			t.Errorf("meta %v: popped rank %v, pushed %v", k, v, want)
		}
		return true
	})
}
