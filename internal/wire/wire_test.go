package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestFrameRoundTrip pins encode/decode identity for every frame type
// and representative payloads.
func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xAB}, 1000)}
	for _, typ := range []Type{THello, THelloOK, TBatch, TBatchOK, TError,
		TReplHello, TReplOK, TReplRecords, TReplAck, TAdmin, TAdminOK} {
		for _, p := range payloads {
			buf := AppendFrame(nil, typ, 42, p)
			f, n, err := DecodeFrame(buf)
			if err != nil {
				t.Fatalf("type %d payload %d: %v", typ, len(p), err)
			}
			if n != len(buf) {
				t.Fatalf("consumed %d of %d", n, len(buf))
			}
			if f.Type != typ || f.ID != 42 || !bytes.Equal(f.Payload, p) {
				t.Fatalf("round trip mismatch: %+v", f)
			}
		}
	}
}

// TestTornFrameNeverReturnedAsData is the torn-input contract: every
// strict prefix of a valid frame decodes to ErrTruncated — never to a
// frame, never to ErrBadFrame (the prefix is still completable).
func TestTornFrameNeverReturnedAsData(t *testing.T) {
	full := AppendFrame(nil, TBatch, 7, AppendOps(nil, []Op{
		{Kind: OpPush, Value: 10, Meta: 20},
		{Kind: OpPop},
	}))
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := DecodeFrame(full[:cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("prefix %d/%d: err = %v, want ErrTruncated", cut, len(full), err)
		}
		// The stream reader must report the tear, not fabricate a frame.
		if _, err := ReadFrame(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("ReadFrame on %d/%d torn bytes succeeded", cut, len(full))
		}
	}
	if _, err := ReadFrame(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream = %v, want io.EOF", err)
	}
}

// TestBadFrames pins ErrBadFrame on structural corruption.
func TestBadFrames(t *testing.T) {
	good := AppendFrame(nil, TBatch, 1, []byte{0, 0, 0, 0})
	corrupt := func(mut func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		mut(b)
		return b
	}
	cases := map[string][]byte{
		"magic":       corrupt(func(b []byte) { b[0] ^= 0xFF }),
		"version":     corrupt(func(b []byte) { b[4] = 99 }),
		"type":        corrupt(func(b []byte) { b[5] = 200 }),
		"flags":       corrupt(func(b []byte) { b[6] = 1 }),
		"crc":         corrupt(func(b []byte) { b[20] ^= 0xFF }),
		"length":      corrupt(func(b []byte) { b[16] = 0xFF; b[17] = 0xFF; b[18] = 0xFF }),
		"payload":     corrupt(func(b []byte) { b[HeaderSize] ^= 0x01 }),
		"payload-crc": corrupt(func(b []byte) { b[len(b)-1] ^= 0x01 }),
	}
	for name, b := range cases {
		if _, _, err := DecodeFrame(b); !errors.Is(err, ErrBadFrame) {
			t.Errorf("%s corruption: err = %v, want ErrBadFrame", name, err)
		}
	}
	// Corrupting version/type/flags/length without fixing the CRC must
	// fail regardless of which check fires first; corrupting the CRC
	// itself fails the CRC check. All covered above.
}

// TestOpsRoundTrip pins the batch payload codecs.
func TestOpsRoundTrip(t *testing.T) {
	ops := []Op{
		{Kind: OpPush, Value: 1, Meta: 2},
		{Kind: OpPop},
		{Kind: OpPush, Value: 1<<63 + 5, Meta: 0},
		{Kind: OpPop},
	}
	got, err := ParseOps(AppendOps(nil, ops))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("got %d ops", len(got))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d: %+v != %+v", i, got[i], ops[i])
		}
	}

	results := []Result{
		{Status: StatusOK, Value: 9, Meta: 8},
		{Status: StatusEmpty},
		{Status: StatusBackpressure},
	}
	gr, err := ParseResults(AppendResults(nil, results))
	if err != nil {
		t.Fatal(err)
	}
	for i := range results {
		if gr[i] != results[i] {
			t.Fatalf("result %d: %+v != %+v", i, gr[i], results[i])
		}
	}
}

// TestHelloRoundTrip pins the handshake codecs.
func TestHelloRoundTrip(t *testing.T) {
	v, session, err := ParseHello(AppendHello(nil, 0xDEAD))
	if err != nil || v != Version || session != 0xDEAD {
		t.Fatalf("hello: v=%d session=%#x err=%v", v, session, err)
	}
	info := HelloInfo{Version: Version, Shards: 8, Capacity: 1 << 20}
	got, err := ParseHelloOK(AppendHelloOK(nil, info))
	if err != nil || got != info {
		t.Fatalf("hello-ok: %+v err=%v", got, err)
	}
}

// TestAdminRoundTrip pins the admin codecs.
func TestAdminRoundTrip(t *testing.T) {
	for _, cmd := range []AdminCmd{AdminStatus, AdminPromote} {
		got, err := ParseAdmin(AppendAdmin(nil, cmd))
		if err != nil || got != cmd {
			t.Fatalf("admin cmd %d: got %d err=%v", cmd, got, err)
		}
	}
	if _, err := ParseAdmin([]byte{9}); err == nil {
		t.Fatal("unknown admin command accepted")
	}
	infos := []AdminInfo{
		{Role: RolePrimary, Serving: true, Followers: 1, LogSeq: 99, AckSeq: 98, ShardLSNs: []uint64{3, 0, 7, 1}},
		{Role: RoleFollower, Degraded: true},
	}
	for i, info := range infos {
		got, err := ParseAdminInfo(AppendAdminInfo(nil, info))
		if err != nil {
			t.Fatalf("info %d: %v", i, err)
		}
		if got.Role != info.Role || got.Serving != info.Serving || got.Degraded != info.Degraded ||
			got.Followers != info.Followers || got.LogSeq != info.LogSeq || got.AckSeq != info.AckSeq ||
			len(got.ShardLSNs) != len(info.ShardLSNs) {
			t.Fatalf("info %d: %+v != %+v", i, got, info)
		}
		for j := range info.ShardLSNs {
			if got.ShardLSNs[j] != info.ShardLSNs[j] {
				t.Fatalf("info %d shard %d: %d != %d", i, j, got.ShardLSNs[j], info.ShardLSNs[j])
			}
		}
	}
	if _, err := ParseAdminInfo([]byte{0, 0}); err == nil {
		t.Fatal("short admin info accepted")
	}
}
