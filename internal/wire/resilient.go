package wire

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrDedupMiss reports that a retried request id had fallen out of the
// server's dedup window: the server cannot say whether the original
// executed, so the operation's outcome is permanently indeterminate.
// ResilientClient surfaces it instead of retrying — a retry could
// double-apply.
var ErrDedupMiss = errors.New("wire: retried request outside server dedup window")

// ResilientOptions tunes a ResilientClient.
type ResilientOptions struct {
	// Addrs are the server addresses in preference order: primary
	// first, standbys after. On connection failure or StatusNotPrimary
	// the client rotates to the next address.
	Addrs []string
	// Session identifies this client in the servers' retry-dedup
	// caches; 0 picks a random nonzero session.
	Session uint64
	// RequestTimeout bounds each individual attempt (default 5s).
	RequestTimeout time.Duration
	// MaxAttempts bounds the retries per Do call; 0 retries without
	// bound (the chaos harness's mode — every op eventually resolves).
	MaxAttempts int
	// BaseDelay and MaxDelay shape the reconnect/retry backoff:
	// exponential from BaseDelay (default 5ms), capped at MaxDelay
	// (default 1s), with uniform jitter in [0.5,1.5)× to decorrelate
	// clients.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Conn holds the per-connection liveness options. Conn.Session is
	// overwritten with the resolved session.
	Conn ClientOptions
}

// ResilientStats are a ResilientClient's cumulative fault counters.
type ResilientStats struct {
	// Retries counts attempts after the first, across all Do calls.
	Retries uint64
	// Timeouts counts per-attempt request timeouts.
	Timeouts uint64
	// Reconnects counts successful re-dials after a connection died.
	Reconnects uint64
	// Failovers counts rotations to a different server address.
	Failovers uint64
	// DedupMisses counts permanently indeterminate operations — any
	// nonzero value means an acknowledged-exactly-once guarantee could
	// not be established for some op.
	DedupMisses uint64
}

// ResilientClient wraps Client with reconnection, failover, and
// at-most-once retries. Each logical request keeps one id for its whole
// retry lifetime; because every connection carries the same session id,
// the server answers a retried id from its dedup cache when the
// original did execute — an ack lost to a dead connection never becomes
// a double-apply. Safe for concurrent use.
type ResilientClient struct {
	opts ResilientOptions

	nextID atomic.Uint64

	mu      sync.Mutex
	c       *Client // live connection, nil when down
	addrIdx int
	dialed  bool // a first connection has succeeded
	closed  bool

	retries, timeouts, reconnects, failovers, dedupMisses atomic.Uint64
}

// NewResilientClient builds the client; connections are dialed lazily
// on first use.
func NewResilientClient(opts ResilientOptions) (*ResilientClient, error) {
	if len(opts.Addrs) == 0 {
		return nil, errors.New("wire: resilient client needs at least one address")
	}
	if opts.Session == 0 {
		for opts.Session == 0 {
			opts.Session = rand.Uint64()
		}
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 5 * time.Second
	}
	if opts.BaseDelay <= 0 {
		opts.BaseDelay = 5 * time.Millisecond
	}
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = time.Second
	}
	opts.Conn.Session = opts.Session
	return &ResilientClient{opts: opts}, nil
}

// Session returns the resolved dedup session id.
func (rc *ResilientClient) Session() uint64 { return rc.opts.Session }

// Stats snapshots the fault counters.
func (rc *ResilientClient) Stats() ResilientStats {
	return ResilientStats{
		Retries:     rc.retries.Load(),
		Timeouts:    rc.timeouts.Load(),
		Reconnects:  rc.reconnects.Load(),
		Failovers:   rc.failovers.Load(),
		DedupMisses: rc.dedupMisses.Load(),
	}
}

// Addr returns the address currently preferred for connections.
func (rc *ResilientClient) Addr() string {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.opts.Addrs[rc.addrIdx]
}

// SetAddrs replaces the address list (e.g. after a permanent topology
// change); the current connection is kept until it fails.
func (rc *ResilientClient) SetAddrs(addrs []string) {
	if len(addrs) == 0 {
		return
	}
	rc.mu.Lock()
	rc.opts.Addrs = append([]string(nil), addrs...)
	rc.addrIdx = 0
	rc.mu.Unlock()
}

// Close tears down the current connection and stops future dials.
func (rc *ResilientClient) Close() error {
	rc.mu.Lock()
	rc.closed = true
	c := rc.c
	rc.c = nil
	rc.mu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}

// Do submits one batch with retries, reconnection, and failover. The
// returned results are exactly-once: either from the first execution or
// the server's dedup cache. A wrapped ErrDedupMiss means the outcome is
// indeterminate; any other error is terminal for this request (closed
// client, attempts exhausted).
func (rc *ResilientClient) Do(ops []Op) ([]Result, error) {
	id := rc.nextID.Add(1)
	var lastErr error
	for attempt := 0; rc.opts.MaxAttempts == 0 || attempt < rc.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			rc.retries.Add(1)
			rc.sleepBackoff(attempt)
		}
		c, err := rc.conn()
		if err != nil {
			if errors.Is(err, ErrConnClosed) {
				return nil, err
			}
			lastErr = err
			continue
		}
		results, err := c.DoID(id, ops, rc.opts.RequestTimeout)
		if err == nil {
			return results, nil
		}
		lastErr = err
		var serr *ServerError
		switch {
		case errors.Is(err, ErrRequestTimeout):
			rc.timeouts.Add(1)
			rc.dropConn(c, false)
		case errors.As(err, &serr):
			switch serr.Code {
			case StatusNotPrimary:
				// This node is (still) a follower; rotate and retry.
				rc.dropConn(c, true)
			case StatusDedupMiss:
				rc.dedupMisses.Add(1)
				return nil, fmt.Errorf("%w: id %d: %v", ErrDedupMiss, id, err)
			default:
				// Other server errors are protocol-level and terminal.
				rc.dropConn(c, false)
				return nil, err
			}
		default:
			// Connection-level failure (reset, EOF, deadline on a dead
			// peer): drop and retry on a fresh connection.
			rc.dropConn(c, false)
		}
	}
	return nil, fmt.Errorf("wire: request %d failed after %d attempts: %w", id, rc.opts.MaxAttempts, lastErr)
}

// conn returns the live connection, dialing (with address rotation on
// failure) when there is none.
func (rc *ResilientClient) conn() (*Client, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed {
		return nil, ErrConnClosed
	}
	if rc.c != nil {
		return rc.c, nil
	}
	addr := rc.opts.Addrs[rc.addrIdx]
	c, err := DialOptions(addr, rc.opts.Conn)
	if err != nil {
		// Rotate so the next attempt tries the following address.
		rc.rotateLocked()
		return nil, err
	}
	rc.c = c
	if rc.dialed {
		rc.reconnects.Add(1)
	}
	rc.dialed = true
	return c, nil
}

// dropConn discards c if it is still current, optionally rotating to
// the next address first.
func (rc *ResilientClient) dropConn(c *Client, rotate bool) {
	c.Close()
	rc.mu.Lock()
	if rc.c == c {
		rc.c = nil
		if rotate {
			rc.rotateLocked()
		}
	}
	rc.mu.Unlock()
}

// rotateLocked advances to the next configured address.
func (rc *ResilientClient) rotateLocked() {
	if len(rc.opts.Addrs) > 1 {
		rc.addrIdx = (rc.addrIdx + 1) % len(rc.opts.Addrs)
		rc.failovers.Add(1)
	}
}

// sleepBackoff sleeps the capped exponential backoff with jitter for
// the given retry attempt (1-based).
func (rc *ResilientClient) sleepBackoff(attempt int) {
	d := rc.opts.BaseDelay << uint(attempt-1)
	if d <= 0 || d > rc.opts.MaxDelay {
		d = rc.opts.MaxDelay
	}
	// Uniform jitter in [0.5, 1.5)× decorrelates retry storms.
	d = time.Duration(float64(d) * (0.5 + rand.Float64()))
	time.Sleep(d)
}
