// Snapshot/replay codec: the PIFO baseline as a persist.Checkpointable.
//
// The payload captures the sorted entry array, the operation counters
// (the logical clock), the cycle count, the high-water mark, and — when
// the queue was instrumented — the per-entry sojourn born-tags. A
// snapshot from an uninstrumented queue restored into an instrumented
// one synthesises born tags at the restore clock, so sojourn accounting
// stays well-formed (observations == pops, sojourn <= clock).

package pifo

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/persist"
)

// pifoSnapVersion is the current snapshot codec version.
const pifoSnapVersion = 1

var _ persist.Checkpointable = (*PIFO)(nil)

// SnapshotKind identifies PIFO snapshots.
func (p *PIFO) SnapshotKind() string { return "pifo" }

// SnapshotVersion returns the codec version EncodeSnapshot writes.
func (p *PIFO) SnapshotVersion() uint32 { return pifoSnapVersion }

// EncodeSnapshot serialises the complete queue state.
func (p *PIFO) EncodeSnapshot() ([]byte, error) {
	var e persist.Enc
	e.U32(uint32(p.cap))
	e.U64(p.cycle)
	e.U64(p.pushes)
	e.U64(p.pops)
	e.U64(uint64(p.maxLen))
	e.U32(uint32(len(p.entries)))
	for i := range p.entries {
		e.U64(p.entries[i].Value)
		e.U64(p.entries[i].Meta)
	}
	e.Bool(p.born != nil)
	for _, b := range p.born {
		e.U32(b)
	}
	return e.B, nil
}

// RestoreSnapshot loads a payload into the receiver, which must have
// the same capacity. The payload is fully decoded before any receiver
// state changes.
func (p *PIFO) RestoreSnapshot(version uint32, payload []byte) error {
	if version != pifoSnapVersion {
		return fmt.Errorf("pifo: unsupported snapshot version %d (have %d)", version, pifoSnapVersion)
	}
	d := persist.NewDec(payload)
	capacity := int(d.U32())
	cycle := d.U64()
	pushes, pops := d.U64(), d.U64()
	maxLen := int(d.U64())
	n := d.Len(1 << 30)
	if err := d.Err(); err != nil {
		return err
	}
	if capacity != p.cap {
		return fmt.Errorf("pifo: snapshot capacity %d does not match queue capacity %d", capacity, p.cap)
	}
	if n > capacity {
		return fmt.Errorf("pifo: snapshot holds %d entries, capacity is %d", n, capacity)
	}
	entries := make([]core.Element, n)
	for i := range entries {
		entries[i] = core.Element{Value: d.U64(), Meta: d.U64()}
	}
	var born []uint32
	if d.Bool() {
		born = make([]uint32, n)
		for i := range born {
			born[i] = d.U32()
		}
	}
	if err := d.Done(); err != nil {
		return err
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].Value < entries[i-1].Value {
			return fmt.Errorf("pifo: snapshot entries unsorted at %d (%d after %d)",
				i, entries[i].Value, entries[i-1].Value)
		}
	}
	p.entries = entries
	p.cycle = cycle
	p.pushes, p.pops = pushes, pops
	p.maxLen = maxLen
	switch {
	case p.sojourn == nil:
		// Uninstrumented receiver: born tags are dead weight.
		p.born = nil
	case born != nil:
		p.born = born
	default:
		// Instrumented receiver, uninstrumented snapshot: re-tag every
		// entry at the restore clock so sojourns stay bounded by it.
		p.born = make([]uint32, n)
		now := p.clock()
		for i := range p.born {
			p.born[i] = now
		}
	}
	return nil
}

// Replay applies one logged operation; the PIFO clock is the operation
// count, so no cycle alignment is needed.
func (p *PIFO) Replay(op persist.Op) error {
	switch op.Kind {
	case hw.Push:
		return p.Push(core.Element{Value: op.Value, Meta: op.Meta})
	case hw.Pop:
		e, err := p.Pop()
		if err != nil {
			return err
		}
		if e.Value != op.Value || e.Meta != op.Meta {
			return fmt.Errorf("pifo: replay divergence: popped (%d,%d), log recorded (%d,%d)",
				e.Value, e.Meta, op.Value, op.Meta)
		}
		return nil
	default:
		return fmt.Errorf("pifo: replay of invalid op kind %v", op.Kind)
	}
}

// VerifyRecovered checks the shift register's defining invariant: the
// entries are sorted by rank (FIFO among ties is positional and cannot
// be violated by a sorted array restore).
func (p *PIFO) VerifyRecovered() error {
	for i := 1; i < len(p.entries); i++ {
		if p.entries[i].Value < p.entries[i-1].Value {
			return fmt.Errorf("pifo: recovered entries unsorted at %d", i)
		}
	}
	if p.born != nil && len(p.born) != len(p.entries) {
		return fmt.Errorf("pifo: born tags (%d) out of step with entries (%d)", len(p.born), len(p.entries))
	}
	return nil
}
