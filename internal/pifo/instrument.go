package pifo

import "repro/internal/obs"

// Instrument registers the PIFO's probes in reg under the given
// metric-name prefix. All instruments are snapshot-time callbacks —
// the shift-register model is purely software state, so there is no
// per-cycle bookkeeping to add; snapshot only between operations.
// A nil registry is a no-op.
func (p *PIFO) Instrument(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.CounterFunc(prefix+"_pushes_total", func() uint64 { return p.pushes })
	reg.CounterFunc(prefix+"_pops_total", func() uint64 { return p.pops })
	reg.CounterFunc(prefix+"_cycles_total", func() uint64 { return p.cycle })
	reg.GaugeFunc(prefix+"_occupancy", func() float64 { return float64(len(p.entries)) })
	reg.GaugeFunc(prefix+"_capacity", func() float64 { return float64(p.cap) })
	reg.GaugeFunc(prefix+"_occupancy_highwater", func() float64 { return float64(p.maxLen) })
}
