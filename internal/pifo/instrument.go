package pifo

import "repro/internal/obs"

// Instrument registers the PIFO's probes in reg under the given
// metric-name prefix. All instruments are snapshot-time callbacks —
// the shift-register model is purely software state, so there is no
// per-cycle bookkeeping to add; snapshot only between operations.
// A nil registry is a no-op.
func (p *PIFO) Instrument(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.Help(prefix+"_sojourn_cycles",
		"enqueue-to-dequeue latency of popped elements in logical clock ticks (one tick per push or pop)")
	p.sojourn = reg.QuantileHistogram(prefix + "_sojourn_cycles")
	p.born = p.born[:0]
	for range p.entries {
		// Elements already resident when instrumentation attaches get
		// the current tick; their sojourn measures from this point.
		p.born = append(p.born, p.clock())
	}
	reg.CounterFunc(prefix+"_pushes_total", func() uint64 { return p.pushes })
	reg.CounterFunc(prefix+"_pops_total", func() uint64 { return p.pops })
	reg.CounterFunc(prefix+"_cycles_total", func() uint64 { return p.cycle })
	reg.GaugeFunc(prefix+"_occupancy", func() float64 { return float64(len(p.entries)) })
	reg.GaugeFunc(prefix+"_capacity", func() float64 { return float64(p.cap) })
	reg.GaugeFunc(prefix+"_occupancy_highwater", func() float64 { return float64(p.maxLen) })
}

// SojournSnapshot returns the sojourn-latency distribution collected
// since Instrument was called (the zero snapshot when uninstrumented).
func (p *PIFO) SojournSnapshot() obs.QuantileSnapshot { return p.sojourn.Snapshot() }
