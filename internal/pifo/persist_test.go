package pifo

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/persist"
)

func drive(t *testing.T, p *PIFO, seed int64, ops int) []persist.Op {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var log []persist.Op
	for i := 0; i < ops; i++ {
		if p.Len() > 0 && (rng.Intn(3) == 0 || p.AlmostFull()) {
			e, err := p.Pop()
			if err != nil {
				t.Fatal(err)
			}
			ps, qs := p.Stats()
			log = append(log, persist.Op{Kind: hw.Pop, Cycle: ps + qs, Value: e.Value, Meta: e.Meta})
			continue
		}
		e := core.Element{Value: uint64(rng.Intn(100)), Meta: uint64(i)}
		if err := p.Push(e); err != nil {
			t.Fatal(err)
		}
		ps, qs := p.Stats()
		log = append(log, persist.Op{Kind: hw.Push, Cycle: ps + qs, Value: e.Value, Meta: e.Meta})
	}
	return log
}

func drainAll(t *testing.T, p *PIFO) []core.Element {
	t.Helper()
	var out []core.Element
	for p.Len() > 0 {
		e, err := p.Pop()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, e)
	}
	return out
}

func TestSnapshotRoundTrip(t *testing.T) {
	a := New(64)
	drive(t, a, 1, 200)
	payload, err := a.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	b := New(64)
	if err := b.RestoreSnapshot(a.SnapshotVersion(), payload); err != nil {
		t.Fatal(err)
	}
	if err := b.VerifyRecovered(); err != nil {
		t.Fatal(err)
	}
	da, db := drainAll(t, a), drainAll(t, b)
	if len(da) != len(db) {
		t.Fatalf("drain lengths %d vs %d", len(da), len(db))
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("pop %d diverged: %+v vs %+v (FIFO tie order must survive the round trip)", i, da[i], db[i])
		}
	}
}

func TestSnapshotCarriesBornTags(t *testing.T) {
	reg := obs.NewRegistry()
	a := New(32)
	a.Instrument(reg, "a")
	drive(t, a, 2, 100)

	payload, err := a.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	reg2 := obs.NewRegistry()
	b := New(32)
	b.Instrument(reg2, "b")
	if err := b.RestoreSnapshot(1, payload); err != nil {
		t.Fatal(err)
	}
	if len(b.born) != len(b.entries) {
		t.Fatalf("born tags %d for %d entries", len(b.born), len(b.entries))
	}
	for i := range b.born {
		if b.born[i] != a.born[i] {
			t.Fatalf("born tag %d diverged: %d vs %d", i, b.born[i], a.born[i])
		}
	}
}

func TestRestoreSynthesisesBornForUninstrumentedSnapshot(t *testing.T) {
	a := New(32) // uninstrumented: snapshot has no born tags
	drive(t, a, 3, 80)
	payload, err := a.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	b := New(32)
	b.Instrument(reg, "b")
	if err := b.RestoreSnapshot(1, payload); err != nil {
		t.Fatal(err)
	}
	now := b.clock()
	for i, tag := range b.born {
		if tag != now {
			t.Fatalf("synthesised born[%d] = %d, want restore clock %d", i, tag, now)
		}
	}
	if err := b.VerifyRecovered(); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreRejectsBadPayloads(t *testing.T) {
	a := New(16)
	drive(t, a, 4, 40)
	payload, err := a.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := New(8).RestoreSnapshot(1, payload); err == nil || !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("capacity mismatch accepted: %v", err)
	}
	if err := New(16).RestoreSnapshot(7, payload); err == nil {
		t.Fatal("unknown version accepted")
	}
	if err := New(16).RestoreSnapshot(1, payload[:len(payload)-1]); err == nil {
		t.Fatal("truncated payload accepted")
	}

	// Unsorted entries must be rejected: hand-craft a payload.
	var e persist.Enc
	e.U32(16)     // cap
	e.U64(0)      // cycle
	e.U64(2)      // pushes
	e.U64(0)      // pops
	e.U64(2)      // maxLen
	e.U32(2)      // entries
	e.U64(5)      // val 0
	e.U64(0)      // meta 0
	e.U64(3)      // val 1 < val 0: unsorted
	e.U64(0)      // meta 1
	e.Bool(false) // no born tags
	if err := New(16).RestoreSnapshot(1, e.B); err == nil || !strings.Contains(err.Error(), "unsorted") {
		t.Fatalf("unsorted entries accepted: %v", err)
	}
}

func TestReplayAuditsPops(t *testing.T) {
	p := New(8)
	if err := p.Replay(persist.Op{Kind: hw.Push, Cycle: 1, Value: 4, Meta: 9}); err != nil {
		t.Fatal(err)
	}
	if err := p.Replay(persist.Op{Kind: hw.Pop, Cycle: 2, Value: 5, Meta: 9}); err == nil {
		t.Fatal("divergent pop accepted")
	}
}
