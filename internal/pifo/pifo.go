// Package pifo models the original PIFO flow scheduler of Sivaraman et
// al., "Programmable packet scheduling at line rate" (SIGCOMM 2016) —
// the baseline the BMW-Tree paper compares against.
//
// The original design is a sorted shift register: every entry sits in a
// flip-flop block; a pushed element is broadcast to all blocks, each
// block compares its rank against the incoming one in parallel, and the
// insertion point shifts the tail of the array down — all within a
// single clock cycle. A pop removes the head (smallest rank) and shifts
// everything up, also in one cycle.
//
// Both operations complete in one cycle, so the scheduling rate equals
// the clock frequency. The price is scalability: the broadcast bus must
// load every block (the "bus loading problem") and the parallel
// priority-encoder depth grows with the number of entries, so the
// maximum frequency collapses as capacity grows — 40 MHz at 4096
// entries on the paper's FPGA versus 384 MHz for the 2-order R-BMW of
// the same capacity (Section 6.1). The frequency model lives in
// internal/fpga; this package provides the functional and cycle
// behaviour.
//
// Ties are FIFO: a new element is inserted after existing entries of
// equal rank, matching the shift-register insert-before-first-larger
// hardware rule.
//
// A PIFO is intentionally confined to a single goroutine: it models
// hardware with one issue port per cycle and carries no locks on its
// hot path. Concurrent callers go through internal/engine, which gives
// each queue an exclusively owning shard goroutine.
package pifo

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/obs"
)

// PIFO is a sorted shift-register priority queue with fixed capacity.
type PIFO struct {
	entries []core.Element
	cap     int
	cycle   uint64

	pushes, pops uint64
	maxLen       int

	// sojourn, when instrumented, observes enqueue-to-dequeue latency
	// in logical clock ticks (one tick per push or pop); born shadows
	// entries with each element's insertion tick. Both stay nil on an
	// uninstrumented queue, so the bare path never touches them.
	sojourn *obs.QuantileHistogram
	born    []uint32
}

// clock returns the logical clock: one tick per completed operation.
func (p *PIFO) clock() uint32 { return uint32(p.pushes + p.pops) }

// New creates an empty PIFO with the given capacity (number of shift
// register blocks).
func New(capacity int) *PIFO {
	if capacity < 1 {
		panic("pifo: capacity must be positive")
	}
	pre := capacity
	if pre > 4096 {
		pre = 4096 // grow lazily for very large capacities
	}
	return &PIFO{entries: make([]core.Element, 0, pre), cap: capacity}
}

// Len returns the number of stored elements; Cap the capacity.
func (p *PIFO) Len() int { return len(p.entries) }

// Cap returns the number of shift-register blocks.
func (p *PIFO) Cap() int { return p.cap }

// Cycle returns the elapsed clock cycles (one per operation, including
// nops issued through Tick).
func (p *PIFO) Cycle() uint64 { return p.cycle }

// AlmostFull reports whether a push would overflow.
func (p *PIFO) AlmostFull() bool { return len(p.entries) >= p.cap }

// Stats returns the operation counts.
func (p *PIFO) Stats() (pushes, pops uint64) { return p.pushes, p.pops }

// Push inserts an element in rank order (after ties). It costs one
// cycle in hardware. Returns ErrFull at capacity.
func (p *PIFO) Push(e core.Element) error {
	if len(p.entries) >= p.cap {
		return core.ErrFull
	}
	// Parallel compare in hardware; binary search in simulation. The
	// insertion point is after the last entry with rank <= e.Value.
	lo, hi := 0, len(p.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.entries[mid].Value <= e.Value {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	p.entries = append(p.entries, core.Element{})
	copy(p.entries[lo+1:], p.entries[lo:])
	p.entries[lo] = e
	if p.sojourn != nil {
		p.born = append(p.born, 0)
		copy(p.born[lo+1:], p.born[lo:])
		p.born[lo] = p.clock()
	}
	p.pushes++
	if len(p.entries) > p.maxLen {
		p.maxLen = len(p.entries)
	}
	return nil
}

// HighWatermark returns the largest occupancy reached since creation.
func (p *PIFO) HighWatermark() int { return p.maxLen }

// Pop removes and returns the head (smallest rank; FIFO among ties).
func (p *PIFO) Pop() (core.Element, error) {
	if len(p.entries) == 0 {
		return core.Element{}, core.ErrEmpty
	}
	e := p.entries[0]
	copy(p.entries, p.entries[1:])
	p.entries = p.entries[:len(p.entries)-1]
	if p.sojourn != nil {
		p.sojourn.Observe(uint64(p.clock() - p.born[0]))
		copy(p.born, p.born[1:])
		p.born = p.born[:len(p.born)-1]
	}
	p.pops++
	return e, nil
}

// Peek returns the head without removing it.
func (p *PIFO) Peek() (core.Element, error) {
	if len(p.entries) == 0 {
		return core.Element{}, core.ErrEmpty
	}
	return p.entries[0], nil
}

// Tick presents one cycle's external signal, mirroring the Tick
// interface of the BMW simulators. Every operation — push, pop or nop —
// costs exactly one cycle; there are no availability restrictions
// (PIFO "finishes an operation in one cycle", Section 6.1, which is
// precisely what limits its clock frequency).
func (p *PIFO) Tick(op hw.Op) (*core.Element, error) {
	switch op.Kind {
	case hw.Push:
		if err := p.Push(core.Element{Value: op.Value, Meta: op.Meta}); err != nil {
			return nil, err
		}
		p.cycle++
		return nil, nil
	case hw.Pop:
		e, err := p.Pop()
		if err != nil {
			return nil, err
		}
		p.cycle++
		return &e, nil
	default:
		p.cycle++
		return nil, nil
	}
}

// TickPushPop performs an enqueue and a dequeue in the same clock
// cycle — the original PIFO block supports one push and one pop
// concurrently per cycle (Sivaraman et al., Section 4 of their paper),
// which is why the paper's PIFO schedules packets at its full clock
// rate (40 Mpps at 40 MHz).
func (p *PIFO) TickPushPop(op hw.Op) (*core.Element, error) {
	if op.Kind != hw.Push {
		return nil, fmt.Errorf("pifo: TickPushPop requires a push operand, got %v", op.Kind)
	}
	if err := p.Push(core.Element{Value: op.Value, Meta: op.Meta}); err != nil {
		return nil, err
	}
	e, err := p.Pop()
	if err != nil {
		return nil, err
	}
	p.cycle++
	return &e, nil
}

// Reset empties the queue.
func (p *PIFO) Reset() {
	p.entries = p.entries[:0]
	p.born = p.born[:0]
}
