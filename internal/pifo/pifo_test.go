package pifo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/refpq"
)

func TestBasicOrder(t *testing.T) {
	p := New(8)
	for _, v := range []uint64{5, 1, 9, 3, 7} {
		if err := p.Push(core.Element{Value: v, Meta: v * 10}); err != nil {
			t.Fatal(err)
		}
	}
	want := []uint64{1, 3, 5, 7, 9}
	for _, w := range want {
		e, err := p.Pop()
		if err != nil || e.Value != w {
			t.Fatalf("pop = %v,%v want %d", e, err, w)
		}
	}
	if _, err := p.Pop(); err != core.ErrEmpty {
		t.Fatalf("pop empty = %v", err)
	}
}

// TestFIFOAmongTies verifies the shift-register insertion rule: equal
// ranks dequeue in arrival order.
func TestFIFOAmongTies(t *testing.T) {
	p := New(16)
	for i := uint64(0); i < 5; i++ {
		p.Push(core.Element{Value: 7, Meta: i})
	}
	p.Push(core.Element{Value: 3, Meta: 100})
	p.Push(core.Element{Value: 9, Meta: 200})
	e, _ := p.Pop()
	if e.Value != 3 {
		t.Fatalf("head = %d, want 3", e.Value)
	}
	for i := uint64(0); i < 5; i++ {
		e, _ := p.Pop()
		if e.Value != 7 || e.Meta != i {
			t.Fatalf("tie %d popped %+v, want meta %d", i, e, i)
		}
	}
}

func TestCapacity(t *testing.T) {
	p := New(4)
	for i := 0; i < 4; i++ {
		if p.AlmostFull() {
			t.Fatal("full too early")
		}
		if err := p.Push(core.Element{Value: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if !p.AlmostFull() {
		t.Fatal("not full at capacity")
	}
	if err := p.Push(core.Element{Value: 0}); err != core.ErrFull {
		t.Fatalf("push full = %v", err)
	}
}

func TestOneOpPerCycle(t *testing.T) {
	p := New(64)
	ops := 0
	for i := 0; i < 20; i++ {
		if _, err := p.Tick(hw.PushOp(uint64(i%5), uint64(i))); err != nil {
			t.Fatal(err)
		}
		ops++
		if _, err := p.Tick(hw.PopOp()); err != nil {
			t.Fatal(err)
		}
		ops++
	}
	if p.Cycle() != uint64(ops) {
		t.Fatalf("cycles = %d, want %d (one op per cycle, no idle restrictions)", p.Cycle(), ops)
	}
	pushes, pops := p.Stats()
	if pushes != 20 || pops != 20 {
		t.Fatalf("stats = %d,%d", pushes, pops)
	}
}

func TestRandomAgainstReference(t *testing.T) {
	p := New(512)
	ref := refpq.New()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20000; i++ {
		if ref.Len() == 0 || (rng.Intn(2) == 0 && !p.AlmostFull()) {
			e := core.Element{Value: uint64(rng.Intn(128)), Meta: uint64(i)}
			if err := p.Push(e); err != nil {
				t.Fatal(err)
			}
			ref.Push(refpq.Entry{Value: e.Value, Meta: e.Meta})
		} else {
			e, err := p.Pop()
			if err != nil {
				t.Fatal(err)
			}
			if e.Value != ref.MinValue() {
				t.Fatalf("pop %d, ref min %d", e.Value, ref.MinValue())
			}
			if !ref.RemoveExact(refpq.Entry{Value: e.Value, Meta: e.Meta}) {
				t.Fatalf("popped element not in reference")
			}
		}
	}
}

func TestQuickSortedDrain(t *testing.T) {
	prop := func(vals []uint16) bool {
		p := New(len(vals) + 1)
		for _, v := range vals {
			if err := p.Push(core.Element{Value: uint64(v)}); err != nil {
				return false
			}
		}
		var prev uint64
		for i := range vals {
			e, err := p.Pop()
			if err != nil {
				return false
			}
			if i > 0 && e.Value < prev {
				return false
			}
			prev = e.Value
		}
		return p.Len() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	p := New(8)
	p.Push(core.Element{Value: 1})
	p.Reset()
	if p.Len() != 0 {
		t.Fatal("Reset did not empty")
	}
	if _, err := p.Peek(); err != core.ErrEmpty {
		t.Fatal("peek after reset")
	}
}

// TestTickPushPop verifies the dual-port behaviour of the original
// PIFO: one enqueue and one dequeue complete in a single cycle, so the
// scheduling rate equals the clock rate.
func TestTickPushPop(t *testing.T) {
	p := New(16)
	p.Push(core.Element{Value: 5, Meta: 1})
	c := p.Cycle()
	e, err := p.TickPushPop(hw.PushOp(9, 2))
	if err != nil {
		t.Fatal(err)
	}
	if e.Value != 5 {
		t.Fatalf("popped %d, want 5 (the pre-existing minimum)", e.Value)
	}
	if p.Cycle() != c+1 {
		t.Fatal("push+pop did not complete in one cycle")
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d", p.Len())
	}
	if _, err := p.TickPushPop(hw.PopOp()); err == nil {
		t.Fatal("TickPushPop must require a push operand")
	}
}
