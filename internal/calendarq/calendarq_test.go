package calendarq

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

func TestBucketedOrder(t *testing.T) {
	q := New(8, 100, 64)
	// Ranks in distinct buckets dequeue in bucket order.
	for _, r := range []uint64{750, 150, 450} {
		if err := q.Push(core.Element{Value: r}); err != nil {
			t.Fatal(err)
		}
	}
	want := []uint64{150, 450, 750}
	for _, w := range want {
		e, err := q.Pop()
		if err != nil || e.Value != w {
			t.Fatalf("pop = %v,%v want %d", e, err, w)
		}
	}
	if _, err := q.Pop(); err != core.ErrEmpty {
		t.Fatalf("pop empty = %v", err)
	}
}

// TestIntraBucketFIFO: ranks within one bucket leave in arrival order,
// which is where bounded inversions come from.
func TestIntraBucketFIFO(t *testing.T) {
	q := New(8, 100, 64)
	q.Push(core.Element{Value: 90, Meta: 1})
	q.Push(core.Element{Value: 10, Meta: 2}) // same bucket, lower rank, arrives later
	e1, _ := q.Pop()
	e2, _ := q.Pop()
	if e1.Meta != 1 || e2.Meta != 2 {
		t.Fatalf("intra-bucket order: %v then %v", e1, e2)
	}
	// That was an inversion: 90 left before 10.
	var m stats.InversionMeter
	m.Observe(e1.Value)
	m.Observe(e2.Value)
	if m.Inversions() != 1 {
		t.Fatal("expected one bounded inversion")
	}
}

// TestHorizonSquash: ranks beyond the calendar horizon land in the
// last bucket (counted by Overflowed), the paper's "limited range of
// values" critique.
func TestHorizonSquash(t *testing.T) {
	q := New(4, 10, 16) // horizon 40
	q.Push(core.Element{Value: 5})
	q.Push(core.Element{Value: 1000})
	q.Push(core.Element{Value: 2000})
	if q.Overflowed() != 2 {
		t.Fatalf("Overflowed = %d", q.Overflowed())
	}
	e, _ := q.Pop()
	if e.Value != 5 {
		t.Fatalf("first pop = %d", e.Value)
	}
	// The squashed ranks are now indistinguishable: FIFO among them.
	e, _ = q.Pop()
	if e.Value != 1000 {
		t.Fatalf("second pop = %d", e.Value)
	}
}

func TestRotation(t *testing.T) {
	q := New(4, 10, 64)
	// Fill bucket 0, drain it, then push a rank that would have been
	// beyond the original horizon — after rotation it is representable.
	q.Push(core.Element{Value: 5})
	q.Pop()
	// Push ranks as the calendar advances.
	rng := rand.New(rand.NewSource(1))
	var m stats.InversionMeter
	next := uint64(10)
	inq := 0
	for i := 0; i < 2000; i++ {
		if inq < 30 && rng.Intn(2) == 0 {
			if err := q.Push(core.Element{Value: next}); err == nil {
				inq++
			}
			next += uint64(rng.Intn(15))
		} else if inq > 0 {
			e, err := q.Pop()
			if err != nil {
				t.Fatal(err)
			}
			m.Observe(e.Value)
			inq--
		}
	}
	// Mostly-increasing ranks with a rotating calendar: inversions are
	// bounded by a bucket width; most dequeues stay in order.
	if m.Rate() > 0.3 {
		t.Fatalf("inversion rate %.2f too high for monotone workload", m.Rate())
	}
}

func TestCapacity(t *testing.T) {
	q := New(4, 10, 2)
	q.Push(core.Element{Value: 1})
	q.Push(core.Element{Value: 2})
	if err := q.Push(core.Element{Value: 3}); err != core.ErrFull {
		t.Fatalf("push full = %v", err)
	}
}

func TestPeek(t *testing.T) {
	q := New(4, 10, 8)
	if _, err := q.Peek(); err != core.ErrEmpty {
		t.Fatal("peek empty")
	}
	q.Push(core.Element{Value: 25})
	if e, _ := q.Peek(); e.Value != 25 {
		t.Fatal("peek wrong")
	}
	if q.Len() != 1 {
		t.Fatal("peek consumed")
	}
}

func TestInvalidParamsPanic(t *testing.T) {
	for _, fn := range []func(){
		func() { New(1, 10, 8) },
		func() { New(4, 0, 8) },
		func() { New(4, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid params did not panic")
				}
			}()
			fn()
		}()
	}
}
