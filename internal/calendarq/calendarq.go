// Package calendarq implements a rotating calendar queue, the
// approximation behind AFQ/PCQ/Gearbox that Section 7.2 of the
// BMW-Tree paper surveys (and Brown's classic 1988 structure). Ranks
// map to time buckets of fixed width; dequeue drains the earliest
// non-empty bucket in FIFO order, so packets within a bucket can leave
// out of rank order (bounded inversions of up to one bucket width),
// and ranks beyond the calendar horizon are squashed into the last
// bucket (unbounded inversions there) — the "limited rank range"
// problem the paper attributes to calendar-queue schedulers.
package calendarq

import (
	"repro/internal/core"
)

// Queue is a rotating calendar queue.
type Queue struct {
	buckets    [][]core.Element
	width      uint64 // rank units per bucket
	horizon    uint64 // first rank not representable without squashing
	head       int    // index of the current (earliest) bucket
	headRank   uint64 // smallest rank the head bucket represents
	size       int
	cap        int
	overflowed uint64 // elements squashed into the last bucket
}

// New creates a calendar with n buckets of the given rank width and a
// total element capacity.
func New(n int, width uint64, capacity int) *Queue {
	if n < 2 || width == 0 || capacity < 1 {
		panic("calendarq: invalid parameters")
	}
	return &Queue{
		buckets: make([][]core.Element, n),
		width:   width,
		horizon: uint64(n) * width,
		cap:     capacity,
	}
}

// Len returns the stored element count and Cap the capacity.
func (q *Queue) Len() int { return q.size }
func (q *Queue) Cap() int { return q.cap }

// Overflowed returns how many elements were squashed into the last
// bucket because their rank exceeded the calendar horizon.
func (q *Queue) Overflowed() uint64 { return q.overflowed }

// Push files the element into its rank bucket (relative to the current
// head); ranks past the horizon land in the last bucket.
func (q *Queue) Push(e core.Element) error {
	if q.size >= q.cap {
		return core.ErrFull
	}
	n := len(q.buckets)
	var offset uint64
	if e.Value > q.headRank {
		offset = (e.Value - q.headRank) / q.width
	}
	if offset >= uint64(n) {
		offset = uint64(n) - 1
		q.overflowed++
	}
	idx := (q.head + int(offset)) % n
	q.buckets[idx] = append(q.buckets[idx], e)
	q.size++
	return nil
}

// Pop drains the earliest non-empty bucket FIFO-first, rotating the
// calendar forward past empty buckets.
func (q *Queue) Pop() (core.Element, error) {
	if q.size == 0 {
		return core.Element{}, core.ErrEmpty
	}
	q.rotate()
	b := &q.buckets[q.head]
	e := (*b)[0]
	*b = (*b)[1:]
	if len(*b) == 0 {
		*b = nil
	}
	q.size--
	return e, nil
}

// Peek returns the head of the earliest non-empty bucket.
func (q *Queue) Peek() (core.Element, error) {
	if q.size == 0 {
		return core.Element{}, core.ErrEmpty
	}
	q.rotate()
	return q.buckets[q.head][0], nil
}

// rotate advances the head to the first non-empty bucket, moving the
// calendar's representable window forward.
func (q *Queue) rotate() {
	n := len(q.buckets)
	for i := 0; i < n && len(q.buckets[q.head]) == 0; i++ {
		q.head = (q.head + 1) % n
		q.headRank += q.width
	}
}
