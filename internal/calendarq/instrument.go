package calendarq

import "repro/internal/obs"

// Instrument registers the queue's probes in reg under the given
// metric-name prefix. All instruments are snapshot-time callbacks
// reading queue state — snapshot only between operations. Overflows
// count ranks past the calendar horizon squashed into the last bucket,
// the unbounded-inversion case the BMW-Tree paper attributes to
// calendar-queue schedulers. A nil registry is a no-op.
func (q *Queue) Instrument(reg *obs.Registry, prefix string) {
	if reg == nil {
		return
	}
	reg.CounterFunc(prefix+"_overflowed_total", func() uint64 { return q.overflowed })
	reg.GaugeFunc(prefix+"_occupancy", func() float64 { return float64(q.size) })
	reg.GaugeFunc(prefix+"_capacity", func() float64 { return float64(q.cap) })
	reg.GaugeFunc(prefix+"_head_rank", func() float64 { return float64(q.headRank) })
}
