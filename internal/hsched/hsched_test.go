package hsched

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
)

// TestHPFQ is the classic scheduling-tree example: the root divides
// the link between two classes with weights 1:1; class A fair-queues
// two flows, class B carries one. Flow shares must come out 25/25/50.
func TestHPFQ(t *testing.T) {
	root := New(core.New(2, 6), sched.NewSTFQ(1))
	classA := root.AddNode(0, core.New(2, 6), sched.NewSTFQ(1))
	classB := root.AddNode(0, core.New(2, 6), sched.NewSTFQ(1))

	// Backlog all three flows.
	for i := 0; i < 20; i++ {
		if err := root.Enqueue(classA, sched.Packet{Flow: 1, Bytes: 1000}, nil); err != nil {
			t.Fatal(err)
		}
		if err := root.Enqueue(classA, sched.Packet{Flow: 2, Bytes: 1000}, nil); err != nil {
			t.Fatal(err)
		}
		if err := root.Enqueue(classB, sched.Packet{Flow: 3, Bytes: 1000}, nil); err != nil {
			t.Fatal(err)
		}
	}
	counts := map[uint32]int{}
	for i := 0; i < 40; i++ {
		p, _, err := root.Dequeue()
		if err != nil {
			t.Fatal(err)
		}
		counts[p.Flow]++
	}
	// Hierarchical fairness: flow 3 gets ~half the service, flows 1 and
	// 2 about a quarter each.
	if counts[3] < 18 || counts[3] > 22 {
		t.Fatalf("class B share = %d/40, want ~20 (HPFQ)", counts[3])
	}
	if counts[1] < 8 || counts[1] > 12 || counts[2] < 8 || counts[2] > 12 {
		t.Fatalf("class A flows = %d/%d, want ~10 each", counts[1], counts[2])
	}
}

// TestWeightedClasses gives class B twice class A's weight.
func TestWeightedClasses(t *testing.T) {
	rootRanker := sched.NewSTFQ(1)
	root := New(core.New(2, 6), rootRanker)
	classA := root.AddNode(0, core.New(2, 6), sched.NewSTFQ(1))
	classB := root.AddNode(0, core.New(2, 6), sched.NewSTFQ(1))
	rootRanker.SetWeight(uint32(classA), 1)
	rootRanker.SetWeight(uint32(classB), 2)

	for i := 0; i < 30; i++ {
		root.Enqueue(classA, sched.Packet{Flow: 1, Bytes: 900}, nil)
		root.Enqueue(classB, sched.Packet{Flow: 2, Bytes: 900}, nil)
	}
	counts := map[uint32]int{}
	for i := 0; i < 30; i++ {
		p, _, err := root.Dequeue()
		if err != nil {
			t.Fatal(err)
		}
		counts[p.Flow]++
	}
	if counts[2] < 18 || counts[2] > 22 {
		t.Fatalf("weight-2 class got %d/30, want ~20", counts[2])
	}
}

func TestSingleNodeDegeneratesToPIFO(t *testing.T) {
	tr := New(core.New(2, 4), sched.FCFS{})
	for _, arr := range []uint64{5, 1, 3} {
		if err := tr.Enqueue(0, sched.Packet{Flow: 1, Arrival: arr}, arr); err != nil {
			t.Fatal(err)
		}
	}
	want := []uint64{1, 3, 5}
	for _, w := range want {
		p, payload, err := tr.Dequeue()
		if err != nil || p.Arrival != w || payload.(uint64) != w {
			t.Fatalf("pop = %v,%v,%v want %d", p, payload, err, w)
		}
	}
	if _, _, err := tr.Dequeue(); err != ErrEmpty {
		t.Fatalf("dequeue empty = %v", err)
	}
}

func TestAdmissionChecksWholePath(t *testing.T) {
	// Tiny root PIFO (capacity 2) above a roomy leaf: the third packet
	// must be rejected without corrupting either queue.
	root := New(core.New(2, 1), sched.FCFS{})
	leaf := root.AddNode(0, core.New(2, 4), sched.FCFS{})
	if err := root.Enqueue(leaf, sched.Packet{Flow: 1, Arrival: 1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := root.Enqueue(leaf, sched.Packet{Flow: 1, Arrival: 2}, nil); err != nil {
		t.Fatal(err)
	}
	if err := root.Enqueue(leaf, sched.Packet{Flow: 1, Arrival: 3}, nil); err != ErrFull {
		t.Fatalf("overfull enqueue = %v", err)
	}
	if root.Len() != 2 {
		t.Fatalf("Len = %d", root.Len())
	}
	for i := 0; i < 2; i++ {
		if _, _, err := root.Dequeue(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestThreeLevels(t *testing.T) {
	// root -> tenant -> app -> flows.
	root := New(core.New(2, 6), sched.NewSTFQ(1))
	tenant := root.AddNode(0, core.New(2, 6), sched.NewSTFQ(1))
	app := root.AddNode(tenant, core.New(2, 6), sched.NewSTFQ(1))
	for i := 0; i < 10; i++ {
		if err := root.Enqueue(app, sched.Packet{Flow: uint32(i % 2), Bytes: 500}, i); err != nil {
			t.Fatal(err)
		}
	}
	seen := 0
	for {
		_, _, err := root.Dequeue()
		if err != nil {
			break
		}
		seen++
	}
	if seen != 10 {
		t.Fatalf("dequeued %d/10", seen)
	}
}

func TestInvalidNodePanics(t *testing.T) {
	tr := New(core.New(2, 3), sched.FCFS{})
	for name, fn := range map[string]func(){
		"bad parent": func() { tr.AddNode(99, core.New(2, 3), sched.FCFS{}) },
		"bad leaf":   func() { tr.Enqueue(42, sched.Packet{}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
