// Package hsched composes PIFO priority queues into the scheduling
// trees of the PIFO model (Sivaraman et al., SIGCOMM 2016) — the
// "logical PIFOs" of the architecture in Figure 1 of the BMW-Tree
// paper. A tree of PIFOs expresses hierarchical policies such as HPFQ
// (fair queueing among classes, fair queueing among the flows inside
// each class): every node holds a PIFO ordering its children by ranks
// its own policy computes; a packet's enqueue pushes one element into
// each PIFO along its root-to-leaf path, and a dequeue follows minimum
// ranks from the root down to a packet.
//
// Any priority-queue implementation in this module — including the
// BMW-Tree, which is the point of the paper — can back each node.
package hsched

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/pifoblock"
	"repro/internal/sched"
)

// Errors returned by the tree.
var (
	ErrFull  = errors.New("hsched: a PIFO on the path is full, packet dropped")
	ErrEmpty = errors.New("hsched: empty")
)

// node is one scheduling-tree vertex.
type node struct {
	parent int
	pq     pifoblock.FlowScheduler
	ranker sched.Ranker
}

// pending couples a leaf-queued packet with its opaque payload.
type pending struct {
	pkt     sched.Packet
	payload any
}

// Tree is a hierarchical scheduler.
type Tree struct {
	nodes []node

	handles map[uint64]pending
	nextID  uint64
	size    int
}

// New creates a tree whose root schedules with the given PIFO and rank
// policy. The root has node id 0.
func New(pq pifoblock.FlowScheduler, r sched.Ranker) *Tree {
	return &Tree{
		nodes:   []node{{parent: -1, pq: pq, ranker: r}},
		handles: make(map[uint64]pending),
	}
}

// AddNode attaches a child scheduler under parent and returns its node
// id. Interior nodes order their children; a node used as an Enqueue
// target orders packets by flow.
func (t *Tree) AddNode(parent int, pq pifoblock.FlowScheduler, r sched.Ranker) int {
	if parent < 0 || parent >= len(t.nodes) {
		panic(fmt.Sprintf("hsched: invalid parent %d", parent))
	}
	t.nodes = append(t.nodes, node{parent: parent, pq: pq, ranker: r})
	return len(t.nodes) - 1
}

// Len returns the number of queued packets.
func (t *Tree) Len() int { return t.size }

// Enqueue admits a packet at the given leaf node: one element is
// pushed into every PIFO on the root-to-leaf path. At interior nodes
// the "flow" seen by the rank policy is the child node id, so
// per-class policies (e.g. weighted STFQ between classes) work
// unchanged; at the leaf it is the packet's own flow.
func (t *Tree) Enqueue(leaf int, p sched.Packet, payload any) error {
	if leaf < 0 || leaf >= len(t.nodes) {
		panic(fmt.Sprintf("hsched: invalid leaf %d", leaf))
	}
	// Collect the path root -> leaf.
	var path []int
	for n := leaf; n != -1; n = t.nodes[n].parent {
		path = append(path, n)
	}
	// Admission: every PIFO on the path needs one free slot.
	for _, n := range path {
		if t.nodes[n].pq.Len() >= t.nodes[n].pq.Cap() {
			return ErrFull
		}
	}
	// Push top-down (path is leaf->root, so iterate backwards).
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		var elem core.Element
		if i == 0 {
			// Leaf level: the packet itself. Handles live above
			// handleBase so they can never collide with child node ids.
			id := handleBase + t.nextID
			t.nextID++
			t.handles[id] = pending{pkt: p, payload: payload}
			rank := t.nodes[n].ranker.Rank(p)
			elem = core.Element{Value: rank, Meta: id}
		} else {
			// Interior level: the child we are descending towards,
			// ranked by this node's policy with the child as the flow.
			child := path[i-1]
			rank := t.nodes[n].ranker.Rank(sched.Packet{
				Flow:  uint32(child),
				Bytes: p.Bytes,
			})
			elem = core.Element{Value: rank, Meta: uint64(child)}
		}
		if err := t.nodes[n].pq.Push(elem); err != nil {
			panic(fmt.Sprintf("hsched: push failed below capacity: %v", err))
		}
	}
	t.size++
	return nil
}

// Dequeue pops the tree: minimum at the root selects a child, and so
// on down to a leaf element, which resolves to the packet.
func (t *Tree) Dequeue() (sched.Packet, any, error) {
	if t.size == 0 {
		return sched.Packet{}, nil, ErrEmpty
	}
	n := 0
	for {
		e, err := t.nodes[n].pq.Pop()
		if err != nil {
			panic(fmt.Sprintf("hsched: inconsistent occupancy at node %d: %v", n, err))
		}
		// An interior element's Meta is a child node id (< handleBase);
		// a leaf element's Meta is a packet handle (>= handleBase).
		if child, ok := t.childOf(n, e.Meta); ok {
			t.nodes[n].ranker.OnDequeue(sched.Packet{Flow: uint32(child)}, e.Value)
			n = child
			continue
		}
		pend, ok := t.handles[e.Meta]
		if !ok {
			panic(fmt.Sprintf("hsched: dangling handle %d at node %d", e.Meta, n))
		}
		delete(t.handles, e.Meta)
		t.nodes[n].ranker.OnDequeue(pend.pkt, e.Value)
		t.size--
		return pend.pkt, pend.payload, nil
	}
}

// handleBase separates the packet-handle namespace from child node
// ids in element metadata.
const handleBase = uint64(1) << 32

// childOf reports whether meta names a child node of n.
func (t *Tree) childOf(n int, meta uint64) (int, bool) {
	if meta >= handleBase {
		return 0, false
	}
	c := int(meta)
	if c > 0 && c < len(t.nodes) && t.nodes[c].parent == n {
		return c, true
	}
	return 0, false
}
