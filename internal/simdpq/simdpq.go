// Package simdpq models the SIMD / systolic-array priority queue
// (Benacer, Boyer, Savaria — IEEE TVLSI 2018) that Section 7.2 of the
// BMW-Tree paper cites as the fastest accurate priority queue before
// BMW-Tree: about 10x the original PIFO's throughput, but with a scale
// still limited to a few thousand flows because every element occupies
// a register cell.
//
// The structure is a linear array of cells, each holding a small
// sorted group of elements. Operations touch only the head cell and
// complete in one cycle; a systolic "balancing" step between adjacent
// cells restores order in the background, one neighbour exchange per
// cycle, with data moving between adjacent cells only:
//
//   - push: insert into the head cell; the head cell's overflow
//     (largest element) is handed to cell 1, whose overflow is handed
//     to cell 2 in the next cycle, and so on — a push wave.
//   - pop: remove the head cell's minimum; cell 1 refills the head
//     with its own minimum in the next cycle, drawing from cell 2
//     afterwards — a pop wave.
//
// Correctness invariant: the queue minimum is always in the head cell,
// so single-cycle pops at the head are exact even while waves are in
// flight. The cycle-accurate model below maintains per-cell groups and
// advances one wave step per cycle; the tests verify exactness against
// the golden model under saturating schedules.
package simdpq

import (
	"sort"

	"repro/internal/core"
	"repro/internal/hw"
)

// GroupSize is the number of elements per systolic cell. Two per cell
// (one resident, one in transit) is the classical systolic
// arrangement.
const GroupSize = 2

// cell is one register group, kept sorted ascending.
type cell struct {
	elems []core.Element // len <= GroupSize+1 transiently
}

// Sim is the cycle-accurate systolic priority queue.
type Sim struct {
	cells []cell
	size  int
	cap   int
	cycle uint64

	pushes, pops uint64
}

// New creates a systolic PQ with the given capacity (rounded up to
// whole cells).
func New(capacity int) *Sim {
	if capacity < 1 {
		panic("simdpq: capacity must be positive")
	}
	n := (capacity + GroupSize - 1) / GroupSize
	return &Sim{cells: make([]cell, n), cap: n * GroupSize}
}

// Len, Cap, Cycle, AlmostFull implement the CycleSim surface.
func (s *Sim) Len() int         { return s.size }
func (s *Sim) Cap() int         { return s.cap }
func (s *Sim) Cycle() uint64    { return s.cycle }
func (s *Sim) AlmostFull() bool { return s.size >= s.cap }

// PushAvailable and PopAvailable are always true: the head cell
// absorbs one operation per cycle while the balancing waves run in the
// background (the design's 1 op/cycle headline).
func (s *Sim) PushAvailable() bool { return true }
func (s *Sim) PopAvailable() bool  { return true }

// Stats returns operation counts.
func (s *Sim) Stats() (pushes, pops uint64) { return s.pushes, s.pops }

// Tick advances one cycle: the external operation applies to the head
// cell, then every cell performs one neighbour exchange (the systolic
// step), in even-odd alternation so exchanges stay adjacent-only.
func (s *Sim) Tick(op hw.Op) (*core.Element, error) {
	var result *core.Element
	switch op.Kind {
	case hw.Push:
		if s.AlmostFull() {
			return nil, core.ErrFull
		}
		s.insertHead(core.Element{Value: op.Value, Meta: op.Meta})
		s.size++
		s.pushes++
	case hw.Pop:
		if s.size == 0 {
			return nil, core.ErrEmpty
		}
		e := s.cells[0].elems[0]
		s.cells[0].elems = s.cells[0].elems[1:]
		result = &e
		s.size--
		s.pops++
	}
	s.cycle++
	s.balance()
	return result, nil
}

// insertHead places an element into the head cell in sorted position.
func (s *Sim) insertHead(e core.Element) {
	c := &s.cells[0]
	c.elems = append(c.elems, e)
	sort.Slice(c.elems, func(i, j int) bool { return c.elems[i].Value < c.elems[j].Value })
}

// balance performs one systolic step: each adjacent pair (left, right)
// exchanges so that left holds the smaller elements and neither
// overflows. One pass per cycle keeps data movement adjacent-only; a
// left-to-right sweep models the wave front.
func (s *Sim) balance() {
	for i := 0; i < len(s.cells)-1; i++ {
		l, r := &s.cells[i], &s.cells[i+1]
		// Overflow: push the largest of an overfull left cell right.
		for len(l.elems) > GroupSize {
			last := l.elems[len(l.elems)-1]
			l.elems = l.elems[:len(l.elems)-1]
			r.elems = append(r.elems, last)
		}
		// Underflow refill: draw the right cell's minimum left while the
		// left cell has room and order demands it.
		sort.Slice(r.elems, func(a, b int) bool { return r.elems[a].Value < r.elems[b].Value })
		for len(l.elems) < GroupSize && len(r.elems) > 0 {
			l.elems = append(l.elems, r.elems[0])
			r.elems = r.elems[1:]
		}
		// Order repair: the left cell's maximum must not exceed the
		// right cell's minimum.
		sort.Slice(l.elems, func(a, b int) bool { return l.elems[a].Value < l.elems[b].Value })
		if len(l.elems) > 0 && len(r.elems) > 0 {
			if l.elems[len(l.elems)-1].Value > r.elems[0].Value {
				l.elems[len(l.elems)-1], r.elems[0] = r.elems[0], l.elems[len(l.elems)-1]
				sort.Slice(l.elems, func(a, b int) bool { return l.elems[a].Value < l.elems[b].Value })
				sort.Slice(r.elems, func(a, b int) bool { return r.elems[a].Value < r.elems[b].Value })
			}
		}
	}
}
