package simdpq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/refpq"
)

func TestOneOpPerCycle(t *testing.T) {
	s := New(64)
	for i := 0; i < 32; i++ {
		if !s.PushAvailable() {
			t.Fatal("push_available dropped")
		}
		if _, err := s.Tick(hw.PushOp(uint64(i%9), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 32; i++ {
		if !s.PopAvailable() {
			t.Fatal("pop_available dropped")
		}
		if _, err := s.Tick(hw.PopOp()); err != nil {
			t.Fatal(err)
		}
	}
	if s.Cycle() != 64 {
		t.Fatalf("64 ops in %d cycles, want one per cycle (the design's headline)", s.Cycle())
	}
}

func TestFullEmptyErrors(t *testing.T) {
	s := New(4)
	for i := 0; i < 4; i++ {
		if _, err := s.Tick(hw.PushOp(uint64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	if !s.AlmostFull() {
		t.Fatal("not full")
	}
	if _, err := s.Tick(hw.PushOp(9, 0)); err != core.ErrFull {
		t.Fatalf("push full = %v", err)
	}
	for i := 0; i < 4; i++ {
		s.Tick(hw.PopOp())
	}
	if _, err := s.Tick(hw.PopOp()); err != core.ErrEmpty {
		t.Fatalf("pop empty = %v", err)
	}
}

// TestExactUnderSaturation is the key property: even at one operation
// per cycle (pops included), the head always returns the global
// minimum — the systolic staircase invariant holds at every boundary.
func TestExactUnderSaturation(t *testing.T) {
	s := New(256)
	ref := refpq.New()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50000; i++ {
		doPush := ref.Len() == 0 || (rng.Intn(2) == 0 && !s.AlmostFull())
		if doPush {
			e := hw.PushOp(uint64(rng.Intn(500)), uint64(i))
			if _, err := s.Tick(e); err != nil {
				t.Fatal(err)
			}
			ref.Push(refpq.Entry{Value: e.Value, Meta: e.Meta})
		} else {
			got, err := s.Tick(hw.PopOp())
			if err != nil {
				t.Fatal(err)
			}
			if got.Value != ref.MinValue() {
				t.Fatalf("op %d: popped %d, true min %d", i, got.Value, ref.MinValue())
			}
			if !ref.RemoveExact(refpq.Entry{Value: got.Value, Meta: got.Meta}) {
				t.Fatal("popped element not in reference")
			}
		}
	}
}

// TestQuickExactDrain: property — any pushed multiset drains sorted at
// one pop per cycle.
func TestQuickExactDrain(t *testing.T) {
	prop := func(vals []uint16) bool {
		if len(vals) == 0 {
			return true
		}
		s := New(len(vals))
		for _, v := range vals {
			if _, err := s.Tick(hw.PushOp(uint64(v), 0)); err != nil {
				return false
			}
		}
		var prev uint64
		for i := range vals {
			e, err := s.Tick(hw.PopOp())
			if err != nil {
				return false
			}
			if i > 0 && e.Value < prev {
				return false
			}
			prev = e.Value
		}
		return s.Len() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestScaleLimitation documents why the paper moved past SIMD PQ: the
// capacity is register cells, so a BMW-Tree of equal register budget
// holds vastly more elements once SRAM backs the lower levels.
func TestScaleLimitation(t *testing.T) {
	// 3k flows is the design point the paper quotes for SIMD PQ.
	s := New(3000)
	if s.Cap() < 3000 {
		t.Fatal("capacity rounding broke")
	}
	// An RPU-BMW with a similar register budget (a few node-widths of
	// flip-flops) supports 87k flows; the comparison lives in the fpga
	// model tests.
}
