// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 6). Each benchmark does the real work of its
// experiment per iteration and attaches the headline quantities as
// custom metrics, so `go test -bench=. -benchmem` reproduces the
// numbers EXPERIMENTS.md records. cmd/bmwbench prints the same data as
// full tables.
package bmw_test

import (
	"fmt"
	"math/rand"
	"testing"

	bmw "repro"
)

// fillQueue pushes n random elements.
func fillQueue(q bmw.PriorityQueue, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		if err := q.Push(bmw.Element{Value: uint64(rng.Intn(1 << 16)), Meta: uint64(i)}); err != nil {
			panic(err)
		}
	}
}

// BenchmarkTable1_Balance quantifies the Table 1 "Balanced" column:
// after inserting half the capacity, the BMW-Tree's occupied depth
// stays at the information-theoretic minimum while pHeap's left-first
// steering reaches its full depth. Reported metrics: occupied depth of
// each structure.
func BenchmarkTable1_Balance(b *testing.B) {
	const levels = 10 // pHeap capacity 1023; BMW 2-order, 9 levels = 1022
	var bmwDepth, pheapDepth int
	for i := 0; i < b.N; i++ {
		tr := bmw.NewBMWTree(2, 9)
		ph := bmw.NewPHeap(levels)
		fillQueue(tr, 2*tr.Cap()/5, int64(i))
		fillQueue(ph, 2*tr.Cap()/5, int64(i))
		bmwDepth = tr.Depth()
		pheapDepth = ph.MaxDepthUsed()
	}
	b.ReportMetric(float64(bmwDepth), "bmw-depth")
	b.ReportMetric(float64(pheapDepth), "pheap-depth")
}

// BenchmarkTable1_PipelineMoves quantifies the Table 1
// "Pipeline-friendly" column: BMW-Tree pops move data only between
// adjacent levels, while the Pipelined Heap's classic pop flies the
// right-most leaf from the bottom to the root every time. Metric:
// bottom-to-top flights per pop.
func BenchmarkTable1_PipelineMoves(b *testing.B) {
	var perPop float64
	for i := 0; i < b.N; i++ {
		h := bmw.NewPipelinedHeap(1023)
		fillQueue(h, 1000, int64(i))
		for j := 0; j < 500; j++ {
			if _, err := h.Pop(); err != nil {
				b.Fatal(err)
			}
		}
		up, _ := h.PathStats()
		perPop = float64(up) / 500
	}
	b.ReportMetric(perPop, "pipeheap-up-flights/pop")
	b.ReportMetric(0, "bmw-up-flights/pop") // adjacent-level lifts only
}

// BenchmarkFigure8a regenerates the frequency series of Figure 8(a):
// modelled Fmax of R-BMW (M=2,4,8) and PIFO across capacities. The
// metrics carry the headline points; the full sweep prints via
// cmd/bmwbench -exp fig8.
func BenchmarkFigure8a(b *testing.B) {
	var r2, r4, r8, p bmw.FPGAReport
	for i := 0; i < b.N; i++ {
		r2 = bmw.SynthRBMW(2, 11)
		r4 = bmw.SynthRBMW(4, 6)
		r8 = bmw.SynthRBMW(8, 4)
		p = bmw.SynthPIFO(4096)
	}
	b.ReportMetric(r2.FmaxMHz, "rbmw2-MHz")
	b.ReportMetric(r4.FmaxMHz, "rbmw4-MHz")
	b.ReportMetric(r8.FmaxMHz, "rbmw8-MHz")
	b.ReportMetric(p.FmaxMHz, "pifo-MHz")
}

// BenchmarkFigure8b_8c regenerates the per-element resource series of
// Figure 8(b, c): LUTs and FFs per element are constant per design.
func BenchmarkFigure8b_8c(b *testing.B) {
	var lut2, lutP, ff2, ffP float64
	for i := 0; i < b.N; i++ {
		r := bmw.SynthRBMW(2, 8)
		p := bmw.SynthPIFO(510)
		lut2 = r.LUT / float64(r.Capacity)
		lutP = p.LUT / float64(p.Capacity)
		ff2 = r.FF / float64(r.Capacity)
		ffP = p.FF / float64(p.Capacity)
	}
	b.ReportMetric(lut2, "rbmw2-LUT/elem")
	b.ReportMetric(lutP, "pifo-LUT/elem")
	b.ReportMetric(ff2, "rbmw2-FF/elem")
	b.ReportMetric(ffP, "pifo-FF/elem")
}

// BenchmarkTable2 regenerates the largest-scale RPU-BMW rows of
// Table 2 and reports the 8-4 configuration's headline capacity and
// frequency.
func BenchmarkTable2(b *testing.B) {
	var r bmw.FPGAReport
	for i := 0; i < b.N; i++ {
		for _, p := range []struct{ m, l int }{{2, 15}, {4, 8}, {8, 5}} {
			rep := bmw.SynthRPUBMW(p.m, p.l)
			if !rep.Feasible {
				b.Fatalf("Table 2 point %v infeasible", p)
			}
			if p.m == 4 {
				r = rep
			}
		}
	}
	b.ReportMetric(float64(r.Capacity), "rpubmw84-flows")
	b.ReportMetric(r.FmaxMHz, "rpubmw84-MHz")
	b.ReportMetric(r.GbpsAt(512), "rpubmw84-Gbps@512B")
}

// BenchmarkFigure9 regenerates the RPU-BMW sweeps of Figure 9 across
// orders and levels; metric: the frequency decline per added level for
// M=4 (the linear slope of Fig. 9a).
func BenchmarkFigure9(b *testing.B) {
	var slope float64
	for i := 0; i < b.N; i++ {
		f6 := bmw.SynthRPUBMW(4, 6).FmaxMHz
		f8 := bmw.SynthRPUBMW(4, 8).FmaxMHz
		slope = (f6 - f8) / 2
	}
	b.ReportMetric(slope, "MHz-per-level")
}

// BenchmarkTable3 regenerates the R-BMW versus RPU-BMW comparison at
// equal capacities; metric: RPU-BMW's LUT saving factor at the 11-2
// point.
func BenchmarkTable3(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		rb := bmw.SynthRBMW(2, 11)
		rp := bmw.SynthRPUBMW(2, 11)
		saving = rb.LUTPct / rp.LUTPct
	}
	b.ReportMetric(saving, "lut-saving-x")
}

// BenchmarkTable4 regenerates the 28 nm ASIC results; metrics: the 8-4
// RPU-BMW area, off-chip memory and scheduling rate at 600 MHz.
func BenchmarkTable4(b *testing.B) {
	var r bmw.ASICReport
	for i := 0; i < b.N; i++ {
		r = bmw.ASICRPUBMW(4, 8)
		if !r.MeetsTiming600 {
			b.Fatal("8-4 RPU-BMW must meet timing")
		}
	}
	b.ReportMetric(r.AreaMM2, "area-mm2")
	b.ReportMetric(r.OffChipMB, "offchip-MB")
	b.ReportMetric(r.Mpps, "Mpps@600MHz")
	b.ReportMetric(r.GbpsAt(512), "Gbps@512B")
}

// cycleThroughput drives a cycle simulator with the densest legal
// push-pop schedule and returns cycles per (push+pop) pair.
func cycleThroughput(s bmw.CycleSim, pairs int) float64 {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 64 && !s.AlmostFull(); i++ {
		s.Tick(bmw.PushOp(uint64(rng.Intn(1<<16)), 0))
	}
	start := s.Cycle()
	done := 0
	// The original PIFO enqueues and dequeues concurrently in one cycle.
	if dual, ok := s.(interface {
		TickPushPop(bmw.Op) (*bmw.Element, error)
	}); ok {
		for ; done < pairs; done++ {
			if _, err := dual.TickPushPop(bmw.PushOp(uint64(rng.Intn(1<<16)), 0)); err != nil {
				panic(err)
			}
		}
		return float64(s.Cycle()-start) / float64(pairs)
	}
	wantPush := true
	for done < pairs {
		switch {
		case wantPush && s.PushAvailable() && !s.AlmostFull():
			if _, err := s.Tick(bmw.PushOp(uint64(rng.Intn(1<<16)), 0)); err != nil {
				panic(err)
			}
			wantPush = false
		case !wantPush && s.PopAvailable() && s.Len() > 0:
			if _, err := s.Tick(bmw.PopOp()); err != nil {
				panic(err)
			}
			done++
			wantPush = true
		default:
			s.Tick(bmw.NopOp())
		}
	}
	return float64(s.Cycle()-start) / float64(pairs)
}

// BenchmarkThroughputCycles_E9 verifies the cycle costs behind every
// throughput headline (experiment E9): R-BMW 2 cycles per push-pop
// pair (=> 192 Mpps at 384.61 MHz), RPU-BMW 3 cycles (=> 200 Mpps at
// 600 MHz), PIFO 2 cycles per pair but at a collapsed clock.
func BenchmarkThroughputCycles_E9(b *testing.B) {
	var rb, rp, pf float64
	for i := 0; i < b.N; i++ {
		rb = cycleThroughput(bmw.NewRBMWSim(2, 11), 2000)
		rp = cycleThroughput(bmw.NewRPUBMWSim(4, 8), 2000)
		pf = cycleThroughput(bmw.NewPIFOSim(4096), 2000)
	}
	b.ReportMetric(rb, "rbmw-cycles/pair")
	b.ReportMetric(rp, "rpubmw-cycles/pair")
	b.ReportMetric(pf, "pifo-cycles/pair")
	b.ReportMetric(bmw.SynthRBMW(2, 11).FmaxMHz/rb, "rbmw-Mpps")
	b.ReportMetric(600/rp, "rpubmw-Mpps@600MHz")
}

// BenchmarkFigure10 runs the scaled packet-level experiment once per
// iteration (both schedulers) and reports the overall normalised-FCT
// reduction — the headline of Figure 10. The full-scale run (128
// hosts, 10 Gbps, capacities 4094 vs 512) prints via cmd/bmwbench
// -exp fig10.
func BenchmarkFigure10(b *testing.B) {
	var bn, pn float64
	for i := 0; i < b.N; i++ {
		base := bmw.DefaultNetConfig()
		base.NumHosts = 32
		base.LinkBps = 1e9
		base.BMWLevels = 7
		base.StoreLimit = 0
		base.TCP.MaxRTONs = 10e9
		base.NumFlows = 800
		base.Load = 0.98
		base.Seed = 42

		cfgB := base
		cfgB.Scheduler = bmw.SchedBMW
		cfgB.SchedCap = 254
		cfgP := base
		cfgP.Scheduler = bmw.SchedPIFO
		cfgP.SchedCap = 32

		rb := bmw.RunFCTExperiment(cfgB)
		rp := bmw.RunFCTExperiment(cfgP)
		bn = rb.FCT.OverallMeanNorm()
		pn = rp.FCT.OverallMeanNorm()
	}
	b.ReportMetric(bn, "bmw-norm-fct")
	b.ReportMetric(pn, "pifo-norm-fct")
	b.ReportMetric(100*(1-bn/pn), "fct-reduction-%")
}

// BenchmarkAblation_SustainedTransfer quantifies the Section 4.2.2
// optimisation: with sustained transfer a push-pop pair costs 2
// cycles; the plain Section 4.2.1 design needs 4 (pop occupies 3
// cycles and blocks the following push).
func BenchmarkAblation_SustainedTransfer(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		s1 := bmw.NewRBMWSim(2, 8)
		with = cycleThroughput(s1, 1000)
		s2 := bmw.NewRBMWSim(2, 8)
		s2.Sustained = false
		without = cycleThroughput(s2, 1000)
	}
	b.ReportMetric(with, "sustained-cycles/pair")
	b.ReportMetric(without, "plain-cycles/pair")
}

// BenchmarkAblation_InsertionPolicy compares balanced (BMW) and
// left-first (pHeap) insertion: same software push/pop workload, depth
// reached at half fill.
func BenchmarkAblation_InsertionPolicy(b *testing.B) {
	for _, impl := range []string{"bmw-balanced", "pheap-leftfirst"} {
		b.Run(impl, func(b *testing.B) {
			rng := rand.New(rand.NewSource(9))
			var q bmw.PriorityQueue
			if impl == "bmw-balanced" {
				q = bmw.NewBMWTree(2, 9)
			} else {
				q = bmw.NewPHeap(10)
			}
			half := 511
			fillQueue(q, half, 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Push(bmw.Element{Value: uint64(rng.Intn(1 << 16))})
				q.Pop()
			}
		})
	}
}

// BenchmarkAblation_Order compares software push-pop throughput across
// tree orders at similar capacity (the M trade-off of Section 6.1).
func BenchmarkAblation_Order(b *testing.B) {
	for _, shape := range []struct{ m, l int }{{2, 11}, {4, 6}, {8, 4}} {
		b.Run(fmt.Sprintf("M%d", shape.m), func(b *testing.B) {
			tr := bmw.NewBMWTree(shape.m, shape.l)
			rng := rand.New(rand.NewSource(1))
			fillQueue(tr, tr.Cap()/2, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.Push(bmw.Element{Value: uint64(rng.Intn(1 << 16))})
				tr.Pop()
			}
		})
	}
}

// BenchmarkSoftwareQueues measures raw software push-pop throughput of
// every priority queue at 4k scale (library-quality baseline numbers,
// not a paper artifact).
func BenchmarkSoftwareQueues(b *testing.B) {
	makers := map[string]func() bmw.PriorityQueue{
		"bmwtree-2-11": func() bmw.PriorityQueue { return bmw.NewBMWTree(2, 11) },
		"pifo-4094":    func() bmw.PriorityQueue { return bmw.NewPIFO(4094) },
		"pheap-12":     func() bmw.PriorityQueue { return bmw.NewPHeap(12) },
		"pipeheap-4k":  func() bmw.PriorityQueue { return bmw.NewPipelinedHeap(4095) },
	}
	for name, mk := range makers {
		b.Run(name, func(b *testing.B) {
			q := mk()
			rng := rand.New(rand.NewSource(1))
			fillQueue(q, q.Cap()/2, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Push(bmw.Element{Value: uint64(rng.Intn(1 << 16))})
				q.Pop()
			}
		})
	}
}

// BenchmarkCycleSimSpeed measures simulator performance itself:
// simulated cycles per second of wall time for each hardware model.
func BenchmarkCycleSimSpeed(b *testing.B) {
	sims := map[string]func() bmw.CycleSim{
		"rbmw-2-11":  func() bmw.CycleSim { return bmw.NewRBMWSim(2, 11) },
		"rpubmw-4-8": func() bmw.CycleSim { return bmw.NewRPUBMWSim(4, 8) },
	}
	for name, mk := range sims {
		b.Run(name, func(b *testing.B) {
			s := mk()
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if s.PushAvailable() && !s.AlmostFull() {
					s.Tick(bmw.PushOp(uint64(rng.Intn(1<<16)), 0))
				} else if s.PopAvailable() && s.Len() > 0 {
					s.Tick(bmw.PopOp())
				} else {
					s.Tick(bmw.NopOp())
				}
			}
		})
	}
}

// BenchmarkPushPop measures the R-BMW hot path (alternating push/pop
// at the sustained rate) with instrumentation disabled versus enabled.
// The "bare" variant is the regression guard for the observability
// probes: with no registry attached every hook is a single nil check,
// so it must stay within a few percent of the pre-probe simulator.
func BenchmarkPushPop(b *testing.B) {
	run := func(b *testing.B, s bmw.CycleSim) {
		for i := 0; i < 64; i++ {
			s.Tick(bmw.PushOp(uint64(i%997), 0))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Tick(bmw.PushOp(uint64(i%997), 0))
			s.Tick(bmw.PopOp())
		}
	}
	b.Run("rbmw-bare", func(b *testing.B) {
		run(b, bmw.NewRBMWSim(2, 11))
	})
	b.Run("rbmw-instrumented", func(b *testing.B) {
		s := bmw.NewRBMWSim(2, 11)
		s.Instrument(bmw.NewMetricsRegistry(), "rbmw")
		run(b, s)
	})
}

// BenchmarkAccuracy_E11 runs the dequeue-order accuracy experiment
// (extension E11): the fraction of pops returning a non-minimal rank
// for the accurate BMW-Tree versus the approximate schedulers of
// Section 7.2 under a bursty rank workload.
func BenchmarkAccuracy_E11(b *testing.B) {
	var res []bmw.AccuracyResult
	for i := 0; i < b.N; i++ {
		res = bmw.AccuracyExperiment(int64(i+1), 20000)
	}
	for _, r := range res {
		b.ReportMetric(100*r.Rate(), r.Name+"-nonmin-%")
	}
}

// BenchmarkExtension_GearboxHorizon compares the gearbox's rank
// horizon with a flat calendar at the same bucket budget (the Gearbox
// extension, experiment E13).
func BenchmarkExtension_GearboxHorizon(b *testing.B) {
	var gb, flat float64
	for i := 0; i < b.N; i++ {
		g := bmw.NewGearbox(3, 16, 16, 1024)
		gb = float64(g.Horizon())
		flat = float64(3*16) * 16 // the same 48 buckets in one ring
	}
	b.ReportMetric(gb, "gearbox-horizon")
	b.ReportMetric(flat, "flat-horizon")
	b.ReportMetric(gb/flat, "horizon-gain-x")
}

// BenchmarkExtension_HierarchyThroughput measures HPFQ over BMW-Tree
// nodes: enqueue+dequeue pairs through a two-level scheduling tree.
func BenchmarkExtension_HierarchyThroughput(b *testing.B) {
	root := bmw.NewSchedulerTree(bmw.NewBMWTree(2, 12), bmw.NewSTFQ(1))
	classes := make([]int, 4)
	for i := range classes {
		classes[i] = root.AddNode(0, bmw.NewBMWTree(2, 12), bmw.NewSTFQ(1))
	}
	// Prefill.
	for i := 0; i < 256; i++ {
		root.Enqueue(classes[i%4], bmw.Packet{Flow: uint32(i % 16), Bytes: 1000}, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := root.Enqueue(classes[i%4], bmw.Packet{Flow: uint32(i % 16), Bytes: 1000}, nil); err != nil {
			b.Fatal(err)
		}
		if _, _, err := root.Dequeue(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtension_SIMDPQ measures the systolic queue's software
// cost per cycle (each Tick sweeps the array once).
func BenchmarkExtension_SIMDPQ(b *testing.B) {
	s := bmw.NewSIMDPQ(3000) // the design point the paper quotes
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1500; i++ {
		s.Tick(bmw.PushOp(uint64(rng.Intn(1<<16)), 0))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			s.Tick(bmw.PushOp(uint64(rng.Intn(1<<16)), 0))
		} else {
			s.Tick(bmw.PopOp())
		}
	}
}

// BenchmarkExtension_TrafficManager measures multi-port TM
// enqueue+dequeue with BMW-Tree-backed ports.
func BenchmarkExtension_TrafficManager(b *testing.B) {
	tmgr := bmw.NewTrafficManager(bmw.TMConfig{
		Ports:        8,
		NewScheduler: func(int) bmw.PriorityQueue { return bmw.NewBMWTree(2, 11) },
		NewRanker:    func(int) bmw.Ranker { return bmw.NewSTFQ(1) },
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		port := i % 8
		if err := tmgr.Enqueue(port, bmw.Packet{Flow: uint32(i % 64), Bytes: 1500}, nil); err != nil {
			b.Fatal(err)
		}
		if _, _, err := tmgr.Dequeue(port); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_OperationHiding quantifies the Section 5.2.2-5.2.3
// optimisations: the plain sequential RPU (Section 5.2.1) needs 9
// cycles per push-pop pair; combinational logic plus operation hiding
// on write-first SRAMs bring it to 3.
func BenchmarkAblation_OperationHiding(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		s1 := bmw.NewRPUBMWSim(4, 6)
		with = cycleThroughput(s1, 500)
		s2 := bmw.NewRPUBMWSim(4, 6)
		s2.Plain = true
		without = cycleThroughput(s2, 500)
	}
	b.ReportMetric(with, "optimised-cycles/pair")
	b.ReportMetric(without, "plain-cycles/pair")
}
