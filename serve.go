// Serving facade: the sharded concurrent scheduling engine of
// internal/engine and the wire protocol of internal/wire re-exported at
// the package-bmw surface.
//
// The bare queues (NewBMWTree, NewPIFO, NewRBMWSim, NewRPUBMWSim) are
// intentionally single-goroutine; Engine is the concurrency story: each
// shard goroutine exclusively owns one queue and callers submit batches
// through per-shard MPSC rings. WireServer/WireClient carry Engine
// batches over a length-prefixed, CRC-checked binary protocol — see
// cmd/bmwd (daemon) and cmd/bmwload (load generator), and DESIGN.md
// section 6 for the shard model, frame layout, and backpressure
// semantics.
package bmw

import (
	"repro/internal/engine"
	"repro/internal/wire"
)

// Engine is the sharded concurrent scheduler: N shard goroutines, each
// owning one queue, fed by bounded MPSC request rings with batched
// submit/drain. Push routing is by Meta hash or rank range; Pop is a
// strict merge across the shard minima.
type Engine = engine.Engine

// EngineConfig sizes an Engine: shard count, per-shard queue kind and
// geometry, ring and batch sizes, routing policy, and an optional
// restore directory.
type EngineConfig = engine.Config

// EngineOp and EngineResult are one batched request and its outcome.
type (
	EngineOp     = engine.Op
	EngineResult = engine.Result
)

// Queue kinds selectable per shard.
type EngineKind = engine.Kind

const (
	EngineCore   = engine.KindCore
	EnginePIFO   = engine.KindPIFO
	EngineRBMW   = engine.KindRBMW
	EngineRPUBMW = engine.KindRPUBMW
)

// Routing policies for pushes.
type EngineRouting = engine.Routing

const (
	EngineRouteHash = engine.RouteHash
	EngineRouteRank = engine.RouteRank
)

// Engine errors. ErrBackpressure is the typed non-blocking reject: the
// target shard's ring or queue is near full and the caller should back
// off and retry, never block. ErrOverloaded is the overload-control
// shed: the shard tripped its occupancy or drain-latency watermark and
// is refusing new pushes until it drains below the low watermark.
var (
	ErrBackpressure = engine.ErrBackpressure
	ErrEngineClosed = engine.ErrClosed
	ErrOverloaded   = engine.ErrOverloaded
)

// EngineHooks are the engine's incident-infrastructure taps: a flight
// recorder for overload/backpressure edges plus overload-trip and
// shard-panic callbacks. Installed after construction with
// Engine.SetHooks so EngineConfig stays comparable.
type EngineHooks = engine.Hooks

// EngineOverload is the per-shard overload-control watermark set;
// Engine.SetOverload swaps it at runtime (the chaos harness uses this
// to induce deterministic overload episodes).
type EngineOverload = engine.Overload

// NewEngine starts the shard goroutines and returns the engine;
// Close stops them, after which ShardDrain and Checkpoint apply.
func NewEngine(cfg EngineConfig) (*Engine, error) { return engine.New(cfg) }

// EnginePushOp and EnginePopOp build batch entries for Engine.Submit.
func EnginePushOp(e Element) EngineOp { return engine.PushOp(e) }
func EnginePopOp() EngineOp           { return engine.PopOp() }

// WireServer serves an Engine over the binary wire protocol;
// WireClient is the matching pipelined client.
type (
	WireServer = wire.Server
	WireClient = wire.Client
)

// WireOp and WireResult are the protocol-level batch entry and its
// status-coded outcome, for driving a WireClient directly.
type (
	WireOp     = wire.Op
	WireResult = wire.Result
)

// Wire op kinds and result statuses.
const (
	WireOpPush = wire.OpPush
	WireOpPop  = wire.OpPop

	WireStatusOK           = wire.StatusOK
	WireStatusEmpty        = wire.StatusEmpty
	WireStatusFull         = wire.StatusFull
	WireStatusBackpressure = wire.StatusBackpressure
	WireStatusClosed       = wire.StatusClosed
	WireStatusInvalid      = wire.StatusInvalid
	WireStatusOverloaded   = wire.StatusOverloaded
	WireStatusNotPrimary   = wire.StatusNotPrimary
	WireStatusDedupMiss    = wire.StatusDedupMiss
)

// WireServerConfig tunes a WireServer: connection idle/write budgets,
// the per-connection in-flight cap, retry-dedup sizing, and an
// optional RequestTracer for end-to-end request-lifecycle tracing.
type WireServerConfig = wire.ServerConfig

// NewWireServer wraps an engine for serving; use Serve/Shutdown.
func NewWireServer(e *Engine) *WireServer { return wire.NewServer(e) }

// NewWireServerConfig is NewWireServer with explicit configuration —
// in particular WireServerConfig.Tracer, which makes the server stamp
// every request's lifecycle span.
func NewWireServerConfig(e *Engine, cfg WireServerConfig) *WireServer {
	return wire.NewServerConfig(e, cfg)
}

// DialWire connects to a bmwd-style server and performs the handshake.
func DialWire(addr string) (*WireClient, error) { return wire.Dial(addr) }

// ResilientWireClient is the fault-tolerant client: per-request
// deadlines, reconnect with capped backoff, idempotent retry keyed on
// stable request ids (deduplicated server-side, so a retried push is
// never double-applied), and failover across a primary/standby address
// list. ResilientWireOptions configures it; ResilientWireStats counts
// retries, timeouts, reconnects, and failovers.
type (
	ResilientWireClient  = wire.ResilientClient
	ResilientWireOptions = wire.ResilientOptions
	ResilientWireStats   = wire.ResilientStats
)

// DialWireResilient builds a ResilientWireClient over addrs (primary
// first, standbys after). The connection is established lazily on the
// first request.
func DialWireResilient(addrs ...string) (*ResilientWireClient, error) {
	return wire.NewResilientClient(wire.ResilientOptions{Addrs: addrs})
}
