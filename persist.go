// Crash-safe persistence facade: the WAL + checkpoint/restore subsystem
// of internal/persist re-exported at the package-bmw surface, plus the
// two one-call conveniences Checkpoint and Restore.
//
// All four exact queues — the software BMW-Tree (NewBMWTree), the PIFO
// baseline (NewPIFO), and both cycle-accurate simulators (NewRBMWSim,
// NewRPUBMWSim, including their protected variants) — implement
// Checkpointable. See DESIGN.md section 5d for the on-disk formats and
// the recovery state machine, and cmd/bmwcrash for the kill-point crash
// harness that validates them.
package bmw

import "repro/internal/persist"

// Checkpointable is the surface a queue exposes to the persistence
// layer: versioned snapshot encode/restore, WAL replay, and a
// post-recovery invariant check.
type Checkpointable = persist.Checkpointable

// PersistOp is one logged queue operation: kind, the clock cycle it
// committed at (replay nop-aligns the cycle simulators to it), and the
// element pushed or popped.
type PersistOp = persist.Op

// PersistOptions configure a PersistManager: WAL group commit and fsync
// policy, snapshot retention and atomicity, the filesystem seam, and a
// metrics registry for the persist counters.
type PersistOptions = persist.Options

// PersistWALOptions tune the log writer: group-commit batch size, sync
// policy, and retry-with-backoff on transient write errors.
type PersistWALOptions = persist.WALOptions

// PersistManager couples one queue to one persistence directory: Record
// appends operations to the WAL, Checkpoint writes an LSN-stamped
// snapshot, Close flushes.
type PersistManager = persist.Manager

// RecoveryReport describes what a recovery found and did: the restored
// snapshot, skipped (invalid) snapshots, replayed WAL suffix, and any
// torn tail truncated.
type RecoveryReport = persist.RecoveryReport

// SyncPolicy selects when the WAL fsyncs.
type SyncPolicy = persist.SyncPolicy

// WAL sync policies.
const (
	// SyncBatch fsyncs once per group commit (the default).
	SyncBatch = persist.SyncBatch
	// SyncAlways fsyncs after every record.
	SyncAlways = persist.SyncAlways
	// SyncNone never fsyncs (durability delegated to the OS).
	SyncNone = persist.SyncNone
)

// ErrTornRecord is the sentinel wrapped by WAL-reader errors for a
// partial or corrupt trailing record; test with errors.Is. A torn tail
// is recoverable by construction — everything before it is intact.
var ErrTornRecord = persist.ErrTornRecord

// OpenPersist recovers q from dir (creating the directory on first use)
// and returns a manager appending to its WAL, plus the recovery report.
// q must be a freshly constructed queue with the same configuration
// (shape, protection mode) as the one that wrote the directory.
func OpenPersist(dir string, q Checkpointable, opts PersistOptions) (*PersistManager, *RecoveryReport, error) {
	return persist.Open(dir, q, opts)
}

// Checkpoint writes a one-shot durable snapshot of a live queue to dir,
// superseding any history already there. The cycle simulators must be
// quiescent (RPU-BMW always; R-BMW may also checkpoint mid-pipeline
// through a PersistManager, which the continuous-logging path uses).
func Checkpoint(dir string, q Checkpointable) error {
	m, err := persist.Attach(dir, q, persist.Options{})
	if err != nil {
		return err
	}
	if err := m.Checkpoint(); err != nil {
		m.Close()
		return err
	}
	return m.Close()
}

// PersistFinding is one localised integrity fault: file, corruption
// class, and — for WAL damage — the affected LSN range, or — for
// snapshot rot — the failing chunk indices.
type PersistFinding = persist.Finding

// PersistDirReport is the outcome of one VerifyPersistDir audit.
type PersistDirReport = persist.DirReport

// PersistScrubConfig tunes a background integrity scrubber: the
// directories to walk, an io throttle, and the obs instruments.
type PersistScrubConfig = persist.ScrubConfig

// PersistScrubber is a resumable, io-throttled integrity walker over
// persistence directories: manifests, WAL hash chains, snapshot Merkle
// roots. Step verifies one directory and advances the cursor.
type PersistScrubber = persist.Scrubber

// NewPersistScrubber builds a scrubber over cfg.Dirs.
func NewPersistScrubber(cfg PersistScrubConfig) *PersistScrubber {
	return persist.NewScrubber(cfg)
}

// VerifyPersistDir audits one persistence directory read-only:
// manifest self-checksum, WAL framing plus hash chain against the
// sealed head, and snapshot Merkle verification with per-chunk
// localisation. Nothing is modified.
func VerifyPersistDir(dir string) *PersistDirReport {
	return persist.VerifyDir(nil, dir)
}

// Restore loads the newest valid checkpoint in dir into q (a freshly
// constructed queue of the same configuration), replays any WAL suffix,
// and verifies the queue's structural invariants before returning.
func Restore(dir string, q Checkpointable) (*RecoveryReport, error) {
	m, rep, err := persist.Open(dir, q, persist.Options{})
	if err != nil {
		return nil, err
	}
	return rep, m.Close()
}
