package bmw_test

import (
	"fmt"

	bmw "repro"
)

// The BMW-Tree as a plain priority queue: the Figure 2 worked example.
func ExampleNewBMWTree() {
	tree := bmw.NewBMWTree(2, 3) // order 2, 3 levels: 14 elements
	for _, v := range []uint64{10, 17, 57, 21, 32, 43, 74, 33} {
		tree.Push(bmw.Element{Value: v})
	}
	tree.Push(bmw.Element{Value: 28})
	e, _ := tree.Pop()
	fmt.Println("popped:", e.Value)
	e, _ = tree.Peek()
	fmt.Println("next:", e.Value)
	// Output:
	// popped: 10
	// next: 17
}

// A programmable scheduler: STFQ ranks over a PIFO block.
func ExampleNewPIFOBlock() {
	block := bmw.NewPIFOBlock(bmw.NewBMWTree(2, 6), bmw.NewSTFQ(1))
	// Two backlogged flows, equal weights: service alternates.
	for i := 0; i < 3; i++ {
		block.Enqueue(bmw.Packet{Flow: 1, Bytes: 1000}, nil)
		block.Enqueue(bmw.Packet{Flow: 2, Bytes: 1000}, nil)
	}
	for i := 0; i < 4; i++ {
		p, _, _ := block.Dequeue()
		fmt.Print(p.Flow, " ")
	}
	fmt.Println()
	// Output:
	// 1 2 1 2
}

// Driving the R-BMW hardware pipeline cycle by cycle.
func ExampleNewRBMWSim() {
	sim := bmw.NewRBMWSim(2, 11) // the paper's 4094-flow configuration
	sim.Tick(bmw.PushOp(7, 0))
	sim.Tick(bmw.PushOp(3, 0))
	e, _ := sim.Tick(bmw.PopOp())
	fmt.Println("popped", e.Value, "in cycle", sim.Cycle())
	// Consecutive pops are illegal (Section 4.2.2): pop_available is 0.
	fmt.Println("pop available:", sim.PopAvailable())
	// Output:
	// popped 3 in cycle 3
	// pop available: false
}

// The calibrated synthesis models reproduce the paper's headline:
// 87k flows at 200 Mpps in 28 nm.
func ExampleASICRPUBMW() {
	r := bmw.ASICRPUBMW(4, 8)
	fmt.Printf("%d flows, %.0f Mpps, %.3f mm^2, %.2f MB off-chip\n",
		r.Capacity, r.Mpps, r.AreaMM2, r.OffChipMB)
	// Output:
	// 87380 flows, 200 Mpps, 1.043 mm^2, 0.57 MB off-chip
}
