package bmw_test

import (
	"math/rand"
	"testing"

	bmw "repro"
)

// TestPriorityQueueContract drives every queue implementation through
// the public interface against a common scenario.
func TestPriorityQueueContract(t *testing.T) {
	queues := map[string]bmw.PriorityQueue{
		"bmwtree":  bmw.NewBMWTree(2, 5),
		"pifo":     bmw.NewPIFO(62),
		"pheap":    bmw.NewPHeap(5),
		"pipeheap": bmw.NewPipelinedHeap(31),
	}
	for name, q := range queues {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			n := q.Cap()
			if n > 31 {
				n = 31
			}
			for i := 0; i < n; i++ {
				if err := q.Push(bmw.Element{Value: uint64(rng.Intn(100)), Meta: uint64(i)}); err != nil {
					t.Fatal(err)
				}
			}
			if q.Len() != n {
				t.Fatalf("Len = %d", q.Len())
			}
			min, err := q.Peek()
			if err != nil {
				t.Fatal(err)
			}
			first, err := q.Pop()
			if err != nil || first != min {
				t.Fatalf("pop %v != peek %v", first, min)
			}
			prev := first.Value
			for q.Len() > 0 {
				e, err := q.Pop()
				if err != nil {
					t.Fatal(err)
				}
				if e.Value < prev {
					t.Fatalf("%s: unsorted pop", name)
				}
				prev = e.Value
			}
			if _, err := q.Pop(); err != bmw.ErrEmpty {
				t.Fatalf("pop empty = %v", err)
			}
		})
	}
}

func TestTreeCapacity(t *testing.T) {
	if bmw.TreeCapacity(4, 8) != 87380 {
		t.Fatal("TreeCapacity(4,8) != 87380")
	}
}

// TestCycleSimContract drives all three hardware simulators through
// the common interface at their maximum legal rates.
func TestCycleSimContract(t *testing.T) {
	sims := map[string]bmw.CycleSim{
		"rbmw":   bmw.NewRBMWSim(2, 6),
		"rpubmw": bmw.NewRPUBMWSim(2, 6),
		"pifo":   bmw.NewPIFOSim(126),
	}
	for name, s := range sims {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 50; i++ {
				if !s.PushAvailable() {
					if _, err := s.Tick(bmw.NopOp()); err != nil {
						t.Fatal(err)
					}
					continue
				}
				if _, err := s.Tick(bmw.PushOp(uint64(i%17), uint64(i))); err != nil {
					t.Fatal(err)
				}
			}
			var prev uint64
			popped := 0
			for s.Len() > 0 {
				if !s.PopAvailable() {
					if _, err := s.Tick(bmw.NopOp()); err != nil {
						t.Fatal(err)
					}
					continue
				}
				e, err := s.Tick(bmw.PopOp())
				if err != nil {
					t.Fatal(err)
				}
				if popped > 0 && e.Value < prev {
					t.Fatalf("%s unsorted pop", name)
				}
				prev = e.Value
				popped++
			}
			if s.Cycle() == 0 {
				t.Fatal("cycles not counted")
			}
		})
	}
}

// TestSTFQOverPublicAPI assembles the PIFO block through the public
// facade.
func TestSTFQOverPublicAPI(t *testing.T) {
	block := bmw.NewPIFOBlock(bmw.NewBMWTree(2, 11), bmw.NewSTFQ(1))
	if block.FlowCapacity() != 4094 {
		t.Fatalf("FlowCapacity = %d", block.FlowCapacity())
	}
	for i := 0; i < 8; i++ {
		if err := block.Enqueue(bmw.Packet{Flow: uint32(i % 2), Bytes: 1500}, i); err != nil {
			t.Fatal(err)
		}
	}
	seen := 0
	for {
		_, _, err := block.Dequeue()
		if err != nil {
			break
		}
		seen++
	}
	if seen != 8 {
		t.Fatalf("dequeued %d", seen)
	}
}

func TestSynthesisModels(t *testing.T) {
	if r := bmw.SynthRBMW(2, 11); r.Mpps < 190 || r.Mpps > 195 {
		t.Fatalf("R-BMW 11-2 rate = %.1f Mpps, want ≈192", r.Mpps)
	}
	if r := bmw.SynthPIFO(4096); r.Mpps < 39 || r.Mpps > 41 {
		t.Fatalf("PIFO rate = %.1f Mpps, want ≈40", r.Mpps)
	}
	if r := bmw.SynthRPUBMW(4, 8); r.Capacity != 87380 {
		t.Fatalf("RPU-BMW capacity = %d", r.Capacity)
	}
	if r := bmw.ASICRPUBMW(4, 8); r.Mpps != 200 || !r.MeetsTiming600 {
		t.Fatalf("ASIC RPU-BMW = %+v", r)
	}
	if bmw.MaxFPGALevels("R-BMW", 2) != 12 {
		t.Fatal("MaxFPGALevels wrong")
	}
}

func TestSmallFCTExperiment(t *testing.T) {
	cfg := bmw.DefaultNetConfig()
	cfg.NumHosts = 8
	cfg.LinkBps = 1e9
	cfg.NumFlows = 50
	cfg.Load = 0.5
	res := bmw.RunFCTExperiment(cfg)
	if res.Completed != 50 {
		t.Fatalf("completed %d/50", res.Completed)
	}
	bins := bmw.FCTBins(res)
	table := bmw.FCTTable("bmw", bins)
	if len(table) == 0 {
		t.Fatal("empty FCT table")
	}
	if bmw.WebSearchMeanBytes() < 1e6 {
		t.Fatal("web-search mean suspiciously small")
	}
}

// TestAccuracyExperiment verifies the extension experiment's central
// claim: the BMW-Tree is exact (zero non-minimal pops) while every
// approximate scheduler reorders under a bursty rank workload.
func TestAccuracyExperiment(t *testing.T) {
	res := bmw.AccuracyExperiment(5, 20000)
	if len(res) != 5 {
		t.Fatalf("contenders = %d", len(res))
	}
	byName := map[string]bmw.AccuracyResult{}
	for _, r := range res {
		byName[r.Name] = r
	}
	if r := byName["BMW-Tree"]; r.NonMinimal != 0 || r.Pops == 0 {
		t.Fatalf("accurate PIFO produced non-minimal pops: %+v", r)
	}
	for _, name := range []string{"SP-PIFO", "AIFO", "CalendarQ", "Gearbox"} {
		if r := byName[name]; r.NonMinimal == 0 {
			t.Errorf("%s produced no reordering on a bursty pattern: %+v", name, r)
		}
	}
}

// TestApproximateQueuesViaPublicAPI drives the Section 7.2
// approximations through the shared PriorityQueue contract.
func TestApproximateQueuesViaPublicAPI(t *testing.T) {
	queues := map[string]bmw.PriorityQueue{
		"sppifo":    bmw.NewSPPIFO(4, 64),
		"calendarq": bmw.NewCalendarQueue(16, 8, 64),
	}
	for name, q := range queues {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 10; i++ {
				if err := q.Push(bmw.Element{Value: uint64(i), Meta: uint64(i)}); err != nil {
					t.Fatal(err)
				}
			}
			// Monotone pushes dequeue exactly in order (no bursts, no
			// reordering opportunity).
			for i := 0; i < 10; i++ {
				e, err := q.Pop()
				if err != nil || e.Value != uint64(i) {
					t.Fatalf("pop = %v,%v want %d", e, err, i)
				}
			}
			if _, err := q.Pop(); err != bmw.ErrEmpty {
				t.Fatalf("pop empty = %v", err)
			}
		})
	}
	// AIFO deliberately drops high-quantile (here: ascending) arrivals
	// as occupancy grows, so it gets constant ranks: quantile 0, always
	// admitted, strict FIFO out.
	t.Run("aifo", func(t *testing.T) {
		q := bmw.NewAIFO(64, 32, 0.1)
		for i := 0; i < 10; i++ {
			if err := q.Push(bmw.Element{Value: 7, Meta: uint64(i)}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 10; i++ {
			e, err := q.Pop()
			if err != nil || e.Meta != uint64(i) {
				t.Fatalf("pop = %v,%v want meta %d", e, err, i)
			}
		}
		if _, err := q.Pop(); err != bmw.ErrEmpty {
			t.Fatalf("pop empty = %v", err)
		}
	})
}

// TestSIMDPQViaPublicAPI drives the systolic queue through the shared
// CycleSim contract at one op per cycle.
func TestSIMDPQViaPublicAPI(t *testing.T) {
	var s bmw.CycleSim = bmw.NewSIMDPQ(128)
	for i := 0; i < 64; i++ {
		if _, err := s.Tick(bmw.PushOp(uint64((i*37)%100), uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	var prev uint64
	for i := 0; i < 64; i++ {
		e, err := s.Tick(bmw.PopOp())
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && e.Value < prev {
			t.Fatal("unsorted")
		}
		prev = e.Value
	}
	if s.Cycle() != 128 {
		t.Fatalf("cycles = %d, want one op per cycle", s.Cycle())
	}
}

// TestPIEOViaPublicAPI checks smallest-eligible-first extraction.
func TestPIEOViaPublicAPI(t *testing.T) {
	l := bmw.NewPIEO(8)
	l.Push(bmw.PIEOEntry{Rank: 1, Eligible: 50, Meta: 1})
	l.Push(bmw.PIEOEntry{Rank: 9, Eligible: 0, Meta: 2})
	if e, ok := l.ExtractEligible(10); !ok || e.Meta != 2 {
		t.Fatalf("extract = %v,%v", e, ok)
	}
	if e, ok := l.ExtractEligible(60); !ok || e.Meta != 1 {
		t.Fatalf("extract = %v,%v", e, ok)
	}
}

// TestSchedulerTreeViaPublicAPI builds a two-class HPFQ hierarchy over
// BMW-Trees.
func TestSchedulerTreeViaPublicAPI(t *testing.T) {
	root := bmw.NewSchedulerTree(bmw.NewBMWTree(2, 7), bmw.NewSTFQ(1))
	a := root.AddNode(0, bmw.NewBMWTree(2, 7), bmw.NewSTFQ(1))
	b := root.AddNode(0, bmw.NewBMWTree(2, 7), bmw.NewSTFQ(1))
	for i := 0; i < 10; i++ {
		if err := root.Enqueue(a, bmw.Packet{Flow: 1, Bytes: 100}, nil); err != nil {
			t.Fatal(err)
		}
		if err := root.Enqueue(b, bmw.Packet{Flow: 2, Bytes: 100}, nil); err != nil {
			t.Fatal(err)
		}
	}
	counts := map[uint32]int{}
	for i := 0; i < 20; i++ {
		p, _, err := root.Dequeue()
		if err != nil {
			t.Fatal(err)
		}
		counts[p.Flow]++
	}
	if counts[1] != 10 || counts[2] != 10 {
		t.Fatalf("shares = %v", counts)
	}
}

// TestDRRViaPublicAPI checks byte fairness through the facade.
func TestDRRViaPublicAPI(t *testing.T) {
	d := bmw.NewDRR(1500, 256)
	for i := 0; i < 20; i++ {
		d.Enqueue(1, 1500, nil)
		d.Enqueue(2, 750, nil)
		d.Enqueue(2, 750, nil)
	}
	bytes := map[uint32]uint64{}
	for i := 0; i < 30; i++ {
		id, n, _, err := d.Dequeue()
		if err != nil {
			t.Fatal(err)
		}
		bytes[id] += uint64(n)
	}
	ratio := float64(bytes[1]) / float64(bytes[2])
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("byte fairness broken: %v", bytes)
	}
}

// TestTrafficManagerViaPublicAPI wires BMW-Tree-backed ports into the
// multi-port TM.
func TestTrafficManagerViaPublicAPI(t *testing.T) {
	tmgr := bmw.NewTrafficManager(bmw.TMConfig{
		Ports:       4,
		BufferBytes: 1 << 20,
		NewScheduler: func(port int) bmw.PriorityQueue {
			return bmw.NewBMWTree(2, 8)
		},
		NewRanker: func(port int) bmw.Ranker { return bmw.NewSTFQ(1) },
	})
	for port := 0; port < 4; port++ {
		for i := 0; i < 5; i++ {
			if err := tmgr.Enqueue(port, bmw.Packet{Flow: uint32(i), Bytes: 1000}, port*100+i); err != nil {
				t.Fatal(err)
			}
		}
	}
	if tmgr.TotalLen() != 20 {
		t.Fatalf("TotalLen = %d", tmgr.TotalLen())
	}
	for port := 0; port < 4; port++ {
		for i := 0; i < 5; i++ {
			if _, _, err := tmgr.Dequeue(port); err != nil {
				t.Fatal(err)
			}
		}
	}
	if tmgr.BufferUsed() != 0 {
		t.Fatalf("BufferUsed = %d after full drain", tmgr.BufferUsed())
	}
}

// TestExactQueuesAgreeOnValues is a metamorphic test: every *exact*
// priority queue in the module, fed the identical operation schedule,
// must emit the identical value sequence (metas may differ on ties —
// tie-breaking is implementation-defined, value order is not).
func TestExactQueuesAgreeOnValues(t *testing.T) {
	make4k := map[string]func() bmw.PriorityQueue{
		"bmwtree":  func() bmw.PriorityQueue { return bmw.NewBMWTree(2, 12) },
		"pifo":     func() bmw.PriorityQueue { return bmw.NewPIFO(8190) },
		"pheap":    func() bmw.PriorityQueue { return bmw.NewPHeap(13) },
		"pipeheap": func() bmw.PriorityQueue { return bmw.NewPipelinedHeap(8191) },
	}
	// One deterministic schedule for everyone.
	rng := rand.New(rand.NewSource(99))
	type step struct {
		push bool
		v    uint64
	}
	var schedule []step
	inFlight := 0
	for i := 0; i < 30000; i++ {
		if inFlight == 0 || (rng.Intn(2) == 0 && inFlight < 4000) {
			schedule = append(schedule, step{push: true, v: uint64(rng.Intn(1 << 14))})
			inFlight++
		} else {
			schedule = append(schedule, step{})
			inFlight--
		}
	}

	var reference []uint64
	for name, mk := range make4k {
		q := mk()
		var got []uint64
		for i, s := range schedule {
			if s.push {
				if err := q.Push(bmw.Element{Value: s.v, Meta: uint64(i)}); err != nil {
					t.Fatalf("%s push: %v", name, err)
				}
			} else {
				e, err := q.Pop()
				if err != nil {
					t.Fatalf("%s pop: %v", name, err)
				}
				got = append(got, e.Value)
			}
		}
		if reference == nil {
			reference = got
			continue
		}
		if len(got) != len(reference) {
			t.Fatalf("%s popped %d values, others %d", name, len(got), len(reference))
		}
		for i := range got {
			if got[i] != reference[i] {
				t.Fatalf("%s diverges at pop %d: %d vs %d", name, i, got[i], reference[i])
			}
		}
	}
}

// TestSoakLargeShapes exercises the paper's largest configurations end
// to end (skipped with -short): the 15-2 and 8-4 RPU-BMW at tens of
// thousands of elements.
func TestSoakLargeShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("large-shape soak")
	}
	for _, shape := range []struct{ m, l int }{{2, 15}, {4, 8}} {
		s := bmw.NewRPUBMWSim(shape.m, shape.l)
		rng := rand.New(rand.NewSource(int64(shape.m)))
		// Fill a third of the capacity, then run saturated push-pop.
		target := s.Cap() / 3
		for i := 0; i < target; i++ {
			if _, err := s.Tick(bmw.PushOp(rng.Uint64()%1_000_000, uint64(i))); err != nil {
				t.Fatal(err)
			}
		}
		var prev uint64
		pops := 0
		for i := 0; i < 60000; i++ {
			switch {
			case !s.PushAvailable():
				s.Tick(bmw.NopOp())
			case i%3 == 0 && s.Len() > 0 && s.PopAvailable():
				e, err := s.Tick(bmw.PopOp())
				if err != nil {
					t.Fatal(err)
				}
				// Ranks in the steady pool are uniform; the popped stream
				// is not globally sorted (new smaller ranks arrive), but
				// every pop must return a plausible minimum: <= any value
				// pushed after it pops is unverifiable cheaply here, so
				// track only that pops do not regress below an already
				// popped *and then unmatched* bound; full equivalence is
				// covered by the package tests. Here we check liveness and
				// stability at scale.
				_ = prev
				prev = e.Value
				pops++
			default:
				if _, err := s.Tick(bmw.PushOp(rng.Uint64()%1_000_000, uint64(i))); err != nil {
					t.Fatal(err)
				}
			}
		}
		if pops == 0 {
			t.Fatalf("shape %v: no pops", shape)
		}
	}
}
